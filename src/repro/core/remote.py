"""Remote trusted logger.

The paper's logger "could be a remote log server, a local file, or even a
trusted hardware device" (Section II-A).  The in-process
:class:`~repro.core.log_server.LogServer` covers the local cases; this
module puts it behind a socket:

- :class:`LogServerEndpoint` exposes a :class:`LogServer` over any
  middleware transport (TCP in practice), speaking a small framed RPC:
  ``REGISTER_KEY``, ``SUBMIT``, ``HEALTH`` (the replica commitment probe),
  ``FETCH`` (raw-record ranges for anti-entropy catch-up), and ``KEYS``
  (key-registry snapshot, so a recovering replica can be re-keyed).
- :class:`RemoteLogger` is the component-side stub with the same
  ``register_key``/``submit`` surface the protocols expect, so an
  :class:`~repro.core.adlp_protocol.AdlpProtocol` can be pointed at a
  remote logger with no other change.

Faithful to the paper's failure model, ``SUBMIT`` is fire-and-forget: the
client never waits for a response, so "any failure at the log server does
not interrupt a normal operation of the ROS nodes".  Only key
registration is synchronous (it happens once, at startup, and the paper's
trust model requires the key to be transferred securely before data
flows).
"""

from __future__ import annotations

import json
import logging
import os
import random
import selectors
import socket
import struct
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.core.entries import LogEntry
from repro.core.log_server import LogCommitment, LogServer
from repro.crypto.keys import PublicKey
from repro.crypto.merkle import MerkleConsistencyProof, MerkleProof
from repro.errors import (
    DeadlineExceeded,
    LoggingError,
    ProofError,
    ServerBusy,
    TransportError,
)
from repro.gossip.monitor import TreeHeadMonitor
from repro.gossip.sth import SignedTreeHead
from repro.resilience.admission import AdmissionController
from repro.resilience.flow import (
    CreditWindow,
    FlowControlConfig,
    RetryBudget,
    full_jitter,
)
from repro.middleware.transport import framing
from repro.middleware.transport.base import (
    Connection,
    ConnectionClosed,
    Transport,
)
from repro.middleware.transport.tcp import TcpTransport
from repro.serialization import (
    WireMessage,
    boolean,
    bytes_,
    repeated,
    string,
    uint64,
)
from repro.storage.spillfile import DiskSpillFile
from repro.util.concurrency import StoppableThread

logger = logging.getLogger(__name__)


class RemoteUnavailable(LoggingError):
    """The server could not be reached, the connection died mid-exchange,
    or the reply never arrived.

    A :class:`LoggingError` subclass so existing callers are unaffected,
    but distinguishable from a server that *answered* with a rejection:
    the process-shard supervisor restarts a worker on this, while a
    server-side rejection (misroute, undecodable entry) must propagate --
    restarting would just replay the same refusal.
    """

#: RPC operation codes.
OP_REGISTER_KEY = 1
OP_SUBMIT = 2
OP_HEALTH = 3
OP_FETCH = 4
OP_KEYS = 5
OP_SUBMIT_BATCH = 6
OP_CHECKPOINT = 7
OP_STATS = 8
OP_VERIFY = 9
#: Response verdict codes (``LoggerResponse.code``; share the op number
#: space so a wire trace reads unambiguously).  ``OP_BUSY`` is admission
#: control refusing sync work -- the response carries the server's queue
#: depth and retry-after hint; ``OP_DEADLINE_EXPIRED`` is a request whose
#: client-stamped budget ran out before the expensive work (the entry was
#: NOT ingested).  Pre-overload clients skip the unknown fields and see an
#: ordinary ``ok=False`` rejection, which is safe (the work did not land).
OP_BUSY = 10
OP_DEADLINE_EXPIRED = 11
#: Proof-plane ops (split-view detection): ``OP_STH`` fetches the signed
#: tree head, ``OP_PROVE_INCLUSION`` / ``OP_PROVE_CONSISTENCY`` fetch
#: Merkle proofs a client verifies against the heads it holds.  All three
#: are shard-tagged, deadline-aware, and admission-controlled like every
#: other sync op (a proof storm must shed before it starves ingest).
OP_STH = 12
OP_PROVE_INCLUSION = 13
OP_PROVE_CONSISTENCY = 14
#: Response verdict: the proof request itself was malformed (out-of-range
#: or negative index / size) -- a clean typed refusal, never a traceback.
OP_PROOF_RANGE = 15

#: Upper bound on records returned by one ``OP_FETCH`` (bounds response
#: frames; catch-up loops until it has the whole range).
FETCH_BATCH_LIMIT = 4096

#: Payload bytes per ``OP_SUBMIT_BATCH`` frame before a batch is split
#: across frames (stays far below the transport's 64 MiB frame cap even
#: for image-sized entries).
BATCH_FRAME_BYTES = 8 * 1024 * 1024

#: Minimum client-side shed window, seconds.  A BUSY verdict whose
#: ``retry_after_ms`` hint is 0 (a server with a zero-configured or
#: truncated-to-zero hint) would otherwise open a zero-length shed window
#: and turn every refusal into a hot retry spin; the floor (jittered up to
#: 2x so a fleet's retries decorrelate) bounds the per-client retry rate
#: no matter what the server says.
MIN_SHED_FLOOR = 0.02

_floor_rng = random.Random()


def _floor_retry_after(hint: float, rng: Optional[random.Random] = None) -> float:
    """Floor a server retry-after hint at :data:`MIN_SHED_FLOOR`, with
    full jitter on the floored value (uniform in [floor, 2*floor))."""
    if hint >= MIN_SHED_FLOOR:
        return hint
    return MIN_SHED_FLOOR + full_jitter(MIN_SHED_FLOOR, rng or _floor_rng)


def _raise_for_verdict(
    response: "LoggerResponse", rng: Optional[random.Random] = None
) -> None:
    """Translate overload verdict codes on a failed response into typed
    exceptions (:class:`ServerBusy` / :class:`DeadlineExceeded`); plain
    rejections fall through to the caller's generic handling."""
    if response.ok:
        return
    code = int(response.code)
    if code == OP_BUSY:
        raise ServerBusy(
            str(response.error) or "log server is overloaded",
            retry_after=_floor_retry_after(
                int(response.retry_after_ms) / 1000.0, rng
            ),
            queue_depth=int(response.queue_depth),
        )
    if code == OP_DEADLINE_EXPIRED:
        raise DeadlineExceeded(
            str(response.error) or "deadline expired server-side"
        )


#: Suggested ``idle_timeout`` for endpoints serving many short-lived or
#: replicated clients (a leaked/wedged client must not pin a worker thread
#: and socket forever).  Reaping is OFF by default: with fire-and-forget
#: submits, a reap racing the client's pre-send liveness peek can silently
#: discard an entry, so a standalone logger with sporadic traffic must not
#: opt into that window unknowingly.
DEFAULT_IDLE_TIMEOUT = 300.0


class LoggerRequest(WireMessage):
    """One framed request from a component to the log server."""

    op = uint64(1)
    component_id = string(2)
    key_bytes = bytes_(3)  # OP_REGISTER_KEY
    entry_bytes = bytes_(4)  # OP_SUBMIT
    start = uint64(5)  # OP_FETCH: first record index
    count = uint64(6)  # OP_FETCH: max records to return
    entry_batch = repeated(bytes_(7))  # OP_SUBMIT_BATCH: N entries, 1 frame
    #: Shard targeting for SUBMIT/SUBMIT_BATCH/FETCH/HEALTH against a
    #: sharded server, encoded as ``shard_index + 1`` so the wire default
    #: ``0`` means "untargeted" and frames from pre-sharding clients keep
    #: their old meaning.
    shard = uint64(8)
    #: SUBMIT/SUBMIT_BATCH: when set, the server answers with a
    #: :class:`LoggerResponse` whose ``entries`` is its post-ingest entry
    #: count -- the acknowledged submission mode the process-sharded
    #: parent uses (the wire default ``0`` keeps classic frames
    #: fire-and-forget).
    sync = boolean(9)
    #: Client-stamped deadline budget in milliseconds for sync submits:
    #: if the server cannot start the expensive work (admission wait
    #: included) within this budget of receiving the frame, it answers
    #: ``OP_DEADLINE_EXPIRED`` instead of doing work whose caller has
    #: already given up on it.  0 (the wire default) = no deadline.
    deadline_ms = uint64(10)
    #: OP_PROVE_INCLUSION: leaf index to prove.
    proof_index = uint64(11)
    #: OP_PROVE_INCLUSION: historical tree size to prove against;
    #: OP_PROVE_CONSISTENCY: the *new* (larger) size.  0 (the wire
    #: default) = the server's current size.
    proof_tree_size = uint64(12)
    #: OP_PROVE_CONSISTENCY: the *old* (smaller) size.
    proof_old_size = uint64(13)
    #: Correlation id (v2 envelope): a client that pipelines several
    #: synchronous requests on one connection stamps each with a unique
    #: non-zero id; the server echoes it verbatim on the response so
    #: replies can be matched out of a shared stream.  0 (the wire
    #: default) marks a pre-pipelining frame -- the server still answers
    #: (echoing 0) and such clients match replies by FIFO order, so both
    #: directions interoperate across versions.
    corr_id = uint64(14)


class LoggerResponse(WireMessage):
    """Response to synchronous requests (everything but ``OP_SUBMIT``)."""

    ok = boolean(1)
    error = string(2)
    entries = uint64(3)  # OP_HEALTH
    chain_head = bytes_(4)  # OP_HEALTH
    merkle_root = bytes_(5)  # OP_HEALTH
    total_bytes = uint64(6)  # OP_HEALTH
    records = repeated(bytes_(7))  # OP_FETCH
    key_ids = repeated(string(8))  # OP_KEYS (parallel with key_blobs)
    key_blobs = repeated(bytes_(9))  # OP_KEYS
    #: OP_HEALTH: shard count of a sharded server (0 = not sharded); lets
    #: a client discover the shard layout before tagging frames.
    shards = uint64(10)
    #: OP_STATS: the server's flat counters as a JSON object (a schema
    #: field per counter would couple the wire format to every backend's
    #: counter set; stats are observability, not evidence).
    stats_json = string(11)
    #: Response verdict: 0 = plain ok/error, :data:`OP_BUSY` = admission
    #: control refused (see ``queue_depth`` / ``retry_after_ms``),
    #: :data:`OP_DEADLINE_EXPIRED` = the request's deadline budget ran
    #: out server-side.  Old clients skip this field and treat both as
    #: ordinary rejections.
    code = uint64(12)
    #: OP_BUSY: the server's ingest depth when it refused.
    queue_depth = uint64(13)
    #: OP_BUSY: suggested client backoff before retrying, milliseconds.
    retry_after_ms = uint64(14)
    #: OP_STH: the encoded :class:`~repro.gossip.sth.SignedTreeHead`.
    sth_bytes = bytes_(15)
    #: OP_PROVE_*: proof path digests in verification order.
    proof_hashes = repeated(bytes_(16))
    #: OP_PROVE_INCLUSION: one byte per path digest, 1 = sibling is on
    #: the right (parallel with ``proof_hashes``; consistency proofs are
    #: direction-free and leave this empty).
    proof_flags = bytes_(17)
    #: OP_PROVE_INCLUSION: echo of the proven leaf index.
    proof_index = uint64(18)
    #: OP_PROVE_INCLUSION: tree size the proof targets;
    #: OP_PROVE_CONSISTENCY: the new size.
    proof_tree_size = uint64(19)
    #: OP_PROVE_CONSISTENCY: the old size.
    proof_old_size = uint64(20)
    #: Echo of the request's correlation id (0 when the request carried
    #: none -- an old client, which skips this unknown field anyway).
    corr_id = uint64(21)


#: Pending-request backlog per connection at which the event loop stops
#: reading that socket (kernel backpressure on the peer) and the depth at
#: which it resumes.  Bounds server memory against a client that stuffs
#: frames faster than dispatch drains them.
_READ_PAUSE_DEPTH = 1024
_READ_RESUME_DEPTH = 256

_PREAMBLE = struct.Struct("<I")


class _EventConn:
    """Event-loop state for one raw-socket connection.

    The loop thread owns the socket and the frame reassembly buffer;
    dispatch workers own ``pending`` (under ``lock``) and append framed
    response bytes to ``out``, which only the loop thread writes to the
    socket.  ``running`` guarantees at most one dispatch worker drains
    this connection at a time -- per-connection FIFO execution is
    load-bearing (credit syncs and the process-shard crash reconcile both
    assume this connection's frames are ingested in order)."""

    __slots__ = (
        "connection",
        "sock",
        "rbuf",
        "out",
        "lock",
        "pending",
        "running",
        "last_active",
        "closing",
        "read_paused",
        "writing",
    )

    def __init__(self, connection: Connection, sock: socket.socket):
        self.connection = connection
        self.sock = sock
        self.rbuf = bytearray()
        self.out: Deque[memoryview] = deque()
        self.lock = threading.Lock()
        self.pending: Deque[Tuple[LoggerRequest, float]] = deque()
        self.running = False
        self.last_active = time.monotonic()
        self.closing = False
        self.read_paused = False
        self.writing = False


class LogServerEndpoint:
    """Serves a :class:`LogServer` over a transport listener.

    Socket-backed transports (TCP, unix) are served by a single
    ``selectors`` event loop with non-blocking sockets: one thread
    multiplexes reads, frame reassembly, and per-connection write queues
    across every connection, so fan-in scales to thousands of clients
    without a thread per socket.  Request *execution* happens on a small
    dispatch pool -- serially per connection (the wire contract: one
    connection's frames are ingested in order) but concurrently across
    connections, so a slow durable ingest on one socket never stalls the
    loop.  Each frame's arrival is stamped when it is reassembled off the
    socket, and the client's ``deadline_ms`` is measured from that stamp
    -- queue wait behind other connections counts against the budget,
    exactly as §13's overload discipline requires.

    Transports whose connections do not expose a raw socket (in-process
    and fault-injection wrappers) fall back to the classic
    thread-per-connection serve loop; both paths share the same dispatch
    logic, so verdicts and commitments are identical.
    """

    def __init__(
        self,
        server: LogServer,
        transport: Optional[Transport] = None,
        idle_timeout: Optional[float] = None,
        admission: Optional[AdmissionController] = None,
        dispatch_workers: Optional[int] = None,
    ):
        self.server = server
        self._transport = transport or TcpTransport()
        self._listener = self._transport.listen()
        self._connections: List[Connection] = []
        self._lock = threading.Lock()
        self._idle_timeout = idle_timeout
        #: Admission control (overload protection).  ``None`` keeps the
        #: pre-overload behavior: every frame is ingested unconditionally.
        self.admission = admission
        #: Submission frames received / rejected by the server (observability
        #: for chaos runs; rejection never propagates to the component).
        self.submissions = 0
        self.rejected = 0
        #: Connections closed by the idle reaper (observability).
        self.reaped = 0
        # -- event loop plumbing ------------------------------------------
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        # data=None marks the wakeup pipe in the event dispatch; without
        # this registration every dispatch-thread wakeup (queued response,
        # resumed read) would wait out a full select timeout.
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._new_states: Deque[_EventConn] = deque()
        self._dirty: List[_EventConn] = []
        self._dirty_lock = threading.Lock()
        self._states: Dict[int, _EventConn] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=dispatch_workers
            or min(32, (os.cpu_count() or 2) + 4),
            thread_name_prefix="logserver-dispatch",
        )
        self._loop_thread = StoppableThread(
            "logserver-eventloop", target=self._loop_run
        )
        self._loop_thread.start()
        self._acceptor = StoppableThread("logserver-accept", target=self._accept_loop)
        self._acceptor.start()

    @property
    def address(self):
        """Address components pass to :class:`RemoteLogger`."""
        return self._listener.address

    @staticmethod
    def _raw_socket(connection: Connection) -> Optional[socket.socket]:
        """The connection's underlying socket, when it has one the event
        loop can own (TCP and unix connections); ``None`` sends the
        connection down the thread-per-connection fallback."""
        sock = getattr(connection, "_sock", None)
        return sock if isinstance(sock, socket.socket) else None

    def _accept_loop(self) -> None:
        while not self._acceptor.stopped():
            connection = self._listener.accept(timeout=0.1)
            if connection is None:
                continue
            with self._lock:
                self._connections.append(connection)
            sock = self._raw_socket(connection)
            if sock is not None:
                sock.setblocking(False)
                state = _EventConn(connection, sock)
                with self._dirty_lock:
                    self._new_states.append(state)
                self._wake()
                continue
            worker = StoppableThread(
                "logserver-conn", target=lambda c=connection: self._serve(c)
            )
            worker.start()

    # -- event loop (socket-backed connections) ---------------------------

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, InterruptedError):
            pass  # pipe already has a pending wakeup
        except OSError:
            pass  # loop shut down under us

    def _mark_dirty(self, state: _EventConn) -> None:
        """Dispatch-thread side: this state has queued output (or wants
        its read interest recomputed); the loop picks it up on wakeup."""
        with self._dirty_lock:
            self._dirty.append(state)
        self._wake()

    def _loop_run(self) -> None:
        selector = self._selector
        while not self._loop_thread.stopped():
            try:
                events = selector.select(timeout=0.1)
            except OSError:
                return  # selector closed under us during shutdown
            for key, mask in events:
                if key.data is None:
                    try:
                        while self._wake_r.recv(4096):
                            pass
                    except (BlockingIOError, InterruptedError):
                        pass
                    except OSError:
                        return
                    continue
                state = key.data
                if mask & selectors.EVENT_WRITE:
                    self._loop_write(state)
                if mask & selectors.EVENT_READ and not state.closing:
                    self._loop_read(state)
            self._loop_admit_new()
            self._loop_flush_dirty()
            if self._idle_timeout is not None:
                self._loop_reap_idle()

    def _loop_admit_new(self) -> None:
        while True:
            with self._dirty_lock:
                if not self._new_states:
                    return
                state = self._new_states.popleft()
            try:
                self._selector.register(
                    state.sock, selectors.EVENT_READ, state
                )
            except (KeyError, ValueError, OSError):
                self._drop_connection(state.connection)
                continue
            self._states[id(state)] = state

    def _loop_flush_dirty(self) -> None:
        with self._dirty_lock:
            dirty, self._dirty = self._dirty, []
        for state in dirty:
            if not state.closing:
                self._loop_write(state)

    def _loop_reap_idle(self) -> None:
        now = time.monotonic()
        for state in list(self._states.values()):
            if now - state.last_active <= self._idle_timeout:
                continue
            with state.lock:
                busy = state.running or bool(state.pending) or bool(state.out)
            if busy:
                continue
            # Reap the connection: a wedged or leaked client must not pin
            # a socket forever.  A live component reconnects transparently
            # on its next submit.
            with self._lock:
                self.reaped += 1
            self._loop_close(state)

    def _interest(self, state: _EventConn) -> int:
        events = 0
        if not state.read_paused:
            events |= selectors.EVENT_READ
        if state.out:
            events |= selectors.EVENT_WRITE
        return events

    def _update_interest(self, state: _EventConn) -> None:
        """Recompute and apply the selector interest set for ``state``.
        An empty set (reads paused, nothing to write) unregisters the
        socket -- selectors cannot express "no events" -- and a later
        dirty-mark re-registers it."""
        if state.closing:
            return
        events = self._interest(state)
        try:
            if events:
                try:
                    self._selector.modify(state.sock, events, state)
                except KeyError:
                    self._selector.register(state.sock, events, state)
            else:
                try:
                    self._selector.unregister(state.sock)
                except KeyError:
                    pass
        except (ValueError, OSError):
            self._loop_close(state)

    def _loop_read(self, state: _EventConn) -> None:
        try:
            data = state.sock.recv(1 << 18)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._loop_close(state)
            return
        if not data:
            self._loop_close(state)
            return
        state.last_active = time.monotonic()
        state.rbuf += data
        self._parse_frames(state)

    def _parse_frames(self, state: _EventConn) -> None:
        arrival = time.monotonic()
        spawn = False
        rbuf = state.rbuf
        while True:
            if len(rbuf) < framing.PREAMBLE_SIZE:
                break
            (length,) = _PREAMBLE.unpack_from(rbuf)
            if length > framing.MAX_FRAME_SIZE:
                self._loop_close(state)  # protocol violation
                return
            end = framing.PREAMBLE_SIZE + length
            if len(rbuf) < end:
                break
            frame = bytes(rbuf[framing.PREAMBLE_SIZE : end])
            del rbuf[:end]
            try:
                request = LoggerRequest.decode(frame)
            except Exception:
                continue  # a malformed frame must not kill the server
            with state.lock:
                state.pending.append((request, arrival))
                if not state.running:
                    state.running = True
                    spawn = True
                if (
                    len(state.pending) >= _READ_PAUSE_DEPTH
                    and not state.read_paused
                ):
                    state.read_paused = True
        if state.read_paused or state.out:
            self._update_interest(state)
        if spawn:
            self._executor.submit(self._drain_pending, state)

    def _loop_write(self, state: _EventConn) -> None:
        with state.lock:
            if state.read_paused and len(state.pending) <= _READ_RESUME_DEPTH:
                state.read_paused = False
        try:
            while state.out:
                with state.lock:
                    if not state.out:
                        break
                    buf = state.out[0]
                try:
                    sent = state.sock.send(buf)
                except (BlockingIOError, InterruptedError):
                    break
                with state.lock:
                    if sent < len(buf):
                        state.out[0] = buf[sent:]
                        break
                    state.out.popleft()
        except OSError:
            self._loop_close(state)
            return
        self._update_interest(state)

    def _loop_close(self, state: _EventConn) -> None:
        with state.lock:
            state.closing = True
            # pending is NOT cleared: frames already reassembled off the
            # socket are accepted work, and a client disconnect racing
            # dispatch must not silently drop fire-and-forget evidence
            # (the thread-fallback path drains buffered frames to EOF the
            # same way).  Queued responses are undeliverable, so they go.
            state.out.clear()
        try:
            self._selector.unregister(state.sock)
        except (KeyError, ValueError, OSError):
            pass
        self._states.pop(id(state), None)
        self._drop_connection(state.connection)

    def _drop_connection(self, connection: Connection) -> None:
        connection.close()
        with self._lock:
            if connection in self._connections:
                self._connections.remove(connection)

    def _drain_pending(self, state: _EventConn) -> None:
        """Dispatch worker: execute this connection's queued requests in
        arrival order, one worker per connection at a time."""
        while True:
            with state.lock:
                if not state.pending:
                    state.running = False
                    return
                request, arrival = state.pending.popleft()
                resume = (
                    state.read_paused
                    and len(state.pending) <= _READ_RESUME_DEPTH
                    and not state.closing
                )
            if resume:
                # Backlog drained below the resume mark: ask the loop to
                # recompute read interest (it owns the selector).
                self._mark_dirty(state)
            try:
                response = self._dispatch(request, arrival)
            except Exception:  # pragma: no cover - dispatch never raises
                logger.exception("dispatch failed")
                response = None
            if response is None:
                continue
            try:
                payload = framing.encode_frame(response.encode())
            except Exception:  # oversized response: drop, keep serving
                continue
            with state.lock:
                if state.closing:
                    continue  # undeliverable, but keep draining pending
                state.out.append(memoryview(payload))
            self._mark_dirty(state)

    # -- shared dispatch (event loop + thread fallback) --------------------

    def _dispatch(
        self, request: LoggerRequest, arrival: float
    ) -> Optional[LoggerResponse]:
        """Execute one request; returns the response to send, or ``None``
        for fire-and-forget submits.  Every response echoes the request's
        correlation id (0 for old clients, who skip the unknown field)."""
        if request.op == OP_SUBMIT:
            with self._lock:
                self.submissions += 1
            if request.sync:
                response = self._ingest_sync(
                    [bytes(request.entry_bytes)],
                    request.shard,
                    deadline_ms=int(request.deadline_ms),
                    arrival=arrival,
                )
                response.corr_id = request.corr_id
                return response
            admission = self.admission
            if admission is not None:
                # Fire-and-forget work is never refused (no response
                # channel = refusal would be silent evidence loss); it
                # is force-admitted so the depth gauge stays honest
                # and *sync* traffic sheds on its behalf.
                admission.force_admit(1)
            try:
                self._submit_one(request.entry_bytes, request.shard)
            except LoggingError:
                # fire-and-forget: bad entries are dropped server-side
                with self._lock:
                    self.rejected += 1
            finally:
                if admission is not None:
                    admission.release(1)
            return None
        if request.op == OP_SUBMIT_BATCH:
            batch = [bytes(record) for record in request.entry_batch]
            if request.sync:
                with self._lock:
                    self.submissions += len(batch)
                response = self._ingest_sync(
                    batch,
                    request.shard,
                    deadline_ms=int(request.deadline_ms),
                    arrival=arrival,
                )
                response.corr_id = request.corr_id
                return response
            admission = self.admission
            if admission is not None:
                admission.force_admit(len(batch))
            try:
                self._ingest_batch(batch, shard_tag=request.shard)
            finally:
                if admission is not None:
                    admission.release(len(batch))
            return None
        if request.op in (OP_STH, OP_PROVE_INCLUSION, OP_PROVE_CONSISTENCY):
            response = self._answer_proof(request, arrival=arrival)
        else:
            response = self._answer(request)
        response.corr_id = request.corr_id
        return response

    # -- thread-per-connection fallback (non-socket transports) ------------

    def _serve(self, connection: Connection) -> None:
        try:
            self._serve_loop(connection)
        finally:
            connection.close()
            with self._lock:
                if connection in self._connections:
                    self._connections.remove(connection)

    def _serve_loop(self, connection: Connection) -> None:
        last_active = time.monotonic()
        while not self._acceptor.stopped():
            try:
                frame = connection.recv_frame(timeout=0.1)
            except ConnectionClosed:
                return
            if frame is None:
                if (
                    self._idle_timeout is not None
                    and time.monotonic() - last_active > self._idle_timeout
                ):
                    # Reap the connection: a wedged or leaked client must
                    # not pin a worker thread forever.  A live component
                    # reconnects transparently on its next submit.
                    with self._lock:
                        self.reaped += 1
                    return
                continue
            last_active = time.monotonic()
            try:
                request = LoggerRequest.decode(frame)
            except Exception:
                continue  # a malformed frame must not kill the server
            response = self._dispatch(request, arrival=last_active)
            if response is None:
                continue
            try:
                connection.send_frame(response.encode())
            except ConnectionClosed:
                return

    def _submit_one(self, record: bytes, shard_tag: int) -> None:
        """Route one submitted record, honoring a shard tag.

        A tag against a sharded server goes through ``submit_to_shard``
        (which verifies the tag against the router -- a client holding a
        stale shard count must not scatter a topic across shards).  A
        plain server is treated as a one-shard set: tag 1 targets the
        whole log, any other tag is rejected.
        """
        if shard_tag:
            submit_to_shard = getattr(self.server, "submit_to_shard", None)
            if submit_to_shard is not None:
                submit_to_shard(shard_tag - 1, record)
                return
            if shard_tag != 1:
                raise LoggingError(
                    f"shard {shard_tag - 1} targeted on an unsharded server"
                )
        self.server.submit(record)

    def _ingest_batch(self, batch: List[bytes], shard_tag: int = 0) -> None:
        """Group-commit a batched submission; fire-and-forget like SUBMIT.

        The server's batch ingest is all-or-nothing, so when it refuses the
        batch (an undecodable entry) the records are re-submitted one at a
        time -- only the poison entry is rejected, its batchmates are
        ingested exactly once.  Shard tags are honored exactly like
        :meth:`_submit_one`, including on the per-entry fallback path.
        """
        if not batch:
            return
        with self._lock:
            self.submissions += len(batch)
        if shard_tag:
            submit_batch_to_shard = getattr(
                self.server, "submit_batch_to_shard", None
            )
            if submit_batch_to_shard is not None:
                try:
                    submit_batch_to_shard(shard_tag - 1, batch)
                    return
                except LoggingError:
                    pass  # isolate the poison entry below
                for record in batch:
                    try:
                        self._submit_one(record, shard_tag)
                    except LoggingError:
                        with self._lock:
                            self.rejected += 1
                return
            if shard_tag != 1:
                # plain server, impossible shard: the whole batch is
                # misaddressed (never silently ingested under shard 0)
                with self._lock:
                    self.rejected += len(batch)
                return
        submit_batch = getattr(self.server, "submit_batch", None)
        if submit_batch is not None:
            try:
                submit_batch(batch)
                return
            except LoggingError:
                pass  # isolate the poison entry below
        for record in batch:
            try:
                self.server.submit(record)
            except LoggingError:
                with self._lock:
                    self.rejected += 1

    def _ingest_sync(
        self,
        batch: List[bytes],
        shard_tag: int,
        deadline_ms: int = 0,
        arrival: Optional[float] = None,
    ) -> LoggerResponse:
        """Acknowledged ingest: all-or-nothing, with the post-ingest entry
        count in the response.

        Unlike the fire-and-forget path there is no per-entry poison
        fallback -- the caller holds the batch and learns exactly what
        happened, so a refusal is *reported* (``ok=False`` plus the
        server's unchanged count) instead of being partially absorbed.
        The count is what lets the process-shard parent reconcile after a
        crash: the server ingests this connection's frames in order, so
        ``entries`` tells the caller precisely which prefix of its
        submissions has been accepted (and, with a durable store, made
        crash-durable) so far.

        Overload protection (sync-only, both opt-in): with an
        :class:`AdmissionController` installed, a busy server answers
        ``OP_BUSY`` (depth + retry-after hint) *before* any expensive
        work -- the count in that response is still exact, so even a
        refused credit sync settles the client's outstanding-bytes
        window.  With ``deadline_ms`` stamped by the client, a budget
        that expired while the frame waited (admission wait included)
        answers ``OP_DEADLINE_EXPIRED`` instead of doing work the caller
        has already abandoned; the entry is NOT ingested.
        """
        admission = self.admission
        if admission is not None:
            decision = admission.try_admit(len(batch))
            if decision is not None:
                return LoggerResponse(
                    ok=False,
                    error=(
                        "server busy: ingest depth "
                        f"{decision.queue_depth}"
                    ),
                    entries=len(self.server),
                    code=OP_BUSY,
                    queue_depth=decision.queue_depth,
                    retry_after_ms=int(decision.retry_after * 1000),
                )
        try:
            if deadline_ms and arrival is not None:
                elapsed_ms = (time.monotonic() - arrival) * 1000.0
                if elapsed_ms > deadline_ms:
                    if admission is not None:
                        admission.note_deadline_rejection()
                    return LoggerResponse(
                        ok=False,
                        error=(
                            f"deadline of {deadline_ms} ms expired "
                            f"({elapsed_ms:.0f} ms elapsed) before ingest"
                        ),
                        entries=len(self.server),
                        code=OP_DEADLINE_EXPIRED,
                    )
            return self._ingest_sync_admitted(batch, shard_tag)
        finally:
            if admission is not None:
                admission.release(len(batch))

    def _ingest_sync_admitted(
        self, batch: List[bytes], shard_tag: int
    ) -> LoggerResponse:
        try:
            if shard_tag:
                submit_batch_to_shard = getattr(
                    self.server, "submit_batch_to_shard", None
                )
                if submit_batch_to_shard is not None:
                    submit_batch_to_shard(shard_tag - 1, batch)
                elif shard_tag == 1:
                    self._ingest_plain_sync(batch)
                else:
                    raise LoggingError(
                        f"shard {shard_tag - 1} targeted on an unsharded server"
                    )
            else:
                self._ingest_plain_sync(batch)
        except Exception as exc:
            # Includes store failures: the server's batch ingest rolled
            # back, so the count we report is still exact.
            with self._lock:
                self.rejected += len(batch)
            return LoggerResponse(
                ok=False, error=str(exc), entries=len(self.server)
            )
        return LoggerResponse(ok=True, entries=len(self.server))

    def _ingest_plain_sync(self, batch: List[bytes]) -> None:
        submit_batch = getattr(self.server, "submit_batch", None)
        if submit_batch is not None:
            submit_batch(batch)
            return
        for record in batch:
            self.server.submit(record)

    def _answer(self, request: LoggerRequest) -> LoggerResponse:
        """Build the response for a synchronous (non-SUBMIT) request."""
        try:
            if request.op == OP_REGISTER_KEY:
                self.server.register_key(request.component_id, request.key_bytes)
                return LoggerResponse(ok=True)
            if request.op == OP_HEALTH:
                return self._health_response(request.shard)
            if request.op == OP_FETCH:
                count = min(request.count or FETCH_BATCH_LIMIT, FETCH_BATCH_LIMIT)
                records = self._fetch_records(request.shard, request.start, count)
                return LoggerResponse(ok=True, records=list(records))
            if request.op == OP_KEYS:
                keys = self.server.keys_snapshot()
                ids = sorted(keys)
                return LoggerResponse(
                    ok=True, key_ids=ids, key_blobs=[keys[i] for i in ids]
                )
            if request.op == OP_CHECKPOINT:
                # Force a durable checkpoint now (no-op for in-memory
                # stores) -- how the process-shard parent fans its own
                # ``checkpoint()`` out to worker subprocesses.
                self.server.checkpoint()
                return LoggerResponse(ok=True)
            if request.op == OP_STATS:
                data: Dict[str, int] = {
                    "entries": len(self.server),
                    "total_bytes": int(self.server.total_bytes),
                    "rejected_submissions": int(
                        getattr(self.server, "rejected_submissions", 0)
                    ),
                }
                stats = getattr(self.server, "stats", None)
                if callable(stats):
                    data.update(stats())
                if self.admission is not None:
                    data.update(self.admission.stats())
                return LoggerResponse(
                    ok=True,
                    entries=len(self.server),
                    stats_json=json.dumps(data, sort_keys=True),
                )
            if request.op == OP_VERIFY:
                # Tamper-evidence check of the server's *actual* store
                # (the durable WAL bytes for a durable store) -- fetching
                # records and re-chaining them client-side would only
                # prove transit integrity.
                self.server.verify_integrity()
                return LoggerResponse(ok=True, entries=len(self.server))
            return LoggerResponse(ok=False, error=f"unknown op {request.op}")
        except Exception as exc:
            return LoggerResponse(ok=False, error=str(exc))

    def _health_response(self, shard_tag: int) -> LoggerResponse:
        """Commitment probe, shard-aware.

        Untargeted against a sharded server, the probe reports the
        aggregate: total entries/bytes, the *set root* in both hash slots,
        and the shard count (how a client discovers the layout).  A shard
        tag selects one shard's ordinary commitment; a plain server
        answers tag 1 as "the whole log" and rejects any other tag.
        """
        shard_commitment = getattr(self.server, "shard_commitment", None)
        if shard_tag:
            if shard_commitment is not None:
                commitment = shard_commitment(shard_tag - 1)
            elif shard_tag == 1:
                commitment = self.server.commitment()
            else:
                return LoggerResponse(
                    ok=False,
                    error=f"shard {shard_tag - 1} probed on an unsharded server",
                )
            return LoggerResponse(
                ok=True,
                entries=commitment.entries,
                chain_head=commitment.chain_head,
                merkle_root=commitment.merkle_root,
                total_bytes=commitment.total_bytes,
            )
        commitment = self.server.commitment()
        shards = 0
        if hasattr(commitment, "root"):  # ShardSetCommitment
            shards = commitment.shards
            commitment = commitment.as_log_commitment()
        return LoggerResponse(
            ok=True,
            entries=commitment.entries,
            chain_head=commitment.chain_head,
            merkle_root=commitment.merkle_root,
            total_bytes=commitment.total_bytes,
            shards=shards,
        )

    def _fetch_records(self, shard_tag: int, start: int, count: int) -> List[bytes]:
        """Raw-record range, shard-aware.

        A sharded server's record indexes are per shard, so fetches
        against one MUST carry a shard tag -- an untargeted fetch would
        need a merged index space that is not stable while shards ingest
        concurrently.  A plain server ignores sharding (tag 1 = the whole
        log) for symmetry with :meth:`_submit_one`.
        """
        shard_fetch = getattr(self.server, "shard_raw_records", None)
        if shard_tag:
            if shard_fetch is not None:
                return shard_fetch(shard_tag - 1, start, count)
            if shard_tag == 1:
                return self.server.raw_records(start, count)
            raise LoggingError(
                f"shard {shard_tag - 1} fetched from an unsharded server"
            )
        if shard_fetch is not None:
            raise LoggingError(
                "a sharded log server requires a shard id for FETCH "
                "(per-shard record indexes; fetch each shard separately)"
            )
        return self.server.raw_records(start, count)

    # -- proof plane (signed tree heads + Merkle proofs) -------------------

    def _answer_proof(
        self, request: LoggerRequest, arrival: Optional[float] = None
    ) -> LoggerResponse:
        """Serve a proof-plane op under the same overload discipline as
        sync ingest: admission first (OP_BUSY), then the client-stamped
        deadline (OP_DEADLINE_EXPIRED), then the actual work.  Proof
        building walks the Merkle tree, so an unmetered proof storm could
        starve ingest -- auditors must shed like everyone else.
        """
        admission = self.admission
        if admission is not None:
            decision = admission.try_admit(1)
            if decision is not None:
                return LoggerResponse(
                    ok=False,
                    error=f"server busy: ingest depth {decision.queue_depth}",
                    code=OP_BUSY,
                    queue_depth=decision.queue_depth,
                    retry_after_ms=int(decision.retry_after * 1000),
                )
        try:
            deadline_ms = int(request.deadline_ms)
            if deadline_ms and arrival is not None:
                elapsed_ms = (time.monotonic() - arrival) * 1000.0
                if elapsed_ms > deadline_ms:
                    admission_ = self.admission
                    if admission_ is not None:
                        admission_.note_deadline_rejection()
                    return LoggerResponse(
                        ok=False,
                        error=(
                            f"deadline of {deadline_ms} ms expired "
                            f"({elapsed_ms:.0f} ms elapsed) before proving"
                        ),
                        code=OP_DEADLINE_EXPIRED,
                    )
            return self._proof_response(request)
        finally:
            if admission is not None:
                admission.release(1)

    def _proof_response(self, request: LoggerRequest) -> LoggerResponse:
        try:
            if request.op == OP_STH:
                sth = self._issue_sth(request.shard)
                return LoggerResponse(
                    ok=True, entries=sth.entries, sth_bytes=sth.to_bytes()
                )
            if request.op == OP_PROVE_INCLUSION:
                proof = self._prove_inclusion(
                    request.shard,
                    int(request.proof_index),
                    int(request.proof_tree_size),
                )
                return LoggerResponse(
                    ok=True,
                    proof_hashes=[digest for digest, _ in proof.path],
                    proof_flags=bytes(
                        1 if is_right else 0 for _, is_right in proof.path
                    ),
                    proof_index=proof.leaf_index,
                    proof_tree_size=proof.tree_size,
                )
            proof = self._prove_consistency(
                request.shard,
                int(request.proof_old_size),
                int(request.proof_tree_size),
            )
            return LoggerResponse(
                ok=True,
                proof_hashes=list(proof.path),
                proof_old_size=proof.old_size,
                proof_tree_size=proof.new_size,
            )
        except ProofError as exc:
            # The request was malformed (range), not the server broken:
            # answer with a typed verdict the client maps back to
            # ProofError -- a clean refusal, never a worker traceback.
            return LoggerResponse(ok=False, error=str(exc), code=OP_PROOF_RANGE)
        except Exception as exc:
            return LoggerResponse(ok=False, error=str(exc))

    def _issue_sth(self, shard_tag: int) -> SignedTreeHead:
        """Signed tree head, shard-aware.

        Untargeted against a sharded server returns the signed *set* head
        (the roll-up over per-shard commitments); a shard tag selects one
        shard's head.  A plain server answers tag 1 as the whole log.
        """
        shard_sth = getattr(self.server, "shard_signed_tree_head", None)
        if shard_tag:
            if shard_sth is not None:
                return shard_sth(shard_tag - 1)
            if shard_tag == 1:
                return self.server.signed_tree_head()
            raise LoggingError(
                f"shard {shard_tag - 1} STH requested on an unsharded server"
            )
        return self.server.signed_tree_head()

    def _prove_inclusion(
        self, shard_tag: int, index: int, tree_size: int
    ) -> MerkleProof:
        """Inclusion proof, shard-aware (per-shard trees, like FETCH)."""
        size = tree_size or None  # wire 0 = the current tree
        shard_prove = getattr(self.server, "shard_prove_inclusion", None)
        if shard_tag:
            if shard_prove is not None:
                return shard_prove(shard_tag - 1, index, size)
            if shard_tag == 1:
                return self.server.prove_inclusion(index, size)
            raise LoggingError(
                f"shard {shard_tag - 1} proof requested on an unsharded server"
            )
        if shard_prove is not None:
            raise LoggingError(
                "a sharded log server requires a shard id for "
                "PROVE_INCLUSION (per-shard Merkle trees)"
            )
        return self.server.prove_inclusion(index, size)

    def _prove_consistency(
        self, shard_tag: int, old_size: int, new_size: int
    ) -> MerkleConsistencyProof:
        """Consistency proof, shard-aware (per-shard trees)."""
        size = new_size or None  # wire 0 = the current tree
        shard_prove = getattr(self.server, "shard_prove_consistency", None)
        if shard_tag:
            if shard_prove is not None:
                return shard_prove(shard_tag - 1, old_size, size)
            if shard_tag == 1:
                return self.server.prove_consistency(old_size, size)
            raise LoggingError(
                f"shard {shard_tag - 1} proof requested on an unsharded server"
            )
        if shard_prove is not None:
            raise LoggingError(
                "a sharded log server requires a shard id for "
                "PROVE_CONSISTENCY (per-shard Merkle trees)"
            )
        return self.server.prove_consistency(old_size, size)

    def close(self) -> None:
        self._acceptor.stop(join=False)
        self._listener.close()
        self._acceptor.stop()
        self._loop_thread.stop(join=False)
        self._wake()
        self._loop_thread.stop()
        for state in list(self._states.values()):
            with state.lock:
                state.closing = True
                state.pending.clear()
                state.out.clear()
        with self._lock:
            connections = list(self._connections)
        for connection in connections:
            connection.close()
        # Dispatch work is local server work; it finishes promptly once
        # every connection is marked closing.
        self._executor.shutdown(wait=True)
        try:
            self._selector.close()
        except OSError:
            pass
        for sock in (self._wake_r, self._wake_w):
            try:
                sock.close()
            except OSError:
                pass


class _RpcWaiter:
    """One in-flight synchronous RPC's completion slot."""

    __slots__ = ("event", "response", "failure", "done", "corr")

    def __init__(self, corr: int):
        self.event = threading.Event()
        self.response: Optional[LoggerResponse] = None
        self.failure: Optional[str] = None
        self.done = False
        self.corr = corr


class _Channel:
    """Per-connection RPC pipelining state.

    ``pending`` maps correlation id -> waiter for servers that echo ids;
    ``fifo`` holds the same waiters in *wire order* for servers that
    predate the envelope (their responses carry ``corr_id == 0`` and are
    matched oldest-first, which is exact because the server executes one
    connection's frames in order).  ``correlated`` latches once any
    response on this connection has echoed a non-zero id -- from then on
    a timed-out RPC's late reply can be discarded by id, so the
    connection survives timeouts instead of being dropped.
    """

    __slots__ = (
        "connection",
        "lock",
        "reader_lock",
        "pending",
        "fifo",
        "correlated",
        "next_corr",
        "dead",
        "reader_started",
    )

    def __init__(self, connection: Connection):
        self.connection = connection
        self.lock = threading.Lock()
        #: Held by whichever thread is currently reading frames.  With a
        #: single RPC in flight the caller itself is that reader (no
        #: thread is spawned for the common sequential client); once the
        #: channel actually pipelines, a dedicated reader owns this lock
        #: (see ``reader_started``).
        self.reader_lock = threading.Lock()
        self.pending: Dict[int, _RpcWaiter] = {}
        self.fifo: Deque[_RpcWaiter] = deque()
        self.correlated = False
        self.next_corr = 1
        self.dead = False
        #: Whether the dedicated reader thread has been spawned.  Started
        #: lazily the first time two RPCs overlap: handing reader duty
        #: from waiter to waiter costs a thread wakeup per reply, which
        #: under real pipelining load dominates the round trip.
        self.reader_started = False


class RemoteLogger:
    """Component-side stub: ``register_key`` + ``submit`` over a socket.

    Drop-in for the ``log_server`` argument of
    :class:`~repro.core.adlp_protocol.AdlpProtocol` /
    :class:`~repro.core.naive_protocol.NaiveProtocol` (``submit``).

    ``submit`` never blocks on the server.  If the connection dies, entries
    are *spilled* into a bounded in-memory queue and re-sent (oldest first)
    once the connection recovers.  When the queue overflows, the oldest
    entries overflow to a :class:`~repro.storage.spillfile.DiskSpillFile`
    (if ``spill_path`` was given) instead of being discarded -- a long
    outage then costs disk space, not evidence; an entry is only counted in
    :attr:`dropped` when there is no disk spill (or writing it fails).
    Reconnection attempts back off exponentially with *full jitter*
    (``uniform(0, backoff)``) so a fleet of clients that all watched the
    same server restart does not rejoin in lockstep.  The node keeps
    running throughout (the paper's no-single-point-of-failure property).

    With a :class:`~repro.resilience.flow.FlowControlConfig` the stub
    additionally (1) caps outstanding fire-and-forget bytes with a credit
    window -- crossing it forces an empty synchronous batch round trip
    whose reply proves the server drained every earlier frame on this
    connection; (2) honors the server's ``OP_BUSY`` verdicts by entering
    a *shed* window: submissions divert to the spill queue (delayed, not
    lost -- counted in :attr:`shed_entries`) and drain resumes with
    paced, jittered retries once the window expires; (3) bounds
    retransmit amplification with a gRPC-style retry budget: spill-drain
    batches each spend a token, tokens are minted by acked successes
    (plus a slow time trickle for liveness), so retries can never exceed
    a configured fraction of goodput.
    """

    def __init__(
        self,
        address,
        transport: Optional[Transport] = None,
        spill_capacity: int = 1024,
        reconnect_backoff: float = 0.05,
        max_reconnect_backoff: float = 2.0,
        spill_path: Optional[str] = None,
        submit_batch_max: int = 64,
        shard: Optional[int] = None,
        flow_control: Optional[FlowControlConfig] = None,
        rng: Optional[random.Random] = None,
    ):
        if submit_batch_max < 1:
            raise ValueError("submit_batch_max must be at least 1")
        if shard is not None and shard < 0:
            raise ValueError("shard must be non-negative")
        #: Pinned shard: every frame this stub sends is tagged with it.
        #: Used by the replication layer's per-shard catch-up; ordinary
        #: components leave it unset (the server routes by topic).
        self._shard = shard
        self._transport = transport or TcpTransport()
        self._submit_batch_max = submit_batch_max
        self._address = address
        self._connection: Optional[Connection] = None
        self._lock = threading.Lock()
        #: Pipelining state for the current connection: every synchronous
        #: request carries a correlation id, so any number of RPCs may be
        #: in flight at once and their responses are matched out of the
        #: shared stream (no lock serializes exchanges anymore).
        self._channel: Optional[_Channel] = None
        self._closed = False
        self._spill: Deque[bytes] = deque()
        self._spill_capacity = spill_capacity
        self._disk: Optional[DiskSpillFile] = (
            DiskSpillFile(spill_path) if spill_path else None
        )
        self._initial_backoff = reconnect_backoff
        self._max_backoff = max_reconnect_backoff
        self._backoff = reconnect_backoff
        self._next_attempt = 0.0
        self._overflow_warned = False
        #: Entries permanently lost to spill-queue overflow.
        self.dropped = 0
        #: Entries that overflowed the memory queue onto disk.
        self.spilled_to_disk = 0
        #: Spilled entries successfully re-sent after a reconnect.
        self.retries = 0
        #: Jitter source (seedable so chaos tests are reproducible).
        self._rng = rng or random.Random()
        #: Client-side overload machinery; ``None`` = pre-overload
        #: behavior (no credit window, no shed mode, unbounded drain).
        self._flow = flow_control
        self._credit: Optional[CreditWindow] = None
        self._retry_budget: Optional[RetryBudget] = None
        self._shed_until = 0.0
        self._shed_pause = 0.0
        self._unacked = 0
        #: OP_BUSY verdicts observed (sync + credit-sync paths).
        self.busy_responses = 0
        #: Entries diverted to the spill queue by shed mode (delayed, not
        #: lost -- the audit-facing complement of :attr:`dropped`).
        self.shed_entries = 0
        #: Responses whose RPC had already timed out (or arrived with no
        #: matching waiter): discarded by correlation id instead of
        #: poisoning the next exchange or killing the connection.
        self.late_replies_discarded = 0
        #: Fire-and-forget records re-spilled because the peer turned out
        #: to be closed right after the send (the reap-vs-send race);
        #: at-least-once, so these can surface as auditable duplicates.
        self.peer_close_respills = 0
        #: Client-side STH verification (opt-in via
        #: :meth:`enable_sth_verification`): the logger's public key plus
        #: a verified-head cache with append-only consistency checking.
        self._sth_monitor: Optional[TreeHeadMonitor] = None
        if flow_control is not None:
            self._credit = CreditWindow(flow_control.window_bytes)
            self._retry_budget = RetryBudget(
                capacity=flow_control.retry_budget,
                token_ratio=flow_control.retry_token_ratio,
                time_refill=flow_control.retry_time_refill,
            )
            self._shed_pause = flow_control.shed_min_pause

    @property
    def address(self):
        """The server address this stub currently targets."""
        return self._address

    @property
    def connected(self) -> bool:
        """Whether a live connection to the server exists right now."""
        with self._lock:
            return self._connection is not None and not self._connection.closed

    @property
    def spilled(self) -> int:
        """Entries currently parked in the spill queue (memory + disk)."""
        with self._lock:
            pending = len(self._spill)
            if self._disk is not None:
                pending += len(self._disk)
            return pending

    @property
    def shedding(self) -> bool:
        """Whether submissions are currently diverting to the spill queue
        because the server said BUSY (shed = delayed, never lost)."""
        return self._flow is not None and time.monotonic() < self._shed_until

    def stats(self) -> Dict[str, int]:
        """Loss/overflow counters, for merging into protocol ``stats()``.

        With flow control enabled the counters also separate *shed*
        (diverted to spill on BUSY -- delayed) from *dropped* (lost), so
        an audit reading these numbers can tell backpressure from
        evidence loss.
        """
        with self._lock:
            data = {
                "dropped": self.dropped,
                "spilled": len(self._spill)
                + (len(self._disk) if self._disk is not None else 0),
                "spilled_to_disk": self.spilled_to_disk,
                "spill_retries": self.retries,
                "late_replies_discarded": self.late_replies_discarded,
                "peer_close_respills": self.peer_close_respills,
            }
        if self._flow is not None:
            data["busy_responses"] = self.busy_responses
            data["shed_entries"] = self.shed_entries
            data["shedding"] = int(self.shedding)
            if self._credit is not None:
                data["outstanding_bytes"] = self._credit.outstanding
                data["credit_syncs"] = self._credit.credit_syncs
            if self._retry_budget is not None:
                data["retry_budget_exhausted"] = self._retry_budget.exhausted
        return data

    def _connect(self) -> Optional[Connection]:
        stale: Optional[_Channel] = None
        with self._lock:
            if self._closed:
                return None
            connection = self._connection
            if connection is not None:
                if not connection.closed and not connection.peer_closed():
                    # A peer-closed socket (e.g. the endpoint's idle
                    # reaper) would accept one fire-and-forget send and
                    # discard it; peek for EOF before trusting the cached
                    # connection.
                    return connection
                stale = self._channel
                self._connection = None
                self._channel = None
                connection.close()
            try_connect = time.monotonic() >= self._next_attempt
        if stale is not None:
            self._fail_waiters(stale, "log server connection lost")
        if not try_connect:
            return None  # backing off; do not hammer a dead server
        # The blocking connect happens OUTSIDE self._lock (bounded by the
        # transport's connect timeout): a stalled connect -- a full accept
        # backlog, a blackholed host -- must not freeze stats()/close()
        # and the spill bookkeeping on every other thread.
        try:
            fresh = self._transport.connect(self._address)
        except TransportError:
            with self._lock:
                # Full jitter (uniform(0, backoff)) decorrelates a fleet
                # of clients that all watched the same server die; the
                # *cap* still doubles per consecutive failure, so the
                # expected retry rate halves just like plain exponential.
                self._next_attempt = time.monotonic() + full_jitter(
                    self._backoff, self._rng
                )
                self._backoff = min(self._backoff * 2, self._max_backoff)
            return None
        with self._lock:
            if self._closed:
                loser = fresh
                fresh = None
            elif (
                self._connection is not None
                and not self._connection.closed
            ):
                # Another thread won the connect race; use its connection.
                loser = fresh
                fresh = self._connection
            else:
                self._connection = fresh
                self._channel = _Channel(fresh)
                self._backoff = self._initial_backoff
                loser = None
        if loser is not None:
            loser.close()
        return fresh

    def _fail_waiters(self, channel: _Channel, message: str) -> None:
        """Fail every in-flight RPC parked on ``channel``."""
        with channel.lock:
            if channel.dead:
                return
            channel.dead = True
            waiters = list(channel.pending.values())
            channel.pending.clear()
            channel.fifo.clear()
        for waiter in waiters:
            waiter.failure = message
            waiter.done = True
            waiter.event.set()

    def _fail_channel(self, channel: _Channel, message: str) -> None:
        """Retire a connection and fail its in-flight RPCs."""
        with self._lock:
            if self._channel is channel:
                self._channel = None
                self._connection = None
        channel.connection.close()
        self._fail_waiters(channel, message)

    def _drop_cached_connection(self, connection: Connection) -> None:
        """Forget ``connection`` (closing it) and fail its channel."""
        with self._lock:
            stale = self._channel if self._connection is connection else None
            if self._connection is connection:
                self._connection = None
                self._channel = None
        connection.close()
        if stale is not None:
            self._fail_waiters(stale, "log server connection lost")

    def _rpc_send(self, request: LoggerRequest) -> Tuple[_Channel, _RpcWaiter]:
        """Stamp ``request`` with a fresh correlation id and put it on the
        wire; returns the channel and the waiter to collect the reply on.
        The send happens under the channel lock so waiter registration
        order equals wire order (the FIFO fallback for servers that do
        not echo correlation ids depends on it)."""
        connection = self._connect()
        if connection is None:
            raise RemoteUnavailable(
                f"log server unreachable at {self._address!r}"
            )
        with self._lock:
            channel = self._channel
        if channel is None or channel.connection is not connection:
            raise RemoteUnavailable(
                f"log server unreachable at {self._address!r}"
            )
        failure: Optional[Exception] = None
        spawn_reader = False
        with channel.lock:
            if channel.dead:
                raise RemoteUnavailable("log server connection lost")
            corr = channel.next_corr
            channel.next_corr += 1
            request.corr_id = corr
            waiter = _RpcWaiter(corr)
            channel.pending[corr] = waiter
            channel.fifo.append(waiter)
            try:
                connection.send_frame(request.encode())
            except ConnectionClosed as exc:
                channel.pending.pop(corr, None)
                try:
                    channel.fifo.remove(waiter)
                except ValueError:
                    pass
                failure = exc
            else:
                if len(channel.pending) > 1 and not channel.reader_started:
                    channel.reader_started = True
                    spawn_reader = True
        if spawn_reader:
            threading.Thread(
                target=self._reader_loop,
                args=(channel,),
                name="remotelogger-reader",
                daemon=True,
            ).start()
        if failure is not None:
            self._fail_channel(
                channel, f"log server connection lost: {failure}"
            )
            raise RemoteUnavailable(
                f"log server connection lost: {failure}"
            ) from failure
        return channel, waiter

    def _rpc_wait(
        self, channel: _Channel, waiter: _RpcWaiter, timeout: float
    ) -> LoggerResponse:
        """Collect one RPC's reply.  Waiting threads take turns as the
        *leader* that reads the shared stream (no dedicated reader thread
        exists to die or leak); everyone else parks on their waiter."""
        deadline = time.monotonic() + timeout
        while not waiter.done:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            if channel.reader_lock.acquire(blocking=False):
                try:
                    if not waiter.done:
                        self._pump(channel, min(remaining, 0.1))
                finally:
                    channel.reader_lock.release()
            else:
                waiter.event.wait(min(remaining, 0.05))
                if not waiter.done:
                    # Spurious or leadership-nudge wakeup: rearm so the
                    # next park actually sleeps.
                    waiter.event.clear()
        if waiter.done:
            self._nudge_reader(channel)
            if waiter.failure is not None:
                raise RemoteUnavailable(waiter.failure)
            return waiter.response
        return self._abandon(channel, waiter)

    def _nudge_reader(self, channel: _Channel) -> None:
        """Wake the oldest parked waiter so it can take over as the
        stream's reader.  Without this, a departing leader leaves the
        followers parked in their poll interval with nobody reading --
        a latency cliff on every leadership change."""
        with channel.lock:
            waiter = channel.fifo[0] if channel.fifo else None
        if waiter is not None:
            waiter.event.set()

    def _reader_loop(self, channel: _Channel) -> None:
        """Dedicated reader for a channel that actually pipelines.

        Waiter-to-waiter reader handoff costs a thread wakeup per reply,
        which dominates the round trip once several RPCs are in flight;
        this thread owns ``reader_lock`` for the rest of the channel's
        life and pumps replies continuously (discarding late ones by id).
        It exits when the channel dies or the stub closes -- in-flight
        waiters are failed by :meth:`_fail_waiters` on either path."""
        while not channel.dead and not self._closed:
            if not channel.reader_lock.acquire(timeout=0.1):
                continue  # a waiter-leader is mid-pump; take over next
            try:
                if channel.dead:
                    return
                self._pump(channel, 0.1)
            finally:
                channel.reader_lock.release()

    def _abandon(
        self, channel: _Channel, waiter: _RpcWaiter
    ) -> LoggerResponse:
        """Give up on one timed-out RPC."""
        with channel.lock:
            correlated = channel.correlated
            channel.pending.pop(waiter.corr, None)
            try:
                channel.fifo.remove(waiter)
            except ValueError:
                pass
        if waiter.done:  # the reply raced our abandonment: use it
            if waiter.failure is not None:
                raise RemoteUnavailable(waiter.failure)
            return waiter.response
        if not correlated:
            # The server has never echoed a correlation id on this
            # connection, so its late reply -- if one ever comes -- would
            # be FIFO-matched to the NEXT exchange's waiter.  Drop the
            # connection so every later RPC (and the breaker decisions
            # fed by it) starts on a clean stream, exactly like the
            # pre-envelope client.
            self._fail_channel(channel, "log server did not answer in time")
        # A correlating server's late reply is discarded by id when it
        # arrives; the connection and its other in-flight RPCs survive.
        self._nudge_reader(channel)
        raise RemoteUnavailable("log server did not answer in time")

    def _pump(self, channel: _Channel, timeout: float) -> None:
        """Leader side of the shared reader: receive one frame and route
        it to its waiter -- by correlation id when the server echoes one,
        oldest-first otherwise."""
        try:
            frame = channel.connection.recv_frame(timeout=timeout)
        except ConnectionClosed as exc:
            self._fail_channel(channel, f"log server connection lost: {exc}")
            return
        if frame is None:
            return
        try:
            response = LoggerResponse.decode(frame)
        except Exception:
            return  # a malformed response is dropped, never matched
        corr = int(response.corr_id)
        with channel.lock:
            if corr:
                channel.correlated = True
                waiter = channel.pending.pop(corr, None)
                if waiter is None:
                    # A reply whose RPC already timed out: discarded by
                    # id, and the connection stays up.
                    self.late_replies_discarded += 1
                    return
                try:
                    channel.fifo.remove(waiter)
                except ValueError:
                    pass
            else:
                if not channel.fifo:
                    self.late_replies_discarded += 1
                    return
                waiter = channel.fifo.popleft()
                channel.pending.pop(waiter.corr, None)
        waiter.response = response
        waiter.done = True
        waiter.event.set()

    def _rpc(self, request: LoggerRequest, timeout: float) -> LoggerResponse:
        """One synchronous request/response exchange; raises
        :class:`RemoteUnavailable` (a :class:`LoggingError`) on any
        connection or timeout trouble.  Any number of these may be in
        flight concurrently on the shared connection."""
        channel, waiter = self._rpc_send(request)
        return self._rpc_wait(channel, waiter, timeout)

    def register_key(self, component_id: str, key: Union[PublicKey, bytes]) -> None:
        """Synchronously register; raises if the server is unreachable or
        rejects the key (startup must not proceed unkeyed)."""
        if isinstance(key, PublicKey):
            key = key.to_bytes()
        response = self._rpc(
            LoggerRequest(op=OP_REGISTER_KEY, component_id=component_id, key_bytes=key),
            timeout=5.0,
        )
        if not response.ok:
            raise LoggingError(f"key registration rejected: {response.error}")

    def _shard_tag(self, shard: Optional[int]) -> int:
        """Wire encoding of a shard choice: an explicit ``shard`` wins,
        then the pinned shard, then 0 (untargeted)."""
        if shard is None:
            shard = self._shard
        return 0 if shard is None else shard + 1

    def health(
        self, timeout: float = 5.0, shard: Optional[int] = None
    ) -> LogCommitment:
        """Probe the server's commitment (entry count, chain head, Merkle
        root).  Raises :class:`LoggingError` when the server is down --
        the signal a replicated deployment's circuit breaker feeds on.
        Against a sharded server an untargeted probe reports the aggregate
        (set root in both hash slots); ``shard`` selects one shard."""
        response = self._rpc(
            LoggerRequest(op=OP_HEALTH, shard=self._shard_tag(shard)),
            timeout=timeout,
        )
        if not response.ok:
            raise LoggingError(f"health probe rejected: {response.error}")
        return LogCommitment(
            entries=int(response.entries),
            chain_head=bytes(response.chain_head),
            merkle_root=bytes(response.merkle_root),
            total_bytes=int(response.total_bytes),
        )

    def shard_count(self, timeout: float = 5.0) -> int:
        """The server's shard count (0 = not sharded), via an untargeted
        health probe -- how callers discover a sharded layout."""
        response = self._rpc(LoggerRequest(op=OP_HEALTH), timeout=timeout)
        if not response.ok:
            raise LoggingError(f"health probe rejected: {response.error}")
        return int(response.shards)

    def fetch_records(
        self,
        start: int,
        count: int,
        timeout: float = 10.0,
        shard: Optional[int] = None,
    ) -> List[bytes]:
        """Fetch up to ``count`` raw records starting at index ``start``
        (the donor side of anti-entropy catch-up).  Record indexes on a
        sharded server are per shard, so pass ``shard`` (or pin one) when
        fetching from one."""
        response = self._rpc(
            LoggerRequest(
                op=OP_FETCH, start=start, count=count, shard=self._shard_tag(shard)
            ),
            timeout=timeout,
        )
        if not response.ok:
            raise LoggingError(f"record fetch rejected: {response.error}")
        return [bytes(record) for record in response.records]

    def fetch_keys(self, timeout: float = 5.0) -> Dict[str, bytes]:
        """Fetch the server's key registry (``component_id -> key bytes``)."""
        response = self._rpc(LoggerRequest(op=OP_KEYS), timeout=timeout)
        if not response.ok:
            raise LoggingError(f"key fetch rejected: {response.error}")
        return {
            component_id: bytes(blob)
            for component_id, blob in zip(response.key_ids, response.key_blobs)
        }

    # -- proof plane (signed tree heads + Merkle proofs) -------------------

    def _proof_rpc(self, request: LoggerRequest, timeout: float) -> LoggerResponse:
        request.deadline_ms = max(1, int(timeout * 1000))
        response = self._rpc(request, timeout=timeout)
        if not response.ok:
            if int(response.code) == OP_PROOF_RANGE:
                raise ProofError(str(response.error) or "proof request refused")
            _raise_for_verdict(response, self._rng)
            raise LoggingError(f"proof request rejected: {response.error}")
        return response

    def fetch_sth(
        self, timeout: float = 5.0, shard: Optional[int] = None
    ) -> SignedTreeHead:
        """Fetch the server's signed tree head (unverified -- pair with
        :meth:`enable_sth_verification` / :meth:`verified_sth` to check
        it).  Untargeted against a sharded server this is the signed *set*
        head; ``shard`` selects one shard's head."""
        response = self._proof_rpc(
            LoggerRequest(op=OP_STH, shard=self._shard_tag(shard)), timeout
        )
        return SignedTreeHead.from_bytes(bytes(response.sth_bytes))

    def prove_inclusion(
        self,
        index: int,
        tree_size: Optional[int] = None,
        timeout: float = 5.0,
        shard: Optional[int] = None,
    ) -> MerkleProof:
        """Fetch an inclusion proof for the entry at ``index``, against the
        current tree or (``tree_size``) the tree a given STH committed to.
        Raises :class:`~repro.errors.ProofError` on out-of-range input --
        including locally for negatives, which the wire cannot carry."""
        if index < 0 or (tree_size is not None and tree_size < 0):
            raise ProofError(
                f"proof request out of range: index {index}, "
                f"tree size {tree_size}"
            )
        response = self._proof_rpc(
            LoggerRequest(
                op=OP_PROVE_INCLUSION,
                proof_index=index,
                proof_tree_size=tree_size or 0,
                shard=self._shard_tag(shard),
            ),
            timeout,
        )
        hashes = [bytes(digest) for digest in response.proof_hashes]
        flags = bytes(response.proof_flags)
        if len(hashes) != len(flags):
            raise LoggingError(
                "malformed inclusion proof: digest/direction length mismatch"
            )
        return MerkleProof(
            leaf_index=int(response.proof_index),
            tree_size=int(response.proof_tree_size),
            path=tuple(
                (digest, bool(flag)) for digest, flag in zip(hashes, flags)
            ),
        )

    def prove_consistency(
        self,
        old_size: int,
        new_size: Optional[int] = None,
        timeout: float = 5.0,
        shard: Optional[int] = None,
    ) -> MerkleConsistencyProof:
        """Fetch an RFC 6962 consistency proof between two sizes of the
        server's log (``new_size`` defaults to the current size)."""
        if old_size < 0 or (new_size is not None and new_size < 0):
            raise ProofError(
                f"proof request out of range: old size {old_size}, "
                f"new size {new_size}"
            )
        response = self._proof_rpc(
            LoggerRequest(
                op=OP_PROVE_CONSISTENCY,
                proof_old_size=old_size,
                proof_tree_size=new_size or 0,
                shard=self._shard_tag(shard),
            ),
            timeout,
        )
        return MerkleConsistencyProof(
            old_size=int(response.proof_old_size),
            new_size=int(response.proof_tree_size),
            path=tuple(bytes(digest) for digest in response.proof_hashes),
        )

    def enable_sth_verification(self, public_key: PublicKey) -> TreeHeadMonitor:
        """Arm client-side verification: ``public_key`` is the logger
        identity's key (the trust anchor); every head fetched through
        :meth:`verified_sth` is then signature-checked and consistency-
        checked against the previously verified head before being cached.
        Returns the monitor (its ``evidence()`` holds any convictions)."""
        monitor = TreeHeadMonitor(public_key)
        self._sth_monitor = monitor
        return monitor

    @property
    def sth_monitor(self) -> Optional[TreeHeadMonitor]:
        return self._sth_monitor

    def verified_sth(
        self, timeout: float = 5.0, shard: Optional[int] = None
    ) -> SignedTreeHead:
        """Fetch the latest STH and verify it: signature against the
        configured logger key, append-only growth from the cached verified
        head via a consistency-proof challenge to the server.  Raises
        :class:`~repro.errors.LogIntegrityError` on any failure (the
        monitor then holds the equivocation evidence, if one was built)."""
        monitor = self._sth_monitor
        if monitor is None:
            raise LoggingError(
                "call enable_sth_verification(public_key) before verified_sth()"
            )
        sth = self.fetch_sth(timeout=timeout, shard=shard)
        return monitor.observe(
            sth,
            prove_consistency=lambda old, new: self.prove_consistency(
                old, new, timeout=timeout, shard=shard
            ),
        )

    def verify_own_entry(
        self,
        record: Union[LogEntry, bytes],
        index: int,
        timeout: float = 5.0,
        shard: Optional[int] = None,
    ) -> bool:
        """The client-audit primitive: is *my* entry really in the log the
        server is showing everyone?  Fetches and verifies the latest STH,
        then an inclusion proof for ``record`` at ``index`` against that
        exact tree size, and checks it up to the signed root."""
        payload = record.encode() if isinstance(record, LogEntry) else bytes(record)
        sth = self.verified_sth(timeout=timeout, shard=shard)
        if index >= sth.entries:
            raise ProofError(
                f"entry index {index} is not covered by the latest signed "
                f"tree head (size {sth.entries})"
            )
        proof = self.prove_inclusion(
            index, tree_size=sth.entries, timeout=timeout, shard=shard
        )
        return proof.verify(payload, sth.merkle_root)

    def submit_batch_sync(
        self,
        entries: List[Union[LogEntry, bytes]],
        shard: Optional[int] = None,
        timeout: float = 30.0,
    ) -> int:
        """Acknowledged group commit: returns the server's entry count
        after the whole batch is ingested (and, on a durable server,
        journaled).

        The process-sharded parent's submission mode: nothing is spilled
        or retried here -- :class:`RemoteUnavailable` means the caller
        does not know how much of the batch landed and must reconcile
        against the server's count after reconnecting (frames on one
        connection are ingested in order, so the count identifies the
        accepted prefix exactly); a plain :class:`LoggingError` means the
        server answered and refused (nothing was ingested).

        Chunks of one oversized batch are exchanged serially on purpose:
        the accepted-prefix property depends on stop-on-refusal, and a
        pipelined chunk landing *after* a refused one would punch a hole
        in the prefix.  *Concurrent* callers pipeline freely -- each
        call's frames carry their own correlation ids, so many batches
        may be in flight on the shared connection at once.
        """
        records = [
            entry.encode() if isinstance(entry, LogEntry) else bytes(entry)
            for entry in entries
        ]
        tag = self._shard_tag(shard)
        count = 0
        chunk: List[bytes] = []
        size = 0
        chunks: List[List[bytes]] = []
        for record in records:
            if chunk and size + len(record) > BATCH_FRAME_BYTES:
                chunks.append(chunk)
                chunk, size = [], 0
            chunk.append(record)
            size += len(record)
        if chunk:
            chunks.append(chunk)
        if not chunks:
            chunks = [[]]  # an empty batch still round-trips for the count
        # Deadline propagation: the server refuses (without ingesting)
        # work it cannot start before this client would have given up.
        deadline_ms = max(1, int(timeout * 1000))
        for chunk in chunks:
            if len(chunk) == 1:
                request = LoggerRequest(
                    op=OP_SUBMIT,
                    entry_bytes=chunk[0],
                    shard=tag,
                    sync=True,
                    deadline_ms=deadline_ms,
                )
            else:
                request = LoggerRequest(
                    op=OP_SUBMIT_BATCH,
                    entry_batch=chunk,
                    shard=tag,
                    sync=True,
                    deadline_ms=deadline_ms,
                )
            response = self._rpc(request, timeout=timeout)
            if not response.ok:
                if int(response.code) == OP_BUSY:
                    self.busy_responses += 1
                _raise_for_verdict(response, self._rng)
                raise LoggingError(f"batch submission rejected: {response.error}")
            count = int(response.entries)
        return count

    def checkpoint(self, timeout: float = 30.0) -> None:
        """Ask the server to take a durable checkpoint now."""
        response = self._rpc(LoggerRequest(op=OP_CHECKPOINT), timeout=timeout)
        if not response.ok:
            raise LoggingError(f"checkpoint rejected: {response.error}")

    def server_stats(self, timeout: float = 5.0) -> Dict[str, int]:
        """The server's flat counters (entry/byte/rejection totals plus
        whatever its ``stats()`` contributes, e.g. a shard worker's
        recovery summary)."""
        response = self._rpc(LoggerRequest(op=OP_STATS), timeout=timeout)
        if not response.ok:
            raise LoggingError(f"stats probe rejected: {response.error}")
        return json.loads(response.stats_json) if response.stats_json else {}

    def verify_remote(self, timeout: float = 60.0) -> int:
        """Run the server's tamper-evidence verification (its actual
        store, WAL bytes included); returns its entry count.  Raises
        :class:`LoggingError` with the server's integrity error when the
        store fails verification."""
        response = self._rpc(LoggerRequest(op=OP_VERIFY), timeout=timeout)
        if not response.ok:
            raise LoggingError(f"remote store failed verification: {response.error}")
        return int(response.entries)

    def submit(self, entry: Union[LogEntry, bytes]) -> int:
        """Fire-and-forget submission; returns 0 (no server-side index).

        Never raises: on connection trouble the encoded entry is spilled
        and retried on a later call (or via :meth:`flush_spill`); while
        shed mode is active (the server said BUSY recently) the entry is
        spilled immediately instead of adding load.
        """
        record = entry.encode() if isinstance(entry, LogEntry) else bytes(entry)
        if self.shedding:
            self.shed_entries += 1
            self._spill_entry(record)
            return 0
        connection = self._connect()
        if connection is None:
            self._spill_entry(record)
            return 0
        if not self._drain_spill(connection):
            self._spill_entry(record)
            return 0
        try:
            connection.send_frame(
                LoggerRequest(
                    op=OP_SUBMIT, entry_bytes=record, shard=self._shard_tag(None)
                ).encode()
            )
        except ConnectionClosed:
            self._spill_entry(record)
            return 0
        if not self._confirm_sent(connection, [record]):
            return 0
        self._after_send([record])
        return 0

    def _confirm_sent(
        self, connection: Connection, records: List[bytes]
    ) -> bool:
        """Post-send guard against the reap-vs-send race: the pre-send
        ``peer_closed()`` peek and the send are not atomic, so a
        connection the server reaped in that gap accepts the frame at the
        kernel level and discards it.  Peeking again *after* the send
        closes the window: if EOF is now visible, the frames may never be
        read -- re-spill the records and retire the connection.
        At-least-once: if the server did ingest them before closing, the
        re-sends surface as auditable duplicates, never silent loss."""
        try:
            alive = not connection.peer_closed()
        except Exception:
            alive = False
        if alive:
            return True
        self._drop_cached_connection(connection)
        with self._lock:
            self.peer_close_respills += len(records)
        for record in records:
            self._spill_entry(record)
        return False

    def submit_batch(
        self,
        entries: List[Union[LogEntry, bytes]],
        shard: Optional[int] = None,
    ) -> List[int]:
        """Fire-and-forget batched submission: one ``OP_SUBMIT_BATCH``
        frame (one send, one server round trip's worth of framing) carries
        every entry.  Never raises; on connection trouble the whole batch
        is spilled in order and re-sent later, exactly like per-entry
        submits.  ``shard`` tags the frames for a sharded server (the
        per-shard anti-entropy replay path); spilled entries are re-sent
        untagged and route by topic, which lands them identically."""
        records = [
            entry.encode() if isinstance(entry, LogEntry) else bytes(entry)
            for entry in entries
        ]
        if not records:
            return []
        if self.shedding:
            self.shed_entries += len(records)
            for record in records:
                self._spill_entry(record)
            return [0] * len(records)
        connection = self._connect()
        if connection is None or not self._drain_spill(connection):
            for record in records:
                self._spill_entry(record)
            return [0] * len(records)
        try:
            self._send_records(connection, records, shard)
        except ConnectionClosed:
            for record in records:
                self._spill_entry(record)
            return [0] * len(records)
        if not self._confirm_sent(connection, records):
            return [0] * len(records)
        self._after_send(records)
        return [0] * len(records)

    def _send_records(
        self,
        connection: Connection,
        records: List[bytes],
        shard: Optional[int] = None,
    ) -> None:
        """Send records in as few frames as possible (``OP_SUBMIT`` for a
        lone record, ``OP_SUBMIT_BATCH`` otherwise), splitting batches
        whose payload bytes would approach the transport's frame cap."""
        frame: List[bytes] = []
        size = 0
        for record in records:
            if frame and size + len(record) > BATCH_FRAME_BYTES:
                self._send_frame_of(connection, frame, shard)
                frame, size = [], 0
            frame.append(record)
            size += len(record)
        if frame:
            self._send_frame_of(connection, frame, shard)

    def _send_frame_of(
        self,
        connection: Connection,
        records: List[bytes],
        shard: Optional[int] = None,
    ) -> None:
        tag = self._shard_tag(shard)
        if len(records) == 1:
            request = LoggerRequest(op=OP_SUBMIT, entry_bytes=records[0], shard=tag)
        else:
            request = LoggerRequest(op=OP_SUBMIT_BATCH, entry_batch=records, shard=tag)
        connection.send_frame(request.encode())

    def _after_send(self, records: List[bytes]) -> None:
        """Flow-control bookkeeping after fire-and-forget sends landed on
        the socket: charge the credit window and, when it fills, force a
        credit sync before stuffing more unconfirmed bytes in."""
        if self._credit is None:
            return
        self._unacked += len(records)
        if self._credit.charge(sum(len(record) for record in records)):
            self._credit_sync()

    def _credit_sync(self) -> None:
        """One empty synchronous batch round trip.

        TCP delivers this connection's frames in order and the endpoint
        serves them serially, so *any* answer -- including a BUSY refusal
        -- proves every earlier fire-and-forget frame was ingested: the
        window settles and the retry budget collects the acked entries'
        tokens.  A BUSY answer additionally opens a shed window.  Never
        raises (fire-and-forget callers sit above this).
        """
        flow = self._flow
        assert flow is not None and self._credit is not None
        request = LoggerRequest(
            op=OP_SUBMIT_BATCH,
            shard=self._shard_tag(None),
            sync=True,
            deadline_ms=max(1, int(flow.credit_timeout * 1000)),
        )
        try:
            response = self._rpc(request, timeout=flow.credit_timeout)
        except LoggingError:
            # Unreachable / timed out: outstanding bytes are moot, the
            # spill/drain machinery owns recovery from here.
            self._credit.reset()
            return
        acked, self._unacked = self._unacked, 0
        self._credit.settle()
        if self._retry_budget is not None and acked:
            self._retry_budget.deposit(acked)
        if not response.ok and int(response.code) == OP_BUSY:
            self.busy_responses += 1
            self._enter_shed(int(response.retry_after_ms) / 1000.0)
        else:
            self._shed_pause = flow.shed_min_pause

    def _enter_shed(self, hint: float) -> None:
        """Open (or extend) the shed window: at least the server's
        retry-after hint, escalating exponentially on consecutive BUSY
        verdicts, with full jitter so a fleet's drain attempts spread."""
        flow = self._flow
        assert flow is not None
        pause = max(hint, self._shed_pause, flow.shed_min_pause)
        pause = min(pause, flow.shed_max_pause)
        self._shed_until = time.monotonic() + pause + full_jitter(
            pause, self._rng
        )
        self._shed_pause = min(pause * 2, flow.shed_max_pause)

    def _spill_entry(self, record: bytes) -> None:
        with self._lock:
            self._spill.append(record)
            while len(self._spill) > self._spill_capacity:
                overflow = self._spill.popleft()
                if not self._overflow_warned:
                    self._overflow_warned = True
                    logger.warning(
                        "RemoteLogger spill queue overflowed (capacity %d); "
                        "%s",
                        self._spill_capacity,
                        "overflowing oldest entries to %s" % self._disk.path
                        if self._disk is not None
                        else "oldest evidence is being DROPPED "
                        "(no spill_path configured)",
                    )
                if self._disk is None:
                    self.dropped += 1  # overflow: oldest evidence lost
                    continue
                try:
                    self._disk.append(overflow)
                    self.spilled_to_disk += 1
                except OSError:
                    self.dropped += 1  # disk full/gone: lost after all

    def _drain_spill(self, connection: Connection) -> bool:
        """Re-send parked entries oldest-first; ``False`` on failure.

        The disk file holds entries *older* than anything in memory (it
        receives the memory queue's overflow), so it drains first to keep
        global FIFO order.  Both queues drain in ``submit_batch_max``-sized
        ``OP_SUBMIT_BATCH`` frames, so recovering from a long outage costs
        one frame per batch instead of one per parked entry.

        With flow control, every drained batch is a *retransmission* and
        spends one retry-budget token; an empty bucket pauses the drain
        (``False``) until successes or the time trickle mint more.  That
        is the bound that keeps a fleet recovering from an outage from
        re-flooding the server that just came back.
        """
        while self._disk is not None:
            batch = self._disk.peek_many(self._submit_batch_max)
            if not batch:
                break
            if self._retry_budget is not None and not self._retry_budget.take():
                return False
            try:
                self._send_records(connection, batch)
            except ConnectionClosed:
                return False
            # At-least-once window: a crash between send and consume re-sends
            # this batch on restart.  The server-side duplicates are
            # visible to the auditor, never silent loss.
            self._disk.consume_many(len(batch))
            with self._lock:
                self.retries += len(batch)
            if self._credit is not None:
                self._unacked += len(batch)
                self._credit.charge(sum(len(record) for record in batch))
        while True:
            with self._lock:
                if not self._spill:
                    return True
                batch = [
                    self._spill[i]
                    for i in range(min(len(self._spill), self._submit_batch_max))
                ]
            if self._retry_budget is not None and not self._retry_budget.take():
                return False
            try:
                self._send_records(connection, batch)
            except ConnectionClosed:
                return False
            if self._credit is not None:
                self._unacked += len(batch)
                self._credit.charge(sum(len(record) for record in batch))
            with self._lock:
                # pop what we just sent (submit is single-callered per node,
                # but stay safe against concurrent drains)
                for record in batch:
                    if self._spill and self._spill[0] is record:
                        self._spill.popleft()
                self.retries += len(batch)

    def flush_spill(self) -> bool:
        """Attempt to re-send all spilled entries now; ``True`` if empty."""
        connection = self._connect()
        if connection is None:
            return self.spilled == 0
        return self._drain_spill(connection)

    def discard_spill(self) -> int:
        """Drop every parked entry (memory and disk); returns the count.

        Only the replication layer calls this, right before anti-entropy
        catch-up: the discarded entries are re-fetched from a healthy peer
        that already holds them, so discarding loses no evidence -- it
        prevents the reconnect drain from double-submitting them.
        """
        with self._lock:
            count = len(self._spill)
            self._spill.clear()
            if self._disk is not None:
                count += len(self._disk)
                while len(self._disk):
                    self._disk.consume()
            return count

    def close(self) -> None:
        """Drain-then-stop: re-send what a live connection will take, park
        the rest on the disk FIFO (when configured), then release
        resources.  A clean shutdown therefore never silently discards
        queued evidence -- it either reaches the server or survives on
        disk for the next incarnation of this component."""
        with self._lock:
            self._closed = True  # no new connections from here on
            connection = self._connection
        if connection is not None and not connection.closed:
            try:
                self._drain_spill(connection)
            except Exception:
                pass  # best effort; whatever remains is parked below
        with self._lock:
            if self._disk is not None:
                while self._spill:
                    record = self._spill.popleft()
                    try:
                        self._disk.append(record)
                        self.spilled_to_disk += 1
                    except OSError:
                        self.dropped += 1
            stale = self._channel
            self._channel = None
            if self._connection is not None:
                self._connection.close()
                self._connection = None
            if self._disk is not None:
                self._disk.close()
        if stale is not None:
            self._fail_waiters(stale, "logger stub closed")
