"""ADLP: the Accountable Data Logging Protocol.

The package implements the paper's Section IV protocol and Section V
prototype structure:

- :mod:`repro.core.entries` -- the log-entry record (one structure shared by
  the naive and ADLP schemes, as in the prototype).
- :mod:`repro.core.protocol` -- the wire envelope ``M_x = (seq, D, s_x)``
  and acknowledgement ``M_y = (seq, h(I_y), s_y)``.
- :mod:`repro.core.policy` -- :class:`AdlpConfig`: tunable protocol knobs
  (store ``h(D)`` vs ``D``, withhold-until-ACK, ACK timeout, aggregation).
- :mod:`repro.core.logging_thread` -- the per-node background thread that
  pushes entries to the logger (Section V-B's *Logging Thread*).
- :mod:`repro.core.log_server` / :mod:`repro.core.log_store` -- the trusted
  logger: key registration, hash-chained tamper-evident entry store.
- :mod:`repro.core.naive_protocol` -- Definition 2's naive/base scheme.
- :mod:`repro.core.adlp_protocol` -- the ADLP transport protocol proper.
"""

from repro.core.entries import Direction, Scheme, LogEntry
from repro.core.protocol import AdlpMessage, AdlpAck, message_digest
from repro.core.policy import (
    AdlpConfig,
    AdmissionConfig,
    FlowControlConfig,
    ReplicationConfig,
)
from repro.core.log_server import LogCommitment, LogServer
from repro.core.log_store import InMemoryLogStore, FileLogStore
from repro.core.dedup_store import DedupLogStore
from repro.core.logging_thread import LoggingThread
from repro.core.naive_protocol import NaiveProtocol
from repro.core.adlp_protocol import AdlpProtocol
from repro.core.remote import LogServerEndpoint, RemoteLogger
from repro.storage.durable_store import DurableLogStore

__all__ = [
    "DurableLogStore",
    "LogServerEndpoint",
    "RemoteLogger",
    "Direction",
    "Scheme",
    "LogEntry",
    "AdlpMessage",
    "AdlpAck",
    "message_digest",
    "AdlpConfig",
    "AdmissionConfig",
    "FlowControlConfig",
    "ReplicationConfig",
    "LogServer",
    "LogCommitment",
    "InMemoryLogStore",
    "FileLogStore",
    "DedupLogStore",
    "LoggingThread",
    "NaiveProtocol",
    "AdlpProtocol",
]
