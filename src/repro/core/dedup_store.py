"""Content-addressed, deduplicating log storage.

Section VI-E suggests the aggregation "kind of optimization can also be
done at the log server-side".  This store does exactly that, transparently
to the components: on ingest, a log entry's bulky ``data`` field is
replaced by its digest and the payload is stored **once** in a
content-addressed blob table.  When N subscribers cause N publisher
entries for one ~900 KB camera frame, the frame is persisted once instead
of N times -- without changing the wire protocol or the components.

Integrity is preserved: the hash chain runs over the *original* encoded
entries (digests are computed before stripping; only the digests are
kept), and :meth:`records` reconstructs byte-identical originals from the
blob table, so the chain re-verifies and signatures still check.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from repro.core.entries import LogEntry
from repro.core.log_store import LogStore
from repro.crypto.hashchain import GENESIS, chain_digest
from repro.crypto.hashing import sha256
from repro.errors import LogIntegrityError

#: data fields smaller than this are kept inline (dedup bookkeeping would
#: cost more than it saves)
MIN_DEDUP_SIZE = 256


class DedupLogStore(LogStore):
    """In-memory deduplicating store with exact-reconstruction semantics."""

    def __init__(self, min_dedup_size: int = MIN_DEDUP_SIZE):
        self._digests: List[bytes] = []  # chain digests over ORIGINAL records
        self._head = GENESIS
        self._stripped: List[bytes] = []  # stored, possibly deduped records
        self._blob_refs: List[bytes] = []  # b"" when not deduped
        self._blobs: Dict[bytes, bytes] = {}
        self._min_dedup_size = min_dedup_size
        self._logical_bytes = 0  # what a plain store would hold
        self._lock = threading.Lock()

    # -- ingestion -------------------------------------------------------

    def append(self, record: bytes) -> int:
        with self._lock:
            self._head = chain_digest(self._head, record)
            self._digests.append(self._head)
            stripped, blob_ref = self._strip(record)
            self._stripped.append(stripped)
            self._blob_refs.append(blob_ref)
            self._logical_bytes += len(record)
            return len(self._digests) - 1

    def _strip(self, record: bytes) -> Tuple[bytes, bytes]:
        """Move a large ``data`` payload into the blob table."""
        try:
            decoded = LogEntry.decode(record)
        except Exception:
            return record, b""
        if len(decoded.data) < self._min_dedup_size:
            return record, b""
        payload = decoded.data
        ref = sha256(payload)
        self._blobs.setdefault(ref, payload)
        decoded.data = b""
        stripped = decoded.encode()
        if self._reassemble(stripped, ref) != record:
            # non-canonical encodings cannot be reconstructed exactly;
            # store such records verbatim rather than corrupt the chain
            return record, b""
        return stripped, ref

    def _reassemble(self, stripped: bytes, ref: bytes) -> bytes:
        payload = self._blobs.get(ref)
        if payload is None:
            raise LogIntegrityError(f"missing blob {ref.hex()}")
        decoded = LogEntry.decode(stripped)
        decoded.data = payload
        return decoded.encode()

    def _reconstruct(self, index: int) -> bytes:
        stripped = self._stripped[index]
        ref = self._blob_refs[index]
        if not ref:
            return stripped
        return self._reassemble(stripped, ref)

    # -- LogStore interface ------------------------------------------------

    def records(self) -> List[bytes]:
        with self._lock:
            return [self._reconstruct(i) for i in range(len(self._stripped))]

    def __len__(self) -> int:
        with self._lock:
            return len(self._stripped)

    @property
    def total_bytes(self) -> int:
        """Logical bytes ingested (comparable to a plain store)."""
        with self._lock:
            return self._logical_bytes

    @property
    def physical_bytes(self) -> int:
        """Bytes actually held after deduplication."""
        with self._lock:
            return sum(len(s) for s in self._stripped) + sum(
                len(b) for b in self._blobs.values()
            )

    @property
    def dedup_ratio(self) -> float:
        """logical / physical; 1.0 means no saving."""
        physical = self.physical_bytes
        return self.total_bytes / physical if physical else 1.0

    def verify(self) -> None:
        """Reconstruct every record and re-verify the original chain."""
        with self._lock:
            prev = GENESIS
            for i, expected in enumerate(self._digests):
                record = self._reconstruct(i)
                prev = chain_digest(prev, record)
                if prev != expected:
                    raise LogIntegrityError(
                        f"record {i} does not reconstruct to its chained form"
                    )

    def head(self) -> bytes:
        with self._lock:
            return self._head
