"""Protocol configuration.

Bundles the design knobs the paper discusses so benchmarks and ablations can
sweep them:

- ``subscriber_stores_hash`` -- Section IV-A's ``h(I_y)`` vs ``I_y`` choice
  for the subscriber's log entry (the Figure 15 ablation);
- ``ack_returns_data`` -- whether the ACK echoes the data instead of the
  hash (the small-data variant);
- ``require_ack`` -- the withhold-until-ACK penalty of Section V-B step 2;
- ``aggregate_publisher_entries`` -- the Section VI-E aggregated-logging
  extension (one publisher entry per publication instead of per subscriber);
- ``verify_on_receive`` -- optional eager verification of the publisher's
  signature at the subscriber (off in the paper's measured fast path; the
  auditor verifies after the fact).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.crypto.keys import DEFAULT_KEY_BITS
from repro.crypto.schemes import default_scheme_name, get_scheme

# Overload-protection configs live with their mechanisms in
# ``repro.resilience`` (stdlib-only modules, so this import direction is
# cycle-free); re-exported here because callers treat them as policy.
from repro.resilience.admission import AdmissionConfig
from repro.resilience.flow import FlowControlConfig

__all__ = [
    "AdlpConfig",
    "AdmissionConfig",
    "FlowControlConfig",
    "ReplicationConfig",
]


@dataclass(frozen=True)
class AdlpConfig:
    """Immutable per-node ADLP configuration."""

    #: RSA modulus size; the paper uses 1024.  Fixed-size schemes
    #: (Ed25519) ignore it.
    key_bits: int = DEFAULT_KEY_BITS

    #: Signature scheme this node generates its key pair under (``rsa``,
    #: the paper-faithful default, or ``ed25519``).  The default follows
    #: the ``ADLP_SIG_SCHEME`` environment variable so a whole process can
    #: be switched without touching call sites.  Verification is always
    #: scheme-agnostic -- the registered public key carries the scheme --
    #: so mixed-scheme topologies work.
    signature_scheme: str = field(default_factory=default_scheme_name)

    #: Subscriber log entries store ``h(seq||D)`` instead of ``D``.
    subscriber_stores_hash: bool = True

    #: ACK carries the raw data instead of the hash (small-data option).
    ack_returns_data: bool = False

    #: Withhold the next message to a subscriber until it ACKs the previous
    #: one.  Disabling this removes the completeness penalty (ablation).
    require_ack: bool = True

    #: Seconds a publisher link waits for an ACK before treating the
    #: subscriber as non-cooperative.
    ack_timeout: float = 5.0

    #: When an ACK times out: ``True`` stops serving that subscriber (the
    #: paper's penalty), ``False`` keeps sending (ablation).
    drop_unacked_subscriber: bool = True

    #: Retransmissions of an unacknowledged publication before giving up.
    #: ``0`` is the paper-faithful behavior (a missing ACK is treated as
    #: subscriber misbehavior, never a network fault); lossy deployments
    #: raise it so transient frame loss does not starve a faithful
    #: subscriber or litter the log with unproven publications.
    max_retransmits: int = 0

    #: Multiplier applied to the ACK-wait timeout after each timeout
    #: (exponential backoff across retransmission attempts).
    retransmit_backoff: float = 2.0

    #: Upper bound a single ACK wait can grow to under backoff.
    max_ack_timeout: float = 30.0

    #: Per-server-submission retries performed by the logging thread before
    #: an entry is counted as dropped.
    log_retry_limit: int = 2

    #: Initial sleep between logging-thread submission retries (doubles per
    #: attempt).
    log_retry_backoff: float = 0.01

    #: Fold all subscribers' ACKs for one publication into one publisher
    #: entry (Section VI-E extension).
    aggregate_publisher_entries: bool = False

    #: Seconds an aggregating publisher waits for further ACKs of the same
    #: publication before flushing the combined entry.
    aggregation_window: float = 0.05

    #: Subscriber verifies the publisher signature before delivering the
    #: message to the application (eager detection; off the paper's path).
    verify_on_receive: bool = False

    #: Entries the logging thread drains per wakeup into one group-commit
    #: ``submit_batch`` call when the sink supports it (one lock
    #: acquisition, one WAL fsync, one RPC round trip for the whole
    #: batch).  ``1`` restores strict per-entry submission.  Batched and
    #: per-entry submission of the same entry stream produce byte-identical
    #: chain heads and Merkle roots -- batching changes throughput only.
    submit_batch_max: int = 64

    #: Directory for per-component durable sequence state (one journal per
    #: component id).  ``None`` keeps counters in memory only; set it and a
    #: restarted publisher resumes numbering where it stopped instead of
    #: re-signing old sequence numbers (which would audit as
    #: ``replayed_sequence``), while a restarted subscriber keeps rejecting
    #: frames it already accepted.
    state_dir: "str | None" = None

    def __post_init__(self) -> None:
        if self.key_bits < 128:
            raise ValueError("key_bits must be at least 128")
        get_scheme(self.signature_scheme)  # ValueError on unknown names
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if self.max_retransmits < 0:
            raise ValueError("max_retransmits must be non-negative")
        if self.retransmit_backoff < 1.0:
            raise ValueError("retransmit_backoff must be at least 1")
        if self.max_ack_timeout < self.ack_timeout:
            raise ValueError("max_ack_timeout must be at least ack_timeout")
        if self.log_retry_limit < 0:
            raise ValueError("log_retry_limit must be non-negative")
        if self.log_retry_backoff < 0:
            raise ValueError("log_retry_backoff must be non-negative")
        if self.aggregation_window < 0:
            raise ValueError("aggregation_window must be non-negative")
        if self.submit_batch_max < 1:
            raise ValueError("submit_batch_max must be at least 1")


@dataclass(frozen=True)
class ReplicationConfig:
    """Client-side policy for a replicated trusted logger.

    Governs how :class:`~repro.replication.ReplicatedLogger` fans submits
    out to a replica set: what counts as a durable quorum, when a replica's
    circuit breaker trips and how its half-open probes back off, and how
    anti-entropy catch-up batches its record fetches.
    """

    #: Replica endpoints (transport addresses); may also be given directly
    #: to :class:`~repro.replication.ReplicatedLogger`.
    replicas: Tuple = ()

    #: Replicas a submit must reach for "durable on a quorum"; ``None``
    #: derives a majority (``n // 2 + 1``) from the replica-set size.
    quorum: Optional[int] = None

    #: Consecutive failures that trip a replica's breaker open.
    breaker_failure_threshold: int = 3

    #: Seconds a freshly-opened breaker waits before its first half-open
    #: probe (doubles on every failed probe).
    breaker_reset_timeout: float = 0.5

    #: Upper bound the open interval can grow to under backoff.
    breaker_max_reset_timeout: float = 30.0

    #: Jitter fraction applied to every open interval (0.2 = up to +20%),
    #: so a replica coming back does not face synchronized probe storms.
    breaker_jitter: float = 0.2

    #: Seconds a health probe waits for the replica's commitment.
    health_timeout: float = 2.0

    #: Seconds between background health probes (``start_probing``).
    probe_interval: float = 1.0

    #: Records fetched per anti-entropy batch during catch-up.
    fetch_batch: int = 1024

    #: Shard count of the replicated servers (each replica a
    #: :class:`~repro.sharding.sharded_server.ShardedLogServer` with the
    #: same count).  ``0`` means unsharded replicas.  Sharding changes
    #: catch-up only: record indexes and chain heads are per shard, so
    #: anti-entropy replays each shard's gap separately and the final
    #: commitment comparison uses the shard-set root.
    shards: int = 0

    #: Client-side overload protection applied to every replica handle
    #: (credit window, retry budget, BUSY-driven shedding).  ``None``
    #: keeps the pre-overload behavior.
    flow_control: Optional[FlowControlConfig] = None

    def __post_init__(self) -> None:
        if self.shards < 0:
            raise ValueError("shards must be non-negative")
        if self.quorum is not None and self.quorum < 1:
            raise ValueError("quorum must be at least 1")
        if self.breaker_failure_threshold < 1:
            raise ValueError("breaker_failure_threshold must be at least 1")
        if self.breaker_reset_timeout <= 0:
            raise ValueError("breaker_reset_timeout must be positive")
        if self.breaker_max_reset_timeout < self.breaker_reset_timeout:
            raise ValueError(
                "breaker_max_reset_timeout must be at least breaker_reset_timeout"
            )
        if not 0 <= self.breaker_jitter <= 1:
            raise ValueError("breaker_jitter must be within [0, 1]")
        if self.health_timeout <= 0:
            raise ValueError("health_timeout must be positive")
        if self.probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if self.fetch_batch < 1:
            raise ValueError("fetch_batch must be at least 1")

    def quorum_for(self, replica_count: int) -> int:
        """The effective quorum for a set of ``replica_count`` replicas."""
        if self.quorum is not None:
            return self.quorum
        return replica_count // 2 + 1
