"""Protocol configuration.

Bundles the design knobs the paper discusses so benchmarks and ablations can
sweep them:

- ``subscriber_stores_hash`` -- Section IV-A's ``h(I_y)`` vs ``I_y`` choice
  for the subscriber's log entry (the Figure 15 ablation);
- ``ack_returns_data`` -- whether the ACK echoes the data instead of the
  hash (the small-data variant);
- ``require_ack`` -- the withhold-until-ACK penalty of Section V-B step 2;
- ``aggregate_publisher_entries`` -- the Section VI-E aggregated-logging
  extension (one publisher entry per publication instead of per subscriber);
- ``verify_on_receive`` -- optional eager verification of the publisher's
  signature at the subscriber (off in the paper's measured fast path; the
  auditor verifies after the fact).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import DEFAULT_KEY_BITS


@dataclass(frozen=True)
class AdlpConfig:
    """Immutable per-node ADLP configuration."""

    #: RSA modulus size; the paper uses 1024.
    key_bits: int = DEFAULT_KEY_BITS

    #: Subscriber log entries store ``h(seq||D)`` instead of ``D``.
    subscriber_stores_hash: bool = True

    #: ACK carries the raw data instead of the hash (small-data option).
    ack_returns_data: bool = False

    #: Withhold the next message to a subscriber until it ACKs the previous
    #: one.  Disabling this removes the completeness penalty (ablation).
    require_ack: bool = True

    #: Seconds a publisher link waits for an ACK before treating the
    #: subscriber as non-cooperative.
    ack_timeout: float = 5.0

    #: When an ACK times out: ``True`` stops serving that subscriber (the
    #: paper's penalty), ``False`` keeps sending (ablation).
    drop_unacked_subscriber: bool = True

    #: Fold all subscribers' ACKs for one publication into one publisher
    #: entry (Section VI-E extension).
    aggregate_publisher_entries: bool = False

    #: Seconds an aggregating publisher waits for further ACKs of the same
    #: publication before flushing the combined entry.
    aggregation_window: float = 0.05

    #: Subscriber verifies the publisher signature before delivering the
    #: message to the application (eager detection; off the paper's path).
    verify_on_receive: bool = False

    def __post_init__(self) -> None:
        if self.key_bits < 128:
            raise ValueError("key_bits must be at least 128")
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if self.aggregation_window < 0:
            raise ValueError("aggregation_window must be non-negative")
