"""Sequence-number tracking.

ADLP embeds per-topic sequence numbers in every signed digest as freshness
information (Section IV-A).  On the receive path, :class:`SequenceTracker`
detects replayed/stale frames (a component re-delivering an old ``M_x``) and
counts gaps (publications the subscriber never saw, e.g. dropped by QoS).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class SequenceStats:
    """Counters maintained by a :class:`SequenceTracker`."""

    accepted: int = 0
    stale: int = 0
    gaps: int = 0  # number of skipped-over sequence numbers


class SequenceTracker:
    """Tracks the highest sequence number seen on one inbound link."""

    def __init__(self, initial: int = 0) -> None:
        # ``initial`` seeds the high-water mark (e.g. from a persisted
        # sequence-state journal) so a restarted subscriber keeps rejecting
        # frames its predecessor already accepted.
        self._last = initial
        self._lock = threading.Lock()
        self.stats = SequenceStats()

    def accept(self, seq: int) -> bool:
        """Record an inbound sequence number.

        Returns ``True`` when the frame is fresh (``seq`` strictly greater
        than anything seen before) and ``False`` for a stale/replayed frame.
        """
        with self._lock:
            if seq <= self._last:
                self.stats.stale += 1
                return False
            if self._last and seq > self._last + 1:
                self.stats.gaps += seq - self._last - 1
            self._last = seq
            self.stats.accepted += 1
            return True

    @property
    def last(self) -> int:
        """Highest sequence number accepted so far (0 if none)."""
        with self._lock:
            return self._last
