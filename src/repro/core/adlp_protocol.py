"""The ADLP transport protocol (Sections IV-A and V-B).

Per publication of payload ``D`` with sequence number ``seq``:

1. The publisher computes ``digest = h(seq || D)`` and
   ``s_x = sign_x(digest)`` **once**, builds the envelope
   ``M_x = (seq, D, s_x)``, and fans it out to every subscriber link
   (step 2 of the prototype flow).
2. Each subscriber's transport layer, before delivering ``D`` to the
   application, recomputes the digest, signs it
   (``s_y = sign_y(digest)``), returns the acknowledgement
   ``M_y = (seq, h, s_y)`` over the same connection, and queues its log
   entry ``L_y`` (steps 3-5).
3. The publisher's link worker waits for ``M_y`` and only then queues its
   log entry ``L_x`` containing both signatures (step 6).  Until the ACK
   arrives, no further message is sent to that subscriber -- the protocol's
   penalty against stealthy subscribers (Lemma 2).

Everything here lives below the application layer: installing
:class:`AdlpProtocol` on a node changes no application code.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.logging_thread import LoggingThread
from repro.core.policy import AdlpConfig
from repro.core.protocol import AdlpAck, AdlpMessage, message_digest
from repro.core.sequencing import SequenceTracker
from repro.crypto.keys import KeyPair, PublicKey, generate_keypair
from repro.errors import ProtocolError
from repro.middleware.transport.base import (
    Connection,
    ConnectionClosed,
    PublisherProtocol,
    SubscriberProtocol,
    TransportProtocol,
)
from repro.storage.seqstate import SequenceStateFile
from repro.util.clock import Clock, SystemClock

logger = logging.getLogger(__name__)

#: Publications a publisher protocol remembers while awaiting ACKs.
_PENDING_CAPACITY = 1024

#: Recently sent ACKs a subscriber remembers (per publisher link) so a
#: retransmitted frame can be re-acknowledged without re-delivery.
_ACK_CACHE_CAPACITY = 128

#: Byte ceiling for the ACK cache: with ``ack_returns_data`` each cached
#: ACK carries the full payload, so a count-only bound is unbounded memory
#: for large messages.
_ACK_CACHE_MAX_BYTES = 4 * 1024 * 1024


@dataclass
class AdlpStats:
    """Per-node protocol counters (exposed for tests and benchmarks).

    The object doubles as a callable: ``protocol.stats()`` returns one flat
    dict combining these counters with any attached sources (the logging
    thread's ``dropped``, a remote logger's spill counters), so loss is
    visible next to ``retransmits`` instead of scattered over three
    objects.
    """

    signatures: int = 0
    digests: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    ack_timeouts: int = 0
    retransmits: int = 0
    dup_frames_dropped: int = 0
    log_submit_retries: int = 0
    invalid_frames: int = 0
    invalid_signatures: int = 0
    stale_frames: int = 0
    pending_evicted: int = 0
    late_acks_recovered: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _sources: List[Callable[[], Dict[str, int]]] = field(
        default_factory=list, repr=False
    )

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def attach_source(self, source: Callable[[], Dict[str, int]]) -> None:
        """Fold ``source()``'s counters into every :meth:`as_dict` call."""
        with self._lock:
            self._sources.append(source)

    def as_dict(self) -> Dict[str, int]:
        """All counters, own fields plus attached sources, as one dict."""
        with self._lock:
            out = {
                f.name: getattr(self, f.name)
                for f in fields(self)
                if not f.name.startswith("_")
            }
            sources = list(self._sources)
        for source in sources:
            for name, value in source().items():
                out[name] = out.get(name, 0) + int(value)
        return out

    __call__ = as_dict


class _AckAggregator:
    """Buffers per-publication ACKs for the aggregated-logging extension.

    The paper suggests (Section VI-E) that "a publisher creates a single log
    entry per publication, regardless of the number of subscribers,
    containing all of the subscribers' hashes and signatures".  ACKs arriving
    within ``window`` seconds of the first one for a given ``seq`` are folded
    into one entry.

    Expiry is deadline-driven, not arrival-driven: :meth:`flush_expired`
    is called from the logging thread's wakeup tick, so a buffer whose
    window lapsed is flushed promptly even if no later ACK ever arrives
    (previously an idle topic could hold its last aggregated entry
    indefinitely).  Time flows through the injected ``now`` callable so
    tests can drive expiry with a simulated clock.
    """

    def __init__(
        self,
        window: float,
        flush: Callable[[LogEntry], None],
        now: Callable[[], float] = time.monotonic,
    ):
        self._window = window
        self._flush = flush
        self._now = now
        self._buffers: Dict[int, Tuple[float, LogEntry]] = {}
        self._lock = threading.Lock()

    def add(self, entry_base: LogEntry, ack_peer: str, ack_hash: bytes, ack_sig: bytes) -> None:
        now = self._now()
        with self._lock:
            buffered = self._buffers.get(entry_base.seq)
            if buffered is None:
                entry_base.aggregated = True
                entry_base.ack_peer_ids = [ack_peer]
                entry_base.ack_peer_hashes = [ack_hash]
                entry_base.ack_peer_sigs = [ack_sig]
                self._buffers[entry_base.seq] = (now, entry_base)
            else:
                _, entry = buffered
                entry.ack_peer_ids = entry.ack_peer_ids + [ack_peer]
                entry.ack_peer_hashes = entry.ack_peer_hashes + [ack_hash]
                entry.ack_peer_sigs = entry.ack_peer_sigs + [ack_sig]
            flushable = self._pop_expired(now)
        for entry in flushable:
            self._flush(entry)

    def _pop_expired(self, now: float) -> List[LogEntry]:
        """Remove and return expired buffers; caller holds ``_lock``."""
        expired = [
            seq
            for seq, (t0, _) in self._buffers.items()
            if now - t0 >= self._window
        ]
        return [self._buffers.pop(seq)[1] for seq in expired]

    def flush_expired(self) -> None:
        """Flush every buffer whose aggregation window has lapsed."""
        with self._lock:
            flushable = self._pop_expired(self._now())
        for entry in flushable:
            self._flush(entry)

    def flush_all(self) -> None:
        with self._lock:
            entries = [entry for _, entry in self._buffers.values()]
            self._buffers.clear()
        for entry in entries:
            self._flush(entry)


class _AdlpPublisherProtocol(PublisherProtocol):
    """Publisher side: sign once per publication, log once per ACK."""

    def __init__(self, outer: "AdlpProtocol", topic: str, type_name: str):
        self._outer = outer
        self._topic = topic
        self._type_name = type_name
        # seq -> (payload, own signature); bounded so a subscriber that
        # never ACKs cannot leak memory.
        self._pending: "OrderedDict[int, Tuple[bytes, bytes]]" = OrderedDict()
        self._pending_lock = threading.Lock()
        self._evict_warned = False
        self._aggregator: Optional[_AckAggregator] = None
        if outer.config.aggregate_publisher_entries:
            self._aggregator = _AckAggregator(
                outer.config.aggregation_window,
                self._submit_entry,
                now=outer.clock.now,
            )
            outer._register_aggregator(self._aggregator)

    # Small hooks so subclasses (the adversary harness) can deviate in
    # exactly one unfaithful dimension at a time.
    def _now(self) -> float:
        return self._outer.clock.now()

    def _submit_entry(self, entry: LogEntry) -> None:
        self._outer._enqueue_entry(entry)

    # -- once per publication ----------------------------------------------

    def initial_seq(self) -> int:
        state = self._outer.seq_state
        if state is None:
            return 1
        # Resume after the highest number ever signed on this topic: reusing
        # one would audit as a ``replayed_sequence`` against a faithful node.
        return state.last_published(self._topic) + 1

    def make_frame(self, seq: int, payload: bytes) -> bytes:
        state = self._outer.seq_state
        if state is not None:
            # Journal before signing: a crash after the journal write but
            # before the send merely skips a number, which audits as a gap,
            # never as a replay.
            state.record_published(self._topic, seq)
        digest = message_digest(seq, payload)
        signature = self._outer.keypair.private.sign_digest(digest)
        self._outer.stats.bump("digests")
        self._outer.stats.bump("signatures")
        evicted = 0
        with self._pending_lock:
            self._pending[seq] = (payload, signature)
            while len(self._pending) > _PENDING_CAPACITY:
                self._pending.popitem(last=False)
                evicted += 1
        if evicted:
            # An un-ACKed publication fell off the pending window: any ACK
            # that arrives for it now can no longer be logged, so the
            # publisher's half of that evidence is gone.  Count it -- a
            # silent return in _log_publication hid this loss entirely.
            self._outer.stats.bump("pending_evicted", evicted)
            if not self._evict_warned:
                self._evict_warned = True
                logger.warning(
                    "publisher %s topic %r evicted an un-ACKed publication "
                    "from its pending window (capacity %d); its evidence is "
                    "lost. Further evictions are counted in "
                    "stats()['pending_evicted'] without this warning.",
                    self._outer.component_id,
                    self._topic,
                    _PENDING_CAPACITY,
                )
        return AdlpMessage(seq=seq, payload=payload, signature=signature).encode()

    # -- once per (publication, subscriber) ---------------------------------

    def on_link_send(
        self, subscriber_id: str, connection: Connection, seq: int, frame: bytes
    ) -> None:
        connection.send_frame(frame)
        config = self._outer.config
        if not config.require_ack:
            self._drain_async_acks(subscriber_id, connection)
            return
        # Bounded ACK wait with exponential backoff and capped retransmit:
        # a frame (or its ACK) lost to the network is re-sent up to
        # ``max_retransmits`` times; the subscriber's duplicate-seq handling
        # re-ACKs without re-delivering, so retransmission is idempotent.
        timeout = config.ack_timeout
        attempt = 0
        ack = None
        while True:
            ack = self._await_ack(subscriber_id, connection, seq, timeout)
            if ack is not None:
                break
            self._outer.stats.bump("ack_timeouts")
            if attempt >= config.max_retransmits or connection.closed:
                break
            attempt += 1
            timeout = min(timeout * config.retransmit_backoff, config.max_ack_timeout)
            self._outer.stats.bump("retransmits")
            try:
                connection.send_frame(frame)
            except ConnectionClosed:
                break
        if ack is None:
            # Log the publication anyway: the publisher's own record exists
            # even when the subscriber stays stealthy (the missing ACK is
            # itself evidence for the auditor).
            self._log_publication(seq, subscriber_id, ack=None)
            if config.drop_unacked_subscriber:
                raise ConnectionClosed(
                    f"subscriber {subscriber_id} did not acknowledge seq {seq}"
                )
            return
        self._outer.stats.bump("acks_received")
        self._log_publication(seq, subscriber_id, ack=ack)

    def _await_ack(
        self, subscriber_id: str, connection: Connection, seq: int, timeout: float
    ) -> Optional[AdlpAck]:
        """Read frames until the ACK for ``seq`` arrives or time runs out.

        An ACK for an *earlier* publication arriving late (after its
        retransmits were exhausted and an unproven entry was logged) is
        still a valid subscriber signature: if the publication is still in
        the pending window, the proven entry is submitted instead of the
        ACK being discarded as stale -- evidence that reached us must not
        be thrown away.  Truly stale ACKs (evicted seq) are skipped.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            try:
                frame = connection.recv_frame(timeout=remaining)
            except ConnectionClosed:
                # Link lost before the ACK: the publication still gets its
                # (unproven) log entry.
                return None
            if frame is None:
                return None
            try:
                ack = AdlpAck.parse(frame)
            except ProtocolError:
                self._outer.stats.bump("invalid_frames")
                continue
            if ack.seq == seq:
                return ack
            with self._pending_lock:
                recoverable = ack.seq in self._pending
            if recoverable:
                # The entry stays in _pending: other subscriber links may
                # still be awaiting (or recovering) their own ACKs for it.
                self._outer.stats.bump("late_acks_recovered")
                self._log_publication(ack.seq, subscriber_id, ack=ack)
                continue
            # an old ACK for an evicted publication; ignore and keep reading
            self._outer.stats.bump("stale_frames")

    def _drain_async_acks(self, subscriber_id: str, connection: Connection) -> None:
        """require_ack=False ablation: collect whatever ACKs are available
        without blocking the send path."""
        while True:
            try:
                frame = connection.recv_frame(timeout=0.0005)
            except ConnectionClosed:
                return
            if frame is None:
                return
            try:
                ack = AdlpAck.parse(frame)
            except ProtocolError:
                self._outer.stats.bump("invalid_frames")
                continue
            self._outer.stats.bump("acks_received")
            self._log_publication(ack.seq, subscriber_id, ack=ack)

    def _log_publication(
        self, seq: int, subscriber_id: str, ack: Optional[AdlpAck]
    ) -> None:
        with self._pending_lock:
            pending = self._pending.get(seq)
        if pending is None:
            return  # evicted; nothing to log against
        payload, signature = pending
        entry = LogEntry(
            component_id=self._outer.component_id,
            topic=self._topic,
            type_name=self._type_name,
            direction=Direction.OUT,
            seq=seq,
            timestamp=self._now(),
            scheme=Scheme.ADLP,
            data=payload,  # the publisher reports D'_x as-is (Table III)
            own_sig=signature,
        )
        if ack is None:
            self._submit_entry(entry)
            return
        if self._aggregator is not None:
            self._aggregator.add(
                entry, subscriber_id, ack.acknowledged_hash(), ack.signature
            )
            return
        entry.peer_id = subscriber_id
        entry.peer_hash = ack.acknowledged_hash()
        entry.peer_sig = ack.signature
        self._submit_entry(entry)

    def close(self) -> None:
        if self._aggregator is not None:
            self._aggregator.flush_all()


class _AdlpSubscriberProtocol(SubscriberProtocol):
    """Subscriber side: verify structure, ACK, log, deliver."""

    def __init__(self, outer: "AdlpProtocol", topic: str, type_name: str):
        self._outer = outer
        self._topic = topic
        self._type_name = type_name
        initial = 0
        if outer.seq_state is not None:
            # Seed from the journal so a restarted subscriber keeps
            # rejecting frames its predecessor already accepted (replay
            # across restart would be re-delivered *and* double-logged).
            initial = outer.seq_state.last_received(topic)
        self._tracker = SequenceTracker(initial=initial)
        # seq -> encoded ACK, for idempotent re-acknowledgement of
        # retransmitted/duplicated frames (never re-delivered, never
        # re-logged: the same signature bytes go back out, so duplicates
        # cannot corrupt the log -- Lemma 4's causality argument).
        self._ack_cache: "OrderedDict[int, bytes]" = OrderedDict()
        self._ack_cache_bytes = 0
        self._ack_cache_lock = threading.Lock()

    def on_frame(
        self, publisher_id: str, connection: Connection, frame: bytes
    ) -> Optional[bytes]:
        outer = self._outer
        config = outer.config
        try:
            msg = AdlpMessage.parse(frame)
        except ProtocolError:
            outer.stats.bump("invalid_frames")
            return None
        if not self._tracker.accept(msg.seq):
            with self._ack_cache_lock:
                cached = self._ack_cache.get(msg.seq)
            if cached is not None:
                # A duplicate of a frame we already ACKed (retransmission
                # after a lost ACK, or a network-duplicated frame): re-ACK
                # so the publisher can make progress, deliver nothing.
                outer.stats.bump("dup_frames_dropped")
                try:
                    connection.send_frame(cached)
                except ConnectionClosed:
                    pass
                return None
            outer.stats.bump("stale_frames")
            return None

        digest = message_digest(msg.seq, msg.payload)
        outer.stats.bump("digests")

        if config.verify_on_receive:
            key = outer.resolve_key(publisher_id)
            if key is None or not key.verify_digest(digest, msg.signature):
                outer.stats.bump("invalid_signatures")
                return None

        signature = outer.keypair.private.sign_digest(digest)
        outer.stats.bump("signatures")

        if outer.seq_state is not None:
            outer.seq_state.record_received(self._topic, publisher_id, msg.seq)

        # ACK before delivering to the application, as the prototype does
        # ("performed in the middle of message deserialization step before
        # passing the data to the subscriber's application layer").
        self._send_ack(connection, msg.seq, digest, signature, msg.payload)

        entry = self._build_entry(publisher_id, msg, digest, signature)
        self._submit_entry(entry)
        return msg.payload

    def _now(self) -> float:
        return self._outer.clock.now()

    def _submit_entry(self, entry: LogEntry) -> None:
        self._outer._enqueue_entry(entry)

    def _send_ack(
        self,
        connection: Connection,
        seq: int,
        digest: bytes,
        signature: bytes,
        payload: bytes,
    ) -> None:
        if self._outer.config.ack_returns_data:
            ack = AdlpAck(
                seq=seq, signature=signature, returns_data=True, payload=payload
            )
        else:
            ack = AdlpAck(seq=seq, data_hash=digest, signature=signature)
        raw = ack.encode()
        self._remember_ack(seq, raw)
        try:
            connection.send_frame(raw)
            self._outer.stats.bump("acks_sent")
        except ConnectionClosed:
            pass  # publisher went away; still log and deliver

    def _remember_ack(self, seq: int, raw: bytes) -> None:
        # Bounded by count AND bytes: with ``ack_returns_data`` each cached
        # ACK embeds the full payload, so 128 entries of multi-megabyte
        # messages would otherwise pin hundreds of megabytes.  The newest
        # ACK always survives (it is the one a retransmit will ask for).
        with self._ack_cache_lock:
            old = self._ack_cache.pop(seq, None)
            if old is not None:
                self._ack_cache_bytes -= len(old)
            self._ack_cache[seq] = raw
            self._ack_cache_bytes += len(raw)
            while len(self._ack_cache) > 1 and (
                len(self._ack_cache) > _ACK_CACHE_CAPACITY
                or self._ack_cache_bytes > _ACK_CACHE_MAX_BYTES
            ):
                _, evicted = self._ack_cache.popitem(last=False)
                self._ack_cache_bytes -= len(evicted)

    def _build_entry(
        self, publisher_id: str, msg: AdlpMessage, digest: bytes, signature: bytes
    ) -> LogEntry:
        entry = LogEntry(
            component_id=self._outer.component_id,
            topic=self._topic,
            type_name=self._type_name,
            direction=Direction.IN,
            seq=msg.seq,
            timestamp=self._now(),
            scheme=Scheme.ADLP,
            own_sig=signature,
            peer_id=publisher_id,
            peer_sig=msg.signature,
        )
        if self._outer.config.subscriber_stores_hash:
            entry.data_hash = digest  # h(D''_y): the space-saving option
        else:
            entry.data = msg.payload  # D''_y as-is
        return entry


class AdlpProtocol(TransportProtocol):
    """Per-node ADLP: key custody, logging thread, protocol factories.

    :param component_id: this node's unique id (must match the node name it
        is installed on, since log entries carry it).
    :param log_server: the trusted logger, or any object with ``submit`` and
        ``register_key`` -- the node registers its public key at startup
        (step 1 of the prototype flow).
    :param config: protocol knobs; see :class:`AdlpConfig`.
    :param keypair: pre-generated keys (tests); generated fresh when omitted.
    :param clock: timestamp source for log entries.
    """

    name = "adlp"

    def __init__(
        self,
        component_id: str,
        log_server,
        config: Optional[AdlpConfig] = None,
        keypair: Optional[KeyPair] = None,
        clock: Optional[Clock] = None,
    ):
        self.component_id = component_id
        self.config = config or AdlpConfig()
        self.clock = clock or SystemClock()
        self.keypair = keypair or generate_keypair(
            self.config.key_bits, scheme=self.config.signature_scheme
        )
        self.stats = AdlpStats()
        self._log_server = log_server
        #: Durable per-topic sequence counters (``None`` without a
        #: ``state_dir``); restart-safe freshness, see
        #: :mod:`repro.storage.seqstate`.
        self.seq_state: Optional[SequenceStateFile] = None
        if self.config.state_dir:
            # Component ids look like "/pub" -- flatten the leading/namespace
            # slashes so the journal lands *inside* state_dir (os.path.join
            # would treat "/pub.seqstate" as an absolute path).
            safe = component_id.replace("/", "_").strip("_") or "component"
            self.seq_state = SequenceStateFile(
                os.path.join(self.config.state_dir, f"{safe}.seqstate")
            )
        log_server.register_key(component_id, self.keypair.public)
        #: Live ACK aggregators (one per aggregating publisher protocol);
        #: the logging thread's tick sweeps their expired buffers so an
        #: aggregated entry flushes when its window lapses, not only when
        #: a later ACK happens to arrive.
        self._aggregators: List[_AckAggregator] = []
        self._aggregators_lock = threading.Lock()
        self.logging_thread = LoggingThread(
            component_id,
            log_server.submit,
            max_retries=self.config.log_retry_limit,
            retry_backoff=self.config.log_retry_backoff,
            on_retry=lambda: self.stats.bump("log_submit_retries"),
            submit_batch=getattr(log_server, "submit_batch", None),
            batch_max=self.config.submit_batch_max,
            tick=self._flush_expired_aggregates,
        )
        self.stats.attach_source(self._loss_counters)

    def _register_aggregator(self, aggregator: _AckAggregator) -> None:
        with self._aggregators_lock:
            self._aggregators.append(aggregator)

    def _flush_expired_aggregates(self) -> None:
        with self._aggregators_lock:
            aggregators = list(self._aggregators)
        for aggregator in aggregators:
            aggregator.flush_expired()

    def _loss_counters(self) -> Dict[str, int]:
        """Evidence-loss counters merged into ``stats()``: the logging
        thread's drops plus, for a :class:`~repro.core.remote.RemoteLogger`,
        its spill-queue counters -- so ``stats()["dropped"]`` is the total
        number of entries that will never reach the trusted logger."""
        out = {
            "dropped": self.logging_thread.dropped,
            "spilled": 0,
            "spilled_to_disk": 0,
            "spill_retries": 0,
        }
        peer_stats = getattr(self._log_server, "stats", None)
        if callable(peer_stats):
            for name, value in peer_stats().items():
                out[name] = out.get(name, 0) + int(value)
        return out

    def resolve_key(self, component_id: str) -> Optional[PublicKey]:
        """Look up a peer's public key (used by ``verify_on_receive``)."""
        keystore = getattr(self._log_server, "keystore", None)
        if keystore is None:
            return None
        return keystore.find(component_id)

    def _enqueue_entry(self, entry: LogEntry) -> None:
        self.logging_thread.enqueue(entry)

    def publisher_protocol(self, topic: str, type_name: str) -> PublisherProtocol:
        return _AdlpPublisherProtocol(self, topic, type_name)

    def subscriber_protocol(self, topic: str, type_name: str) -> SubscriberProtocol:
        return _AdlpSubscriberProtocol(self, topic, type_name)

    def flush(self, timeout: float = 5.0) -> bool:
        """Wait until all queued log entries reached the server."""
        return self.logging_thread.flush(timeout)

    def close(self) -> None:
        self.logging_thread.stop()
        if self.seq_state is not None:
            self.seq_state.close()
