"""ADLP wire messages and the shared digest construction.

The generalized protocol diagram (Figure 9):

- the publisher sends ``M_x = (seq, D_x, s_x)`` where
  ``s_x = sign_x(h(seq || D_x))``;
- the subscriber returns ``M_y = (seq, h(I_y), s_y)`` where
  ``s_y = sign_y(h(seq || I_y))`` -- the fixed-size acknowledgement
  (32-byte hash + 128-byte RSA-1024 signature, the paper's "160 bytes").

Both directions embed the sequence number, which is the freshness
information that defeats replay in Lemmas 1-2.
"""

from __future__ import annotations

from repro.crypto.hashing import data_digest
from repro.errors import DecodingError, ProtocolError
from repro.serialization import WireMessage, boolean, bytes_, uint64


def message_digest(seq: int, payload: bytes) -> bytes:
    """The digest both parties sign: ``h(seq || D)``.

    Exposed at module level so publisher, subscriber, and auditor are
    guaranteed to agree byte-for-byte.
    """
    return data_digest(seq, payload)


class AdlpMessage(WireMessage):
    """``M_x``: what the publisher's transport layer puts on the wire."""

    seq = uint64(1)
    payload = bytes_(2)  # D: the serialized application message
    signature = bytes_(3)  # s_x = sign_x(h(seq || D))

    @classmethod
    def parse(cls, frame: bytes) -> "AdlpMessage":
        """Decode and structurally validate an inbound frame."""
        try:
            msg = cls.decode(frame)
        except DecodingError as exc:
            raise ProtocolError(f"malformed ADLP message: {exc}") from exc
        if not msg.signature:
            raise ProtocolError("ADLP message lacks a signature")
        return msg


class AdlpAck(WireMessage):
    """``M_y``: the subscriber's signed acknowledgement.

    When :attr:`returns_data` is set the subscriber echoed the data itself
    in :attr:`payload` instead of its hash -- the small-data option of
    Section IV-A ("the subscriber can return data I_y instead of h(I_y) to
    the publisher ... especially when the data is small").
    """

    seq = uint64(1)
    data_hash = bytes_(2)  # h(seq || I_y) (empty when returns_data)
    signature = bytes_(3)  # s_y = sign_y(h(seq || I_y))
    returns_data = boolean(4)
    payload = bytes_(5)  # I_y itself, only when returns_data

    @classmethod
    def parse(cls, frame: bytes) -> "AdlpAck":
        """Decode and structurally validate an inbound ACK frame."""
        try:
            ack = cls.decode(frame)
        except DecodingError as exc:
            raise ProtocolError(f"malformed ADLP ack: {exc}") from exc
        if not ack.signature:
            raise ProtocolError("ADLP ack lacks a signature")
        if not ack.data_hash and not ack.returns_data:
            raise ProtocolError("ADLP ack carries neither hash nor data")
        return ack

    def acknowledged_hash(self) -> bytes:
        """The digest the subscriber committed to (computing it from the
        echoed data when the small-data option was used)."""
        if self.returns_data:
            return message_digest(self.seq, self.payload)
        return self.data_hash
