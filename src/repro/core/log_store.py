"""Tamper-evident log storage backends.

The paper assumes the logs themselves are protected by a tamper-evident
mechanism (Section II-A).  Both backends realize this with the hash chain of
:mod:`repro.crypto.hashchain`:

- :class:`InMemoryLogStore` -- fast, used by tests and benchmarks;
- :class:`FileLogStore` -- appends length-framed records to disk and can
  re-open and re-verify them, for the "remote log server / local file"
  deployments the paper mentions.
"""

from __future__ import annotations

import os
import struct
import threading
from typing import Iterator, List, Optional

from repro.crypto.hashchain import HashChain, chain_digest, GENESIS
from repro.errors import LogIntegrityError

_FRAME = struct.Struct("<I")


class LogStore:
    """Interface: append-only store of encoded log records."""

    def append(self, record: bytes) -> int:
        """Store a record; returns its index."""
        raise NotImplementedError

    def append_batch(self, records: List[bytes]) -> List[int]:
        """Store several records as one group commit; returns their indices.

        Implementations hold their lock once for the whole batch and roll
        back in-memory state if the batch cannot be stored completely, so
        a batch is never half-reflected in the live store.  The resulting
        chain head and Merkle commitments are byte-identical to appending
        the same records one at a time.
        """
        return [self.append(record) for record in records]

    def records(self) -> List[bytes]:
        """All records in append order."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def total_bytes(self) -> int:
        """Total payload bytes stored (excluding framing/digests)."""
        raise NotImplementedError

    def verify(self) -> None:
        """Raise :class:`LogIntegrityError` if tampering is detected."""
        raise NotImplementedError

    def head(self) -> bytes:
        """Current chain-head digest (a compact commitment to the log)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (no-op by default)."""


class InMemoryLogStore(LogStore):
    """Hash-chained records held in memory."""

    def __init__(self) -> None:
        self._chain = HashChain()
        self._bytes = 0
        self._lock = threading.Lock()

    def append(self, record: bytes) -> int:
        with self._lock:
            entry = self._chain.append(record)
            self._bytes += len(record)
            return entry.index

    def append_batch(self, records: List[bytes]) -> List[int]:
        with self._lock:
            base = len(self._chain)
            for record in records:
                self._chain.append(record)
                self._bytes += len(record)
            return list(range(base, base + len(records)))

    def records(self) -> List[bytes]:
        with self._lock:
            return self._chain.payloads()

    def __len__(self) -> int:
        with self._lock:
            return len(self._chain)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def verify(self) -> None:
        with self._lock:
            self._chain.verify()

    def head(self) -> bytes:
        with self._lock:
            return self._chain.head

    def tamper(self, index: int, record: bytes) -> None:
        """**Test helper**: overwrite a record in place, simulating an
        attacker modifying stored logs.  :meth:`verify` must detect this."""
        with self._lock:
            old = self._chain[index]
            self._chain._entries[index] = type(old)(
                index=old.index, payload=record, digest=old.digest
            )


class FileLogStore(LogStore):
    """Hash-chained records appended to a file.

    On-disk layout per record: 4-byte little-endian length, the record
    bytes, then the 32-byte chain digest.  Reopening an existing file
    replays and re-verifies the chain.
    """

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._count = 0
        self._bytes = 0
        self._head = GENESIS
        if os.path.exists(path):
            self._replay()
        self._file = open(path, "ab")

    def _replay(self) -> None:
        prev = GENESIS
        count = 0
        total = 0
        with open(self.path, "rb") as f:
            while True:
                raw_len = f.read(_FRAME.size)
                if not raw_len:
                    break
                if len(raw_len) < _FRAME.size:
                    raise LogIntegrityError("truncated record length")
                (length,) = _FRAME.unpack(raw_len)
                record = f.read(length)
                digest = f.read(32)
                if len(record) < length or len(digest) < 32:
                    raise LogIntegrityError("truncated record")
                if chain_digest(prev, record) != digest:
                    raise LogIntegrityError(f"chain broken at record {count}")
                prev = digest
                count += 1
                total += length
        self._head = prev
        self._count = count
        self._bytes = total

    def append(self, record: bytes) -> int:
        with self._lock:
            digest = chain_digest(self._head, record)
            self._file.write(_FRAME.pack(len(record)) + record + digest)
            self._file.flush()
            self._head = digest
            index = self._count
            self._count += 1
            self._bytes += len(record)
            return index

    def records(self) -> List[bytes]:
        with self._lock:
            self._file.flush()
            result = []
            with open(self.path, "rb") as f:
                while True:
                    raw_len = f.read(_FRAME.size)
                    if not raw_len:
                        break
                    (length,) = _FRAME.unpack(raw_len)
                    result.append(f.read(length))
                    f.read(32)
            return result

    def __len__(self) -> int:
        with self._lock:
            return self._count

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def verify(self) -> None:
        with self._lock:
            self._file.flush()
        self._replay()

    def head(self) -> bytes:
        with self._lock:
            return self._head

    def close(self) -> None:
        with self._lock:
            self._file.close()
