"""Log entry records.

One record structure serves every scheme, as in the paper's prototype
("the same log entry structure (using only the required fields) is used for
the naive logging scheme", Section V-B step 5):

* **Naive scheme** (Definition 2) uses only
  ``(component_id, topic, type_name, direction, seq, timestamp, data)``.

* **ADLP publisher entry** ``L_x`` additionally carries the publisher's own
  signature ``s'_x`` plus the subscriber's acknowledged hash ``D'_y`` and
  signature ``s'_y`` (Figure 9).

* **ADLP subscriber entry** ``L_y`` carries the received data (or its hash
  ``h(D''_y)`` to save space, Section IV-A), the publisher's signature
  ``s''_x``, and the subscriber's own signature ``s''_y``.

* **Aggregated publisher entries** (the Section VI-E extension) use the
  repeated ``ack_*`` fields to fold all subscribers' acknowledgements of one
  publication into a single record.
"""

from __future__ import annotations

import enum

from repro.middleware.names import validate_name
from repro.serialization import (
    WireMessage,
    boolean,
    bytes_,
    double,
    enum as enum_field,
    repeated,
    string,
    uint64,
)


class Direction(enum.IntEnum):
    """Data-flow direction of a log entry (Definition 2's ``direction``)."""

    UNKNOWN = 0
    OUT = 1  # publication
    IN = 2  # subscription


class Scheme(enum.IntEnum):
    """Which logging scheme produced an entry."""

    NONE = 0
    NAIVE = 1
    ADLP = 2


class LogEntry(WireMessage):
    """A single log record as submitted to the trusted logger."""

    # -- basic meta-information (Definition 2) ---------------------------
    component_id = string(1)
    topic = string(2)
    type_name = string(3)
    direction = enum_field(4, Direction)
    seq = uint64(5)
    timestamp = double(6)
    scheme = enum_field(7, Scheme)

    # -- reported data: exactly one of ``data`` / ``data_hash`` is set ----
    data = bytes_(8)  # D as reported by the entry's owner
    data_hash = bytes_(9)  # h(seq || D), stored instead of D to save space

    # -- ADLP signatures ---------------------------------------------------
    own_sig = bytes_(10)  # s'_x in L_x, s''_y in L_y
    peer_id = string(11)  # the counterpart component of the transmission
    peer_hash = bytes_(12)  # L_x only: D'_y (the hash acknowledged by c_y)
    peer_sig = bytes_(13)  # L_x: s'_y from the ACK; L_y: s''_x from M_x

    # -- aggregated logging extension (Section VI-E) ----------------------
    aggregated = boolean(14)
    ack_peer_ids = repeated(string(15))
    ack_peer_hashes = repeated(bytes_(16))
    ack_peer_sigs = repeated(bytes_(17))

    # ---------------------------------------------------------------------

    def validate_meta(self) -> "LogEntry":
        """Sanity-check the identifying fields; returns self for chaining."""
        validate_name(self.component_id, "component id")
        validate_name(self.topic, "topic")
        if self.direction is Direction.UNKNOWN:
            raise ValueError("log entry direction must be OUT or IN")
        return self

    @property
    def is_publication(self) -> bool:
        return self.direction is Direction.OUT

    @property
    def is_subscription(self) -> bool:
        return self.direction is Direction.IN

    def reported_hash(self) -> bytes:
        """The ``h(seq || D)`` this entry commits to.

        Computed from :attr:`data` when the entry stores data as-is,
        otherwise taken from :attr:`data_hash`.  Empty when the entry
        reports neither (possible for a fabricated or naive entry).
        """
        if self.data_hash:
            return self.data_hash
        if self.data:
            from repro.core.protocol import message_digest

            return message_digest(self.seq, self.data)
        return b""

    def key(self) -> tuple:
        """Identity of the transmission this entry claims to witness."""
        return (self.topic, self.seq, self.component_id, int(self.direction))
