"""Concurrency helpers: stoppable worker threads, rate limiting, waiting."""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class StoppableThread(threading.Thread):
    """A daemon thread with a cooperative stop flag.

    Subclasses (or callers passing ``target``) should poll :meth:`stopped`
    or wait on :attr:`stop_event` so that :meth:`stop` terminates them
    promptly.  All middleware/service threads in this library derive from it
    so tests can always tear the world down cleanly.
    """

    def __init__(self, name: str, target: Optional[Callable[[], None]] = None):
        super().__init__(name=name, daemon=True)
        self.stop_event = threading.Event()
        self._target_fn = target

    def run(self) -> None:  # pragma: no cover - exercised via subclasses
        if self._target_fn is not None:
            self._target_fn()

    def stopped(self) -> bool:
        return self.stop_event.is_set()

    def stop(self, join: bool = True, timeout: float = 5.0) -> None:
        """Signal the thread to stop and (optionally) join it."""
        self.stop_event.set()
        if join and self.is_alive() and threading.current_thread() is not self:
            self.join(timeout)


class RateLimiter:
    """Pace a loop at a fixed frequency using absolute deadlines.

    Using absolute deadlines (rather than sleeping a fixed delta) avoids
    cumulative drift: a loop body that takes time eats into the next period.

    >>> limiter = RateLimiter(hz=100.0)
    >>> for _ in range(3):
    ...     limiter.wait()  # paces to ~10ms periods
    """

    def __init__(self, hz: float):
        if hz <= 0:
            raise ValueError("rate must be positive")
        self.period = 1.0 / hz
        self._next_deadline: Optional[float] = None

    def wait(self) -> None:
        now = time.monotonic()
        if self._next_deadline is None:
            self._next_deadline = now + self.period
            return
        delay = self._next_deadline - now
        if delay > 0:
            time.sleep(delay)
            self._next_deadline += self.period
        else:
            # We are behind; re-anchor instead of bursting to catch up.
            self._next_deadline = now + self.period


def wait_for(
    predicate: Callable[[], bool],
    timeout: float = 5.0,
    interval: float = 0.005,
) -> bool:
    """Poll ``predicate`` until it is true or ``timeout`` elapses.

    Returns whether the predicate became true.  Used pervasively by
    integration tests to synchronize with background threads without
    hard-coded sleeps.
    """
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()
