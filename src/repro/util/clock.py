"""Clock abstraction.

ADLP log entries carry timestamps, and Lemma 4 of the paper reasons about
components that *disrupt* their timestamps.  To test such scenarios
deterministically, every timestamp in the library is drawn from a
:class:`Clock` object rather than from ``time.time()`` directly:

- :class:`SystemClock` -- wall-clock time, used by real deployments and the
  benchmark harness.
- :class:`SimulatedClock` -- manually advanced time for deterministic tests.
- :class:`SkewedClock` -- wraps another clock and applies an offset/scale,
  modeling a component with a bad (or deliberately disrupted) clock.
"""

from __future__ import annotations

import threading
import time


class Clock:
    """Interface: anything with a ``now()`` returning seconds as ``float``."""

    def now(self) -> float:
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:
        """Block for ``seconds`` of this clock's time.  Default: busy wait
        is avoided by delegating to ``time.sleep`` for real clocks; simulated
        clocks override this."""
        time.sleep(seconds)


class SystemClock(Clock):
    """Wall-clock time from ``time.time()``."""

    def now(self) -> float:
        return time.time()


class SimulatedClock(Clock):
    """A clock that only moves when told to.

    Thread-safe: multiple simulated nodes may share one instance.  ``sleep``
    advances the clock instead of blocking, which keeps single-threaded tests
    instantaneous.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds`` (must be non-negative)."""
        if seconds < 0:
            raise ValueError("time cannot move backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def set(self, timestamp: float) -> None:
        """Jump to an absolute time (must not move backwards)."""
        with self._lock:
            if timestamp < self._now:
                raise ValueError("time cannot move backwards")
            self._now = timestamp

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)


class SkewedClock(Clock):
    """A clock reading ``scale * base.now() + offset``.

    Models a component whose local clock is ahead/behind (``offset``) or
    drifting (``scale != 1``).  Used by the timing-disruption adversary.
    """

    def __init__(self, base: Clock, offset: float = 0.0, scale: float = 1.0):
        self.base = base
        self.offset = float(offset)
        self.scale = float(scale)

    def now(self) -> float:
        return self.scale * self.base.now() + self.offset

    def sleep(self, seconds: float) -> None:
        # Sleep in base-clock time so cooperating components stay in step.
        self.base.sleep(seconds)
