"""Helpers for converting between integers, bytes, and readable dumps."""

from __future__ import annotations


def byte_length(n: int) -> int:
    """Return the minimum number of bytes needed to represent ``n``.

    ``byte_length(0)`` is 1 so that zero still occupies one octet when
    serialized.

    >>> byte_length(0), byte_length(255), byte_length(256)
    (1, 1, 2)
    """
    if n < 0:
        raise ValueError("byte_length is defined for non-negative integers")
    return max(1, (n.bit_length() + 7) // 8)


def int_to_bytes(n: int, length: int | None = None) -> bytes:
    """Serialize a non-negative integer big-endian.

    If ``length`` is given the result is left-padded with zero bytes to that
    exact length; a value too large for ``length`` raises :class:`OverflowError`.
    """
    if n < 0:
        raise ValueError("cannot serialize negative integers")
    if length is None:
        length = byte_length(n)
    return n.to_bytes(length, "big")


def int_from_bytes(data: bytes) -> int:
    """Deserialize a big-endian unsigned integer."""
    return int.from_bytes(data, "big")


def hexdump(data: bytes, width: int = 16) -> str:
    """Render ``data`` as a classic offset/hex/ASCII dump for debugging."""
    lines = []
    for offset in range(0, len(data), width):
        chunk = data[offset : offset + width]
        hexed = " ".join(f"{b:02x}" for b in chunk)
        text = "".join(chr(b) if 32 <= b < 127 else "." for b in chunk)
        lines.append(f"{offset:08x}  {hexed:<{width * 3}} {text}")
    return "\n".join(lines)


def human_size(num_bytes: float) -> str:
    """Format a byte count using binary units, e.g. ``'900.0 KiB'``."""
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} {unit}"
            return f"{value:.1f} {unit}"
        value /= 1024.0
    raise AssertionError("unreachable")
