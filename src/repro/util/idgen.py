"""Identifier and sequence-number generation."""

from __future__ import annotations

import itertools
import os
import threading


class SequenceCounter:
    """A thread-safe monotonically increasing counter.

    ADLP attaches a per-topic sequence number to every publication (Section
    IV-A: freshness information embedded in the signed digest).  One counter
    instance backs each publisher.
    """

    def __init__(self, start: int = 0):
        self._counter = itertools.count(start)
        self._lock = threading.Lock()
        self._last = start - 1

    def next(self) -> int:
        with self._lock:
            self._last = next(self._counter)
            return self._last

    @property
    def last(self) -> int:
        """The most recently issued value (``start - 1`` if none issued)."""
        with self._lock:
            return self._last


def unique_id(prefix: str = "id") -> str:
    """Return a short process-unique identifier, e.g. for anonymous nodes."""
    return f"{prefix}_{os.getpid():x}_{_next_unique():x}"


_unique_counter = itertools.count(1)
_unique_lock = threading.Lock()


def _next_unique() -> int:
    with _unique_lock:
        return next(_unique_counter)
