"""Small shared utilities: clocks, byte helpers, concurrency, id generation."""

from repro.util.bytesutil import (
    int_from_bytes,
    int_to_bytes,
    byte_length,
    hexdump,
    human_size,
)
from repro.util.clock import Clock, SystemClock, SimulatedClock, SkewedClock
from repro.util.concurrency import StoppableThread, RateLimiter, wait_for
from repro.util.idgen import SequenceCounter, unique_id

__all__ = [
    "int_from_bytes",
    "int_to_bytes",
    "byte_length",
    "hexdump",
    "human_size",
    "Clock",
    "SystemClock",
    "SimulatedClock",
    "SkewedClock",
    "StoppableThread",
    "RateLimiter",
    "wait_for",
    "SequenceCounter",
    "unique_id",
]
