"""Pluggable signature schemes.

The paper fixes RSA-1024 PKCS#1 v1.5; SNIPPETS' protocol plan explicitly
leaves room to "upgrade to Ed25519 without changing message semantics".
This module is that seam: a :class:`SignatureScheme` interface (key
generation, digest/message sign and verify, key serialization) with two
registered backends -- the paper-faithful RSA and a pure-Python Ed25519
(:mod:`repro.crypto.ed25519`) -- selected by name.

**Wire encoding.**  A scheme-tagged public key is::

    0xA5 || scheme tag (1 byte) || scheme-specific payload

``0xA5`` cannot begin a legacy untagged RSA key (its first two bytes are
the big-endian byte length of the modulus, so ``0xA5`` would claim a
~338000-bit key), which is how
:meth:`repro.crypto.keys.PublicKey.from_bytes` keeps decoding keys
serialized before this layer existed.  Signatures stay raw bytes on the
wire -- the verifying key carries the scheme, so log-entry and message
formats are unchanged.

The process-wide default scheme is ``rsa`` (paper-faithful), overridable
with the ``ADLP_SIG_SCHEME`` environment variable (how the CI matrix runs
the suite under Ed25519) or per node via
:attr:`repro.core.policy.AdlpConfig.signature_scheme`.
"""

from __future__ import annotations

import abc
import os
import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.crypto import ed25519, pkcs1
from repro.crypto.hashing import sha256
from repro.crypto.rsa import (
    RsaPrivateNumbers,
    RsaPublicNumbers,
    generate_rsa_numbers,
)
from repro.errors import DecodingError, KeyGenerationError

#: First byte of every scheme-tagged key encoding.
KEY_TAG_MAGIC = 0xA5

#: Environment variable naming the default scheme for the process.
SCHEME_ENV_VAR = "ADLP_SIG_SCHEME"

#: The paper-faithful default.
DEFAULT_SCHEME = "rsa"


class SignatureScheme(abc.ABC):
    """One signature algorithm: keygen, sign/verify, key serialization.

    A scheme operates on opaque *material* objects (the ``numbers`` slot
    of :class:`~repro.crypto.keys.PublicKey`/``PrivateKey``); the key
    classes delegate here, so every consumer of the key API is
    scheme-agnostic.
    """

    #: registry name (``rsa``, ``ed25519``)
    name: str
    #: one-byte wire tag in the tagged key encoding
    tag: int

    # -- key generation ---------------------------------------------------

    @abc.abstractmethod
    def generate(self, bits: int, seed: Optional[int] = None) -> Any:
        """Fresh private material.  ``bits`` sizes the key where the
        scheme is parameterized (RSA); fixed-size schemes ignore it.
        ``seed`` makes generation deterministic (tests only)."""

    @abc.abstractmethod
    def public_of(self, private_material: Any) -> Any:
        """The public material for some private material."""

    # -- signing ----------------------------------------------------------

    @abc.abstractmethod
    def sign_digest(self, private_material: Any, digest: bytes) -> bytes:
        """Sign a precomputed SHA-256 digest (ADLP's hot operation)."""

    @abc.abstractmethod
    def verify_digest(
        self, public_material: Any, digest: bytes, signature: bytes
    ) -> bool:
        """True iff ``signature`` covers ``digest``.  Total: malformed
        signatures return ``False``, they never raise."""

    def sign(self, private_material: Any, message: bytes) -> bytes:
        """Sign ``message`` (hashes internally; same construction for
        every scheme so message-level semantics never change on upgrade)."""
        return self.sign_digest(private_material, sha256(message))

    def verify(
        self, public_material: Any, message: bytes, signature: bytes
    ) -> bool:
        return self.verify_digest(public_material, sha256(message), signature)

    # -- serialization ----------------------------------------------------

    @abc.abstractmethod
    def public_to_bytes(self, public_material: Any) -> bytes:
        """The scheme-specific payload (excluding the two tag bytes)."""

    @abc.abstractmethod
    def public_from_bytes(self, payload: bytes) -> Any:
        """Inverse of :meth:`public_to_bytes`; raises
        :class:`~repro.errors.DecodingError` on malformed payloads."""

    # -- introspection ----------------------------------------------------

    @abc.abstractmethod
    def signature_size(self, material: Any) -> int:
        """Signature length in bytes under this key (public or private)."""

    def describe(self, material: Any) -> str:
        """Human-readable scheme label for one key (e.g. ``rsa-1024``)."""
        return self.name


class RsaPkcs1Scheme(SignatureScheme):
    """RSASSA-PKCS1-v1_5 over SHA-256 -- the paper's scheme, kept as the
    default so benchmarks stay faithful to Table I."""

    name = "rsa"
    tag = 0x01

    def generate(self, bits: int, seed: Optional[int] = None) -> RsaPrivateNumbers:
        rng = random.Random(seed) if seed is not None else None
        return generate_rsa_numbers(bits, rng)

    def public_of(self, private_material: RsaPrivateNumbers) -> RsaPublicNumbers:
        return private_material.public_numbers

    def sign_digest(self, private_material: RsaPrivateNumbers, digest: bytes) -> bytes:
        return pkcs1.sign_digest(private_material, digest)

    def verify_digest(
        self, public_material: RsaPublicNumbers, digest: bytes, signature: bytes
    ) -> bool:
        return pkcs1.verify_digest(public_material, digest, signature)

    def public_to_bytes(self, public_material: RsaPublicNumbers) -> bytes:
        from repro.util.bytesutil import int_to_bytes

        n_bytes = int_to_bytes(public_material.n)
        e_bytes = int_to_bytes(public_material.e)
        return (
            len(n_bytes).to_bytes(2, "big")
            + n_bytes
            + len(e_bytes).to_bytes(2, "big")
            + e_bytes
        )

    def public_from_bytes(self, payload: bytes) -> RsaPublicNumbers:
        from repro.util.bytesutil import int_from_bytes

        try:
            n_len = int.from_bytes(payload[0:2], "big")
            n = int_from_bytes(payload[2 : 2 + n_len])
            off = 2 + n_len
            e_len = int.from_bytes(payload[off : off + 2], "big")
            e = int_from_bytes(payload[off + 2 : off + 2 + e_len])
            if off + 2 + e_len != len(payload):
                raise DecodingError("trailing bytes after public key")
        except (IndexError, ValueError) as exc:
            raise DecodingError(f"malformed public key bytes: {exc}") from exc
        if n <= 0 or e <= 0:
            raise DecodingError("public key numbers must be positive")
        return RsaPublicNumbers(n=n, e=e)

    def signature_size(self, material: Any) -> int:
        return material.byte_size

    def describe(self, material: Any) -> str:
        return f"rsa-{material.bits if hasattr(material, 'bits') else material.n.bit_length()}"


@dataclass(frozen=True)
class Ed25519Public:
    """Compressed edwards25519 point (32 bytes)."""

    point: bytes


@dataclass(frozen=True)
class Ed25519Private:
    """The RFC 8032 32-byte secret plus its cached public point."""

    secret: bytes
    point: bytes  # compressed public, cached so signing skips a base mul

    def __repr__(self) -> str:  # never leak the secret into logs
        return f"Ed25519Private(point={self.point.hex()[:16]}...)"


class Ed25519Scheme(SignatureScheme):
    """RFC 8032 Ed25519 (pure Python, :mod:`repro.crypto.ed25519`).

    Digest-level signing signs the 32-byte SHA-256 digest as the Ed25519
    message (EdDSA hashes internally with SHA-512), so ADLP's
    ``h(seq || D)`` commitment construction is untouched.
    """

    name = "ed25519"
    tag = 0x02

    def generate(self, bits: int, seed: Optional[int] = None) -> Ed25519Private:
        # ``bits`` is accepted for interface uniformity; the curve fixes
        # the size.  Reject nonsense rather than silently ignoring it.
        if bits and bits < 128:
            raise KeyGenerationError("key size must be at least 128 bits")
        secret = ed25519.generate_secret(seed)
        return Ed25519Private(secret=secret, point=ed25519.public_from_secret(secret))

    def public_of(self, private_material: Ed25519Private) -> Ed25519Public:
        return Ed25519Public(point=private_material.point)

    def sign_digest(self, private_material: Ed25519Private, digest: bytes) -> bytes:
        return ed25519.sign(
            private_material.secret, digest, public=private_material.point
        )

    def verify_digest(
        self, public_material: Ed25519Public, digest: bytes, signature: bytes
    ) -> bool:
        return ed25519.verify(public_material.point, digest, signature)

    def public_to_bytes(self, public_material: Ed25519Public) -> bytes:
        return public_material.point

    def public_from_bytes(self, payload: bytes) -> Ed25519Public:
        if len(payload) != ed25519.PUBLIC_SIZE:
            raise DecodingError(
                f"ed25519 public key must be {ed25519.PUBLIC_SIZE} bytes, "
                f"got {len(payload)}"
            )
        if ed25519.point_decompress(payload) is None:
            raise DecodingError("ed25519 public key is not a canonical curve point")
        return Ed25519Public(point=bytes(payload))

    def signature_size(self, material: Any) -> int:
        return ed25519.SIGNATURE_SIZE


_SCHEMES: Dict[str, SignatureScheme] = {}
_BY_TAG: Dict[int, SignatureScheme] = {}


def register_scheme(scheme: SignatureScheme) -> SignatureScheme:
    """Add ``scheme`` to the registry (name and wire tag must be unique)."""
    existing = _SCHEMES.get(scheme.name)
    if existing is not None and existing is not scheme:
        raise ValueError(f"signature scheme {scheme.name!r} already registered")
    by_tag = _BY_TAG.get(scheme.tag)
    if by_tag is not None and by_tag is not scheme:
        raise ValueError(
            f"scheme tag {scheme.tag:#x} already taken by {by_tag.name!r}"
        )
    _SCHEMES[scheme.name] = scheme
    _BY_TAG[scheme.tag] = scheme
    return scheme


def get_scheme(name: str) -> SignatureScheme:
    """The registered scheme called ``name``; raises ``ValueError``."""
    try:
        return _SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown signature scheme {name!r}; "
            f"registered: {sorted(_SCHEMES)}"
        ) from None


def scheme_for_tag(tag: int) -> SignatureScheme:
    """The scheme behind a wire tag byte; raises
    :class:`~repro.errors.DecodingError` for unknown tags (this sits on
    the key *decode* path)."""
    try:
        return _BY_TAG[tag]
    except KeyError:
        raise DecodingError(f"unknown signature scheme tag {tag:#04x}") from None


def scheme_names() -> List[str]:
    """Registered scheme names, sorted."""
    return sorted(_SCHEMES)


def default_scheme_name() -> str:
    """The process default: ``ADLP_SIG_SCHEME`` if set, else ``rsa``."""
    return os.environ.get(SCHEME_ENV_VAR, DEFAULT_SCHEME)


RSA = register_scheme(RsaPkcs1Scheme())
ED25519 = register_scheme(Ed25519Scheme())
