"""Prime generation for RSA key material.

Implements deterministic trial division over small primes followed by the
Miller-Rabin probabilistic primality test.  With 40 rounds the probability of
accepting a composite is below 4^-40, far beyond what this library needs.

A seedable ``random.Random`` may be passed everywhere so tests can generate
reproducible keys; production key generation uses ``random.SystemRandom``.
"""

from __future__ import annotations

import random
from typing import Optional

# Small primes for cheap pre-filtering before Miller-Rabin.
_SMALL_PRIMES = [
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
    233, 239, 241, 251, 257, 263, 269, 271, 277, 281, 283, 293, 307, 311, 313,
    317, 331, 337, 347, 349,
]

#: Rounds of Miller-Rabin witnesses; error probability <= 4**-40.
MILLER_RABIN_ROUNDS = 40


def is_probable_prime(n: int, rng: Optional[random.Random] = None) -> bool:
    """Return whether ``n`` is (very probably) prime.

    Deterministic and exact for ``n`` < 350**2 via trial division; Miller-Rabin
    with :data:`MILLER_RABIN_ROUNDS` random witnesses above that.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    if n < _SMALL_PRIMES[-1] ** 2:
        return True

    rng = rng or random.SystemRandom()
    # Write n - 1 = d * 2^r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1

    for _ in range(MILLER_RABIN_ROUNDS):
        a = rng.randrange(2, n - 1)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Generate a random prime of exactly ``bits`` bits.

    The top two bits are forced to 1 so that the product of two such primes
    has exactly ``2 * bits`` bits (standard practice for RSA moduli), and the
    low bit is forced to 1 so candidates are odd.
    """
    if bits < 8:
        raise ValueError("refusing to generate primes under 8 bits")
    rng = rng or random.SystemRandom()
    top_two = (1 << (bits - 1)) | (1 << (bits - 2))
    while True:
        candidate = rng.getrandbits(bits) | top_two | 1
        if is_probable_prime(candidate, rng):
            return candidate
