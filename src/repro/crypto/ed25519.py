"""Pure-Python Ed25519 (RFC 8032).

The paper's prototype signs with RSA-1024 PKCS#1 v1.5; the substitution
table in DESIGN.md keeps that as the faithful default.  This module is the
planned *upgrade path*: EdDSA over edwards25519, implemented from the RFC
with no dependencies, so deployments can swap signature schemes without
changing message semantics (the scheme layer in
:mod:`repro.crypto.schemes` carries the choice in the key encoding).

Implementation notes:

- points are kept in extended homogeneous coordinates ``(X, Y, Z, T)``
  with ``x = X/Z``, ``y = Y/Z``, ``x*y = T/Z`` (RFC 8032, Section 5.1.4);
- base-point scalar multiplication uses a precomputed table of
  ``2^i * B`` so signing costs ~L/2 point *additions* and no doublings;
- verification uses the cofactorless equation ``S*B == R + h*A`` (what
  the RFC's test vectors pin down);
- all decoding paths are total: malformed or non-canonical inputs return
  ``None``/``False``, they never raise through :func:`verify`.
"""

from __future__ import annotations

import hashlib
import os
from typing import List, Optional, Tuple

#: field prime 2^255 - 19
P = 2**255 - 19
#: group order of the base point
L = 2**252 + 27742317777372353535851937790883648493
#: curve constant d = -121665/121666 mod p
D = (-121665 * pow(121666, P - 2, P)) % P

#: sizes, in bytes
SECRET_SIZE = 32
PUBLIC_SIZE = 32
SIGNATURE_SIZE = 64

_Point = Tuple[int, int, int, int]

# the neutral element (0, 1) in extended coordinates
_NEUTRAL: _Point = (0, 1, 1, 0)

#: affine base point (RFC 8032, Section 5.1)
_B_Y = 4 * pow(5, P - 2, P) % P
_B_X = 15112221349535400772501151409588531511454012693041857206046113283949847762202


def _point_add(p: _Point, q: _Point) -> _Point:
    """add-2008-hwcd-3 for a = -1 twisted Edwards curves."""
    x1, y1, z1, t1 = p
    x2, y2, z2, t2 = q
    a = (y1 - x1) * (y2 - x2) % P
    b = (y1 + x1) * (y2 + x2) % P
    c = 2 * t1 * t2 * D % P
    d = 2 * z1 * z2 % P
    e, f, g, h = b - a, d - c, d + c, b + a
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _point_double(p: _Point) -> _Point:
    """dbl-2008-hwcd (independent of t, slightly cheaper than add)."""
    x1, y1, z1, _ = p
    a = x1 * x1 % P
    b = y1 * y1 % P
    c = 2 * z1 * z1 % P
    h = a + b
    e = (h - (x1 + y1) * (x1 + y1)) % P
    g = a - b
    f = c + g
    return (e * f % P, g * h % P, f * g % P, e * h % P)


def _point_mul(s: int, p: _Point) -> _Point:
    """Generic double-and-add scalar multiplication."""
    q = _NEUTRAL
    while s > 0:
        if s & 1:
            q = _point_add(q, p)
        p = _point_double(p)
        s >>= 1
    return q


def _point_equal(p: _Point, q: _Point) -> bool:
    """Projective equality: cross-multiply through the Z denominators."""
    x1, y1, z1, _ = p
    x2, y2, z2, _ = q
    return (x1 * z2 - x2 * z1) % P == 0 and (y1 * z2 - y2 * z1) % P == 0


#: lazily built table of 2^i * B for i in [0, 256) -- makes base-point
#: multiplication (the cost of signing) an additions-only walk
_BASE_TABLE: List[_Point] = []


def _base_table() -> List[_Point]:
    if not _BASE_TABLE:
        point: _Point = (_B_X, _B_Y, 1, _B_X * _B_Y % P)
        for _ in range(256):
            _BASE_TABLE.append(point)
            point = _point_double(point)
    return _BASE_TABLE


def _base_mul(s: int) -> _Point:
    table = _base_table()
    q = _NEUTRAL
    i = 0
    while s > 0:
        if s & 1:
            q = _point_add(q, table[i])
        s >>= 1
        i += 1
    return q


def _sha512(*parts: bytes) -> bytes:
    h = hashlib.sha512()
    for part in parts:
        h.update(part)
    return h.digest()


def point_compress(p: _Point) -> bytes:
    """32-byte little-endian y with the sign of x in the top bit."""
    x, y, z, _ = p
    zinv = pow(z, P - 2, P)
    x, y = x * zinv % P, y * zinv % P
    return (y | ((x & 1) << 255)).to_bytes(32, "little")


def point_decompress(data: bytes) -> Optional[_Point]:
    """Inverse of :func:`point_compress`; ``None`` for anything that is
    not the canonical encoding of a curve point (wrong length, ``y >= p``,
    an x-coordinate that does not exist, or ``-0``)."""
    if len(data) != 32:
        return None
    encoded = int.from_bytes(data, "little")
    sign = encoded >> 255
    y = encoded & ((1 << 255) - 1)
    if y >= P:
        return None  # non-canonical y
    y2 = y * y % P
    x2 = (y2 - 1) * pow(D * y2 + 1, P - 2, P) % P
    x = pow(x2, (P + 3) // 8, P)
    if (x * x - x2) % P != 0:
        x = x * pow(2, (P - 1) // 4, P) % P
    if (x * x - x2) % P != 0:
        return None  # x^2 has no square root: not a curve point
    if x == 0 and sign:
        return None  # "negative zero" is non-canonical
    if x & 1 != sign:
        x = P - x
    return (x, y, 1, x * y % P)


def _clamp(scalar_bytes: bytes) -> int:
    a = int.from_bytes(scalar_bytes, "little")
    a &= (1 << 254) - 8
    a |= 1 << 254
    return a


def generate_secret(seed: Optional[int] = None) -> bytes:
    """A 32-byte Ed25519 secret.

    :param seed: if given, the secret is derived deterministically --
        **tests only**, mirroring :func:`repro.crypto.keys.generate_keypair`'s
        seeded mode.  Production callers must leave it ``None``.
    """
    if seed is None:
        return os.urandom(SECRET_SIZE)
    material = b"repro.ed25519.keygen.v1:" + str(seed).encode("ascii")
    return hashlib.sha512(material).digest()[:SECRET_SIZE]


def public_from_secret(secret: bytes) -> bytes:
    """The 32-byte compressed public point for a 32-byte secret."""
    if len(secret) != SECRET_SIZE:
        raise ValueError(f"ed25519 secret must be {SECRET_SIZE} bytes")
    a = _clamp(_sha512(secret)[:32])
    return point_compress(_base_mul(a))


def sign(secret: bytes, message: bytes, public: Optional[bytes] = None) -> bytes:
    """RFC 8032 Ed25519 signature (64 bytes ``R || S``) over ``message``.

    :param public: the cached compressed public key; derived from
        ``secret`` when omitted (one extra base multiplication).
    """
    if len(secret) != SECRET_SIZE:
        raise ValueError(f"ed25519 secret must be {SECRET_SIZE} bytes")
    h = _sha512(secret)
    a = _clamp(h[:32])
    prefix = h[32:]
    if public is None:
        public = point_compress(_base_mul(a))
    r = int.from_bytes(_sha512(prefix, message), "little") % L
    r_bytes = point_compress(_base_mul(r))
    k = int.from_bytes(_sha512(r_bytes, public, message), "little") % L
    s = (r + k * a) % L
    return r_bytes + s.to_bytes(32, "little")


def verify(public: bytes, message: bytes, signature: bytes) -> bool:
    """True iff ``signature`` is a valid Ed25519 signature.

    Total over arbitrary byte strings: malformed keys, non-canonical
    points, out-of-range ``S`` and wrong lengths all return ``False``
    (the auditor treats "does not verify" as evidence, never an error).
    """
    if len(public) != PUBLIC_SIZE or len(signature) != SIGNATURE_SIZE:
        return False
    a_point = point_decompress(public)
    if a_point is None:
        return False
    r_point = point_decompress(signature[:32])
    if r_point is None:
        return False
    s = int.from_bytes(signature[32:], "little")
    if s >= L:
        return False  # non-canonical S (malleability check, RFC 8.4)
    k = int.from_bytes(_sha512(signature[:32], public, message), "little") % L
    return _point_equal(_base_mul(s), _point_add(r_point, _point_mul(k, a_point)))
