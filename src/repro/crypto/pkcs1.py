"""RSASSA-PKCS1-v1_5 signatures over SHA-256 (RFC 8017, Section 8.2).

This is the exact scheme the ADLP prototype uses ("signed by using SHA-256
and PKCS#1 v1.5", Section V-B).  For an RSA-1024 key the signature is 128
bytes, which is where the paper's fixed 160-byte ACK message
(32-byte hash + 128-byte signature) comes from.
"""

from __future__ import annotations

from repro.crypto.hashing import sha256
from repro.crypto.rsa import (
    RsaPrivateNumbers,
    RsaPublicNumbers,
    rsa_private_op,
    rsa_public_op,
)
from repro.errors import SignatureError
from repro.util.bytesutil import int_from_bytes, int_to_bytes

# DER-encoded DigestInfo prefix for SHA-256 (RFC 8017, Section 9.2 note 1):
# SEQUENCE { SEQUENCE { OID 2.16.840.1.101.3.4.2.1, NULL }, OCTET STRING (32) }
_SHA256_DIGESTINFO_PREFIX = bytes.fromhex("3031300d060960864801650304020105000420")

#: Minimum PS padding length mandated by the RFC.
_MIN_PAD = 8


def _emsa_pkcs1_v15_encode(digest: bytes, em_len: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding of an *already computed* SHA-256 digest.

    Layout: ``0x00 || 0x01 || PS (0xff..) || 0x00 || DigestInfo``.
    """
    if len(digest) != 32:
        raise SignatureError("expected a 32-byte SHA-256 digest")
    t = _SHA256_DIGESTINFO_PREFIX + digest
    if em_len < len(t) + _MIN_PAD + 3:
        raise SignatureError("intended encoded message length too short")
    ps = b"\xff" * (em_len - len(t) - 3)
    return b"\x00\x01" + ps + b"\x00" + t


def sign_digest(priv: RsaPrivateNumbers, digest: bytes) -> bytes:
    """Sign a precomputed SHA-256 ``digest``; returns a ``k``-byte signature.

    ADLP computes ``h(seq || D)`` once and signs the digest, so the API takes
    the digest directly (the hash is *not* recomputed here).
    """
    k = priv.byte_size
    em = _emsa_pkcs1_v15_encode(digest, k)
    s = rsa_private_op(priv, int_from_bytes(em))
    return int_to_bytes(s, k)


def verify_digest(pub: RsaPublicNumbers, digest: bytes, signature: bytes) -> bool:
    """Verify ``signature`` against a precomputed SHA-256 ``digest``.

    Returns ``False`` for any invalid signature (wrong key, wrong digest,
    malformed encoding, wrong length) rather than raising: the auditor treats
    "does not verify" as evidence, not as an error.
    """
    k = pub.byte_size
    if len(signature) != k:
        return False
    try:
        m = rsa_public_op(pub, int_from_bytes(signature))
        expected = _emsa_pkcs1_v15_encode(digest, k)
    except SignatureError:
        return False
    # Full encoded-message comparison, per RFC 8017's recommended approach.
    return int_to_bytes(m, k) == expected


def sign(priv: RsaPrivateNumbers, message: bytes) -> bytes:
    """Convenience: hash ``message`` with SHA-256 and sign the digest."""
    return sign_digest(priv, sha256(message))


def verify(pub: RsaPublicNumbers, message: bytes, signature: bytes) -> bool:
    """Convenience: hash ``message`` with SHA-256 and verify the digest."""
    return verify_digest(pub, sha256(message), signature)
