"""SHA-256 hashing helpers.

ADLP signs ``h(seq || D)`` where ``seq`` is the per-topic sequence number and
``D`` the published payload (Section IV-A: *freshness information is
incorporated into signatures, log entries, and messages*).  This module
centralizes that digest construction so that publisher, subscriber, and
auditor all hash exactly the same byte string.
"""

from __future__ import annotations

import hashlib

#: Length in bytes of every digest produced by this module (SHA-256).
HASH_LEN = 32


def sha256(data: bytes) -> bytes:
    """Return the 32-byte SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as a hex string."""
    return hashlib.sha256(data).hexdigest()


def data_digest(seq: int, data: bytes) -> bytes:
    """Compute the paper's ``h(seq || D)`` digest.

    The sequence number is encoded as an 8-byte big-endian unsigned integer
    before concatenation so that (seq=1, data=b"\\x02...") and
    (seq=0x0102, data=b"...") can never collide -- a fixed-width prefix makes
    the concatenation injective.

    :param seq: per-topic publication sequence number (non-negative).
    :param data: serialized message payload ``D``.
    """
    if seq < 0:
        raise ValueError("sequence numbers are non-negative")
    if seq >= 1 << 64:
        raise ValueError("sequence number exceeds 64 bits")
    return sha256(seq.to_bytes(8, "big") + data)
