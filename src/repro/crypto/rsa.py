"""Textbook RSA: key generation and modular-exponentiation primitives.

This module deliberately exposes only *raw* RSA (RSADP/RSASP1 etc. from
RFC 8017).  All padding lives in :mod:`repro.crypto.pkcs1`; nothing in this
library ever signs or encrypts unpadded data.

Key generation uses two random primes of ``bits/2`` bits each, public
exponent 65537, and a CRT-accelerated private operation (~3-4x faster than a
single ``pow`` with ``d`` for 1024-bit keys, which matters for the latency
benchmarks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.primes import generate_prime
from repro.errors import KeyGenerationError, SignatureError

#: The public exponent used for all generated keys (F4, standard choice).
PUBLIC_EXPONENT = 65537


@dataclass(frozen=True)
class RsaPublicNumbers:
    """The public half of an RSA key: modulus ``n`` and exponent ``e``."""

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    @property
    def byte_size(self) -> int:
        """Length ``k`` of signatures/ciphertexts under this key, in bytes."""
        return (self.n.bit_length() + 7) // 8


@dataclass(frozen=True)
class RsaPrivateNumbers:
    """The private half: primes, exponents, and CRT coefficients."""

    n: int
    e: int
    d: int
    p: int
    q: int
    dp: int  # d mod (p-1)
    dq: int  # d mod (q-1)
    qinv: int  # q^-1 mod p

    @property
    def public_numbers(self) -> RsaPublicNumbers:
        return RsaPublicNumbers(n=self.n, e=self.e)

    @property
    def byte_size(self) -> int:
        return (self.n.bit_length() + 7) // 8


def generate_rsa_numbers(
    bits: int = 1024, rng: Optional[random.Random] = None
) -> RsaPrivateNumbers:
    """Generate an RSA key of ``bits`` modulus bits (paper uses 1024).

    :param bits: modulus size; must be even and >= 128 (tests use small keys
        for speed, real use should stick to >= 1024).
    :param rng: optional seeded RNG for reproducible test keys.  When omitted
        a system CSPRNG is used.
    """
    if bits % 2 != 0:
        raise KeyGenerationError("modulus bit length must be even")
    if bits < 128:
        raise KeyGenerationError("modulus must be at least 128 bits")
    rng = rng or random.SystemRandom()

    e = PUBLIC_EXPONENT
    while True:
        p = generate_prime(bits // 2, rng)
        q = generate_prime(bits // 2, rng)
        if p == q:
            continue
        if p < q:
            p, q = q, p  # convention: p > q, required for the CRT qinv step
        n = p * q
        if n.bit_length() != bits:
            continue
        lam = (p - 1) * (q - 1)  # Euler totient; fine for e coprime to it
        if lam % e == 0:
            continue
        d = pow(e, -1, lam)
        return RsaPrivateNumbers(
            n=n,
            e=e,
            d=d,
            p=p,
            q=q,
            dp=d % (p - 1),
            dq=d % (q - 1),
            qinv=pow(q, -1, p),
        )


def rsa_public_op(pub: RsaPublicNumbers, m: int) -> int:
    """RSAVP1/RSAEP: compute ``m^e mod n``.  ``m`` must be in [0, n)."""
    if not 0 <= m < pub.n:
        raise SignatureError("representative out of range for modulus")
    return pow(m, pub.e, pub.n)


def rsa_private_op(priv: RsaPrivateNumbers, c: int) -> int:
    """RSADP/RSASP1 via the Chinese Remainder Theorem.

    Computes ``c^d mod n`` using the two half-size exponentiations
    ``c^dp mod p`` and ``c^dq mod q`` and Garner recombination.
    """
    if not 0 <= c < priv.n:
        raise SignatureError("representative out of range for modulus")
    m1 = pow(c % priv.p, priv.dp, priv.p)
    m2 = pow(c % priv.q, priv.dq, priv.q)
    h = ((m1 - m2) * priv.qinv) % priv.p
    return m2 + h * priv.q
