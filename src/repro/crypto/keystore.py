"""Public-key registry.

The trusted logger stores each component's public key at registration time
(paper, Section V-B, step 1) so that the auditor can later verify the
authenticity of log entries (Section IV-B, "Obvious Detection": the
components' public keys are known, so entry authenticity is easily
verifiable).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Optional

from repro.crypto.keys import PublicKey
from repro.errors import UnknownComponentError


class KeyStore:
    """Thread-safe mapping of component id -> :class:`PublicKey`.

    Registration is first-write-wins: re-registering the *same* key is
    idempotent, but attempting to replace an existing key with a different
    one raises.  This prevents a component from repudiating old signatures
    by swapping in a new key mid-run (the paper assumes keys are transferred
    securely once).
    """

    def __init__(self) -> None:
        self._keys: Dict[str, PublicKey] = {}
        self._lock = threading.Lock()

    def register(self, component_id: str, key: PublicKey) -> None:
        """Bind ``component_id`` to ``key``; idempotent for identical keys."""
        with self._lock:
            existing = self._keys.get(component_id)
            if existing is not None and existing != key:
                raise UnknownComponentError(
                    f"component {component_id!r} attempted to replace its "
                    f"registered public key"
                )
            self._keys[component_id] = key

    def get(self, component_id: str) -> PublicKey:
        """Return the registered key, raising if the component is unknown."""
        with self._lock:
            try:
                return self._keys[component_id]
            except KeyError:
                raise UnknownComponentError(
                    f"no public key registered for component {component_id!r}"
                ) from None

    def find(self, component_id: str) -> Optional[PublicKey]:
        """Like :meth:`get` but returns ``None`` for unknown components."""
        with self._lock:
            return self._keys.get(component_id)

    def __contains__(self, component_id: str) -> bool:
        with self._lock:
            return component_id in self._keys

    def __len__(self) -> int:
        with self._lock:
            return len(self._keys)

    def __iter__(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._keys))

    def snapshot(self) -> Dict[str, PublicKey]:
        """A point-in-time copy of the registry (for auditors)."""
        with self._lock:
            return dict(self._keys)

    def describe(self) -> Dict[str, str]:
        """Component id -> human-readable key label (``rsa-1024``,
        ``ed25519``, ...) -- keys carry their scheme, so tooling must not
        assume an RSA bit-size."""
        with self._lock:
            return {
                component_id: key.describe()
                for component_id, key in self._keys.items()
            }
