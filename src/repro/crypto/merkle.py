"""Merkle tree with inclusion proofs.

Complements the hash chain (related work [27], Crosby & Wallach): the log
server periodically commits a Merkle root over ingested entries, and a
third-party investigator can check that a specific log entry is included in
a committed epoch without downloading the whole log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.crypto.hashing import sha256

# Domain-separation prefixes prevent a leaf from being reinterpreted as an
# interior node (the classic second-preimage attack on naive Merkle trees).
_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

#: Root of the empty tree.
EMPTY_ROOT = sha256(b"repro.merkle.empty")


def leaf_hash(payload: bytes) -> bytes:
    """Hash of a leaf record."""
    return sha256(_LEAF_PREFIX + payload)


def node_hash(left: bytes, right: bytes) -> bytes:
    """Hash of an interior node from its two children."""
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the leaf's index and sibling digests bottom-up.

    Each element of :attr:`path` is ``(sibling_digest, sibling_is_right)``.
    """

    leaf_index: int
    tree_size: int
    path: Tuple[Tuple[bytes, bool], ...] = field(default_factory=tuple)

    def verify(self, payload: bytes, root: bytes) -> bool:
        """Check that ``payload`` at :attr:`leaf_index` hashes up to ``root``."""
        digest = leaf_hash(payload)
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                digest = node_hash(digest, sibling)
            else:
                digest = node_hash(sibling, digest)
        return digest == root


class MerkleTree:
    """A Merkle tree over an ordered list of byte records.

    Odd nodes are promoted (not duplicated) to the next level, matching
    RFC 6962's tree shape for non-power-of-two sizes.
    """

    def __init__(self, payloads: Sequence[bytes] = ()) -> None:
        self._leaves: List[bytes] = [leaf_hash(p) for p in payloads]

    def append(self, payload: bytes) -> int:
        """Append a record; returns its leaf index."""
        self._leaves.append(leaf_hash(payload))
        return len(self._leaves) - 1

    def __len__(self) -> int:
        return len(self._leaves)

    def _levels(self) -> List[List[bytes]]:
        """All tree levels bottom-up (levels[0] == leaves)."""
        levels = [list(self._leaves)]
        while len(levels[-1]) > 1:
            prev = levels[-1]
            nxt = []
            for i in range(0, len(prev) - 1, 2):
                nxt.append(node_hash(prev[i], prev[i + 1]))
            if len(prev) % 2 == 1:
                nxt.append(prev[-1])  # promote the odd node
            levels.append(nxt)
        return levels

    def root(self) -> bytes:
        """Current root digest (:data:`EMPTY_ROOT` when empty)."""
        if not self._leaves:
            return EMPTY_ROOT
        return self._levels()[-1][0]

    def prove(self, leaf_index: int) -> MerkleProof:
        """Build an inclusion proof for the leaf at ``leaf_index``."""
        if not 0 <= leaf_index < len(self._leaves):
            raise IndexError("leaf index out of range")
        path: List[Tuple[bytes, bool]] = []
        index = leaf_index
        for level in self._levels()[:-1]:
            if index % 2 == 0:
                if index + 1 < len(level):
                    path.append((level[index + 1], True))
                # else: promoted odd node, no sibling at this level
            else:
                path.append((level[index - 1], False))
            index //= 2
        return MerkleProof(
            leaf_index=leaf_index, tree_size=len(self._leaves), path=tuple(path)
        )
