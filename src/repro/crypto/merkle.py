"""Merkle tree with inclusion proofs.

Complements the hash chain (related work [27], Crosby & Wallach): the log
server periodically commits a Merkle root over ingested entries, and a
third-party investigator can check that a specific log entry is included in
a committed epoch without downloading the whole log.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

from repro.crypto.hashing import sha256
from repro.errors import LogIntegrityError, ProofError

# Domain-separation prefixes prevent a leaf from being reinterpreted as an
# interior node (the classic second-preimage attack on naive Merkle trees).
_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"

#: Root of the empty tree.
EMPTY_ROOT = sha256(b"repro.merkle.empty")


def leaf_hash(payload: bytes) -> bytes:
    """Hash of a leaf record."""
    return sha256(_LEAF_PREFIX + payload)


def node_hash(left: bytes, right: bytes) -> bytes:
    """Hash of an interior node from its two children."""
    return sha256(_NODE_PREFIX + left + right)


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: the leaf's index and sibling digests bottom-up.

    Each element of :attr:`path` is ``(sibling_digest, sibling_is_right)``.
    """

    leaf_index: int
    tree_size: int
    path: Tuple[Tuple[bytes, bool], ...] = field(default_factory=tuple)

    def verify(self, payload: bytes, root: bytes) -> bool:
        """Check that ``payload`` at :attr:`leaf_index` hashes up to ``root``."""
        digest = leaf_hash(payload)
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                digest = node_hash(digest, sibling)
            else:
                digest = node_hash(sibling, digest)
        return digest == root


@dataclass(frozen=True)
class MerkleConsistencyProof:
    """An RFC 6962 consistency proof between two sizes of the same log.

    :attr:`path` is the node sequence produced by the SUBPROOF algorithm;
    a verifier folds it to recompute *both* the old root and the new root,
    proving the tree at :attr:`new_size` is an append-only extension of the
    tree at :attr:`old_size`.
    """

    old_size: int
    new_size: int
    path: Tuple[bytes, ...] = field(default_factory=tuple)

    def verify(self, old_root: bytes, new_root: bytes) -> bool:
        """Check that the tree grew append-only from ``old_root`` to ``new_root``."""
        m, n = self.old_size, self.new_size
        if m < 0 or m > n:
            return False
        if m == n:
            return not self.path and old_root == new_root
        if m == 0:
            # The empty tree is a prefix of everything; nothing to fold.
            return not self.path and old_root == EMPTY_ROOT
        path = list(self.path)
        node, last_node = m - 1, n - 1
        while node % 2 == 1:
            node //= 2
            last_node //= 2
        if node:
            if not path:
                return False
            old_digest = new_digest = path.pop(0)
        else:
            # old_size is a power of two: its root is a node of the new tree.
            old_digest = new_digest = old_root
        while node or last_node:
            if node % 2 == 1:
                if not path:
                    return False
                sibling = path.pop(0)
                old_digest = node_hash(sibling, old_digest)
                new_digest = node_hash(sibling, new_digest)
            elif node < last_node:
                if not path:
                    return False
                new_digest = node_hash(new_digest, path.pop(0))
            node //= 2
            last_node //= 2
        return not path and old_digest == old_root and new_digest == new_root


def _mth(leaves: Sequence[bytes]) -> bytes:
    """Merkle tree head over already-hashed leaves (RFC 6962 MTH)."""
    n = len(leaves)
    if n == 0:
        return EMPTY_ROOT
    if n == 1:
        return leaves[0]
    k = _largest_power_of_two_below(n)
    return node_hash(_mth(leaves[:k]), _mth(leaves[k:]))


def _largest_power_of_two_below(n: int) -> int:
    """The largest power of two strictly less than ``n`` (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


def _subproof(m: int, leaves: Sequence[bytes], complete: bool) -> List[bytes]:
    """RFC 6962 SUBPROOF(m, D[n], b) over already-hashed leaves."""
    n = len(leaves)
    if m == n:
        return [] if complete else [_mth(leaves)]
    k = _largest_power_of_two_below(n)
    if m <= k:
        return _subproof(m, leaves[:k], complete) + [_mth(leaves[k:])]
    return _subproof(m - k, leaves[k:], False) + [_mth(leaves[:k])]


class MerkleTree:
    """A Merkle tree over an ordered list of byte records.

    Odd nodes are promoted (not duplicated) to the next level, matching
    RFC 6962's tree shape for non-power-of-two sizes.
    """

    def __init__(self, payloads: Sequence[bytes] = ()) -> None:
        self._leaves: List[bytes] = [leaf_hash(p) for p in payloads]

    def append(self, payload: bytes) -> int:
        """Append a record; returns its leaf index."""
        self._leaves.append(leaf_hash(payload))
        return len(self._leaves) - 1

    def truncate(self, size: int) -> None:
        """Drop leaves beyond ``size`` (rollback of a failed append)."""
        if not 0 <= size <= len(self._leaves):
            raise IndexError("truncation size out of range")
        del self._leaves[size:]

    def frontier(self) -> "MerkleFrontier":
        """The compact O(log n) frontier equivalent of this tree."""
        return MerkleFrontier.from_leaf_hashes(self._leaves)

    def __len__(self) -> int:
        return len(self._leaves)

    def _levels(self, tree_size: int = -1) -> List[List[bytes]]:
        """All tree levels bottom-up (levels[0] == leaves).

        ``tree_size`` restricts the tree to its first ``tree_size`` leaves,
        reconstructing the historical shape at that size.
        """
        leaves = self._leaves if tree_size < 0 else self._leaves[:tree_size]
        levels = [list(leaves)]
        while len(levels[-1]) > 1:
            prev = levels[-1]
            nxt = []
            for i in range(0, len(prev) - 1, 2):
                nxt.append(node_hash(prev[i], prev[i + 1]))
            if len(prev) % 2 == 1:
                nxt.append(prev[-1])  # promote the odd node
            levels.append(nxt)
        return levels

    def root(self) -> bytes:
        """Current root digest (:data:`EMPTY_ROOT` when empty)."""
        if not self._leaves:
            return EMPTY_ROOT
        return self._levels()[-1][0]

    def root_at(self, tree_size: int) -> bytes:
        """Root digest of the historical tree over the first ``tree_size`` leaves."""
        self._check_size(tree_size)
        if tree_size == 0:
            return EMPTY_ROOT
        return self._levels(tree_size)[-1][0]

    def _check_size(self, tree_size: int) -> None:
        if not 0 <= tree_size <= len(self._leaves):
            raise ProofError(
                "tree size %d out of range for a log of %d entries"
                % (tree_size, len(self._leaves))
            )

    def prove(self, leaf_index: int, tree_size: int = -1) -> MerkleProof:
        """Build an inclusion proof for the leaf at ``leaf_index``.

        When ``tree_size`` is given, the proof targets the historical tree
        over the first ``tree_size`` leaves (so it verifies against the root
        a signed tree head of that size committed to).
        """
        if tree_size < 0:
            tree_size = len(self._leaves)
        else:
            self._check_size(tree_size)
        if not 0 <= leaf_index < tree_size:
            raise ProofError(
                "leaf index %d out of range for tree size %d"
                % (leaf_index, tree_size)
            )
        path: List[Tuple[bytes, bool]] = []
        index = leaf_index
        for level in self._levels(tree_size)[:-1]:
            if index % 2 == 0:
                if index + 1 < len(level):
                    path.append((level[index + 1], True))
                # else: promoted odd node, no sibling at this level
            else:
                path.append((level[index - 1], False))
            index //= 2
        return MerkleProof(
            leaf_index=leaf_index, tree_size=tree_size, path=tuple(path)
        )

    def prove_consistency(
        self, old_size: int, new_size: int = -1
    ) -> MerkleConsistencyProof:
        """Build an RFC 6962 consistency proof between two sizes of this log."""
        if new_size < 0:
            new_size = len(self._leaves)
        else:
            self._check_size(new_size)
        if not 0 <= old_size <= new_size:
            raise ProofError(
                "inconsistent proof range: old size %d, new size %d"
                % (old_size, new_size)
            )
        if old_size == new_size or old_size == 0:
            # Equal sizes and the empty prefix verify without any path.
            return MerkleConsistencyProof(old_size=old_size, new_size=new_size)
        path = _subproof(old_size, self._leaves[:new_size], True)
        return MerkleConsistencyProof(
            old_size=old_size, new_size=new_size, path=tuple(path)
        )


_PEAK = struct.Struct("<Q32s")


class MerkleFrontier:
    """Incremental Merkle root computation in O(log n) state.

    The frontier holds one digest per perfect subtree ("peak") of the
    current leaf count, largest first -- exactly the binary decomposition
    of ``n``.  Appending a leaf pushes a size-1 peak and merges equal-sized
    neighbors; the root folds the peaks right-to-left, which reproduces
    :class:`MerkleTree`'s promote-the-odd-node (RFC 6962) shape for every
    size.  Because the state is logarithmic and serializable, a checkpoint
    can commit to the whole log without storing any leaves, and recovery
    can *continue* the frontier from the checkpoint and verify that
    appending the replayed tail reproduces the full tree's root.
    """

    def __init__(self, peaks: Sequence[Tuple[int, bytes]] = ()) -> None:
        self._peaks: List[Tuple[int, bytes]] = list(peaks)
        for (size, digest), (next_size, _) in zip(self._peaks, self._peaks[1:]):
            if size <= next_size:
                raise LogIntegrityError("frontier peaks must strictly shrink")
        for size, digest in self._peaks:
            if size & (size - 1) or len(digest) != 32:
                raise LogIntegrityError("malformed frontier peak")

    @classmethod
    def from_leaf_hashes(cls, leaves: Iterable[bytes]) -> "MerkleFrontier":
        frontier = cls()
        for leaf in leaves:
            frontier.append_leaf(leaf)
        return frontier

    def append(self, payload: bytes) -> None:
        """Fold one record into the frontier."""
        self.append_leaf(leaf_hash(payload))

    def append_leaf(self, leaf: bytes) -> None:
        """Fold an already-hashed leaf into the frontier."""
        self._peaks.append((1, leaf))
        while len(self._peaks) >= 2 and self._peaks[-1][0] == self._peaks[-2][0]:
            right_size, right = self._peaks.pop()
            left_size, left = self._peaks.pop()
            self._peaks.append((left_size + right_size, node_hash(left, right)))

    def __len__(self) -> int:
        return sum(size for size, _ in self._peaks)

    def root(self) -> bytes:
        """Root digest; equals ``MerkleTree(payloads).root()`` at any size."""
        if not self._peaks:
            return EMPTY_ROOT
        digest = self._peaks[-1][1]
        for _, peak in reversed(self._peaks[:-1]):
            digest = node_hash(peak, digest)
        return digest

    def copy(self) -> "MerkleFrontier":
        return MerkleFrontier(self._peaks)

    # -- checkpoint serialization -----------------------------------------

    def to_bytes(self) -> bytes:
        return b"".join(_PEAK.pack(size, digest) for size, digest in self._peaks)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "MerkleFrontier":
        if len(blob) % _PEAK.size:
            raise LogIntegrityError("malformed frontier serialization")
        return cls(
            [
                _PEAK.unpack_from(blob, offset)
                for offset in range(0, len(blob), _PEAK.size)
            ]
        )
