"""Parallel amortized signature verification.

Signature verification is the auditor's CPU cost, and pure-Python
verification (for either scheme) holds the GIL, so a thread pool cannot
scale it.  :class:`VerifyPool` batches ``(digest, signature, key bytes)``
triples onto a spawn-context process pool: the parent ships plain bytes,
each child caches decoded keys and verifies its slice outside the
parent's GIL, and the results come back as a flat list of booleans in
input order.

The pool is a *pure accelerator*: a triple that fails to decode (bad key
bytes) verifies ``False`` exactly as it would inline, and callers such as
:class:`repro.audit.auditor.Auditor` fall back to in-process verification
for any triple the pre-pass did not cover -- so pooled and in-process
audits produce identical verdicts (asserted by the cross-scheme
differential battery).
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

#: one verification job: (digest, signature, serialized public key)
VerifyTriple = Tuple[bytes, bytes, bytes]

#: triples below this count are verified inline -- process dispatch
#: overhead would dominate a tiny batch
MIN_POOL_BATCH = 32


def _verify_chunk(triples: Sequence[VerifyTriple]) -> List[bool]:
    """Worker-side kernel: decode keys (cached per worker), verify.

    Top-level on purpose so a spawn-context pool can pickle it.  Bad key
    bytes verify ``False`` -- the pool must never turn malformed evidence
    into an exception a caller does not expect inline.
    """
    from repro.crypto.keys import PublicKey
    from repro.errors import DecodingError

    cache: Dict[bytes, Optional[PublicKey]] = {}
    results: List[bool] = []
    for digest, signature, key_bytes in triples:
        key = cache.get(key_bytes, False)
        if key is False:
            try:
                key = PublicKey.from_bytes(key_bytes)
            except DecodingError:
                key = None
            cache[key_bytes] = key
        results.append(
            key is not None and key.verify_digest(digest, signature)
        )
    return results


def _verify_inline(triples: Sequence[VerifyTriple]) -> List[bool]:
    return _verify_chunk(triples)


class VerifyPool:
    """A spawn-context process pool for batched signature verification.

    Use as a context manager (or call :meth:`close`); workers are started
    lazily on the first batch large enough to be worth shipping out.
    """

    def __init__(self, workers: Optional[int] = None):
        if workers is not None and workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = workers or max(1, os.cpu_count() or 1)
        self._pool: Optional[ProcessPoolExecutor] = None
        self._closed = False
        self._lock = threading.Lock()  # several shard auditors may share one pool

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._lock:
            if self._closed:
                raise RuntimeError("VerifyPool is closed")
            if self._pool is None:
                context = multiprocessing.get_context("spawn")
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=context
                )
            return self._pool

    def verify_batch(self, triples: Sequence[VerifyTriple]) -> List[bool]:
        """Verify every ``(digest, signature, key bytes)`` triple.

        Returns one boolean per triple, in input order.  Small batches
        (and single-worker pools) are verified inline.
        """
        triples = list(triples)
        if not triples:
            return []
        if self.workers == 1 or len(triples) < MIN_POOL_BATCH:
            return _verify_inline(triples)
        pool = self._ensure_pool()
        chunks = min(self.workers, len(triples))
        step = (len(triples) + chunks - 1) // chunks
        futures = [
            pool.submit(_verify_chunk, triples[i : i + step])
            for i in range(0, len(triples), step)
        ]
        results: List[bool] = []
        for future in futures:
            results.extend(future.result())
        return results

    def close(self) -> None:
        """Shut the worker processes down (idempotent)."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "VerifyPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
