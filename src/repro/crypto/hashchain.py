"""Tamper-evident hash chain.

The paper assumes "a tamper-resistant or tamper-evident logging mechanism is
in place [7], [15] for the protection of log integrity" (Section II-A).  This
module realizes that assumption with the classic Schneier-Kelsey style hash
chain: each appended record is bound to the digest of everything before it,
so any retroactive modification, deletion, or reordering of records changes
every subsequent chain digest and is detected by :meth:`HashChain.verify`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.crypto.hashing import sha256
from repro.errors import LogIntegrityError

#: Well-known digest anchoring the start of every chain.
GENESIS = sha256(b"repro.hashchain.genesis")


def chain_digest(prev_digest: bytes, payload: bytes) -> bytes:
    """Digest binding ``payload`` to the running chain state.

    Computed as ``h(prev || h(payload))``; hashing the payload first keeps
    the combiner fixed-width and prevents boundary-shifting collisions
    between ``prev`` and ``payload``.
    """
    return sha256(prev_digest + sha256(payload))


@dataclass(frozen=True)
class ChainEntry:
    """One record in the chain: its position, payload, and chained digest."""

    index: int
    payload: bytes
    digest: bytes


class HashChain:
    """An append-only sequence of byte records with verifiable integrity."""

    def __init__(self) -> None:
        self._entries: List[ChainEntry] = []
        self._head = GENESIS

    def append(self, payload: bytes) -> ChainEntry:
        """Append ``payload`` and return the new chained entry."""
        digest = chain_digest(self._head, payload)
        entry = ChainEntry(index=len(self._entries), payload=payload, digest=digest)
        self._entries.append(entry)
        self._head = digest
        return entry

    def adopt(self, payload: bytes, digest: bytes) -> ChainEntry:
        """Append a record whose chain digest was computed in an earlier
        life of this chain, without recomputing it.

        This is the recovery fast path: a durable store replaying a WAL
        prefix that a checkpoint already anchors adopts the stored digests
        and only recomputes the post-checkpoint tail.  :meth:`verify`
        still recomputes everything, so adoption never weakens the tamper
        check -- it only defers it.
        """
        entry = ChainEntry(index=len(self._entries), payload=payload, digest=digest)
        self._entries.append(entry)
        self._head = digest
        return entry

    def truncate(self, size: int) -> None:
        """Drop entries beyond ``size`` (rollback of a failed append)."""
        if not 0 <= size <= len(self._entries):
            raise IndexError("truncation size out of range")
        del self._entries[size:]
        self._head = self._entries[-1].digest if self._entries else GENESIS

    @property
    def head(self) -> bytes:
        """Digest of the latest entry (GENESIS when empty)."""
        return self._head

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[ChainEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> ChainEntry:
        return self._entries[index]

    def payloads(self) -> List[bytes]:
        """All payloads in append order."""
        return [e.payload for e in self._entries]

    def verify(self) -> None:
        """Recompute the whole chain; raise :class:`LogIntegrityError` if any
        stored digest disagrees with the recomputation."""
        ok, index = verify_chain(
            [(e.payload, e.digest) for e in self._entries]
        )
        if not ok:
            raise LogIntegrityError(f"hash chain broken at entry {index}")

    def verify_against(self, expected_head: bytes) -> None:
        """Verify internal consistency *and* that the head matches a
        previously published commitment (e.g. one the auditor noted down)."""
        self.verify()
        if self._head != expected_head:
            raise LogIntegrityError("chain head does not match commitment")


def verify_chain(
    records: Sequence[Tuple[bytes, bytes]], genesis: bytes = GENESIS
) -> Tuple[bool, Optional[int]]:
    """Check a ``(payload, digest)`` sequence for chain consistency.

    Returns ``(True, None)`` if consistent, otherwise ``(False, i)`` where
    ``i`` is the index of the first inconsistent record.
    """
    prev = genesis
    for i, (payload, digest) in enumerate(records):
        expected = chain_digest(prev, payload)
        if digest != expected:
            return False, i
        prev = digest
    return True, None
