"""Cryptographic substrate for ADLP.

The paper's prototype uses PyCrypto (RSA-1024 + SHA-256 + PKCS#1 v1.5).  That
library is not available offline, so this package implements the same
primitives from scratch:

- :mod:`repro.crypto.hashing` -- SHA-256 digests, including the paper's
  ``h(seq || D)`` construction.
- :mod:`repro.crypto.primes` -- Miller-Rabin probabilistic primality testing
  and prime generation for RSA key material.
- :mod:`repro.crypto.rsa` -- textbook RSA key generation and modular
  exponentiation primitives.
- :mod:`repro.crypto.pkcs1` -- EMSA-PKCS1-v1_5 signature encoding
  (RFC 8017), the signature scheme the paper uses.
- :mod:`repro.crypto.ed25519` -- pure-Python RFC 8032 Ed25519, the planned
  upgrade path.
- :mod:`repro.crypto.schemes` -- the pluggable :class:`SignatureScheme`
  registry binding the two backends to scheme-tagged key encodings.
- :mod:`repro.crypto.keys` -- key pair objects with serialization.
- :mod:`repro.crypto.verifypool` -- spawn-context process pool for batched
  audit-time signature verification.
- :mod:`repro.crypto.keystore` -- the trusted logger's public-key registry.
- :mod:`repro.crypto.hashchain` / :mod:`repro.crypto.merkle` --
  tamper-evident structures realizing the paper's trusted-logger assumption.
"""

from repro.crypto.hashing import (
    sha256,
    sha256_hex,
    data_digest,
    HASH_LEN,
)
from repro.crypto.keys import KeyPair, PublicKey, PrivateKey, generate_keypair
from repro.crypto.keystore import KeyStore
from repro.crypto.pkcs1 import sign as pkcs1_sign, verify as pkcs1_verify
from repro.crypto.hashchain import HashChain, ChainEntry
from repro.crypto.merkle import MerkleTree, MerkleProof
from repro.crypto.schemes import (
    SignatureScheme,
    default_scheme_name,
    get_scheme,
    register_scheme,
    scheme_names,
)
from repro.crypto.verifypool import VerifyPool

__all__ = [
    "sha256",
    "sha256_hex",
    "data_digest",
    "HASH_LEN",
    "KeyPair",
    "PublicKey",
    "PrivateKey",
    "generate_keypair",
    "KeyStore",
    "pkcs1_sign",
    "pkcs1_verify",
    "HashChain",
    "ChainEntry",
    "MerkleTree",
    "MerkleProof",
    "SignatureScheme",
    "default_scheme_name",
    "get_scheme",
    "register_scheme",
    "scheme_names",
    "VerifyPool",
]
