"""Measurement harness shared by the ``benchmarks/`` suite.

- :mod:`repro.bench.workloads` -- the paper's representative payloads
  (Steering 20 B, Scan 8705 B, Image 921641 B) and synthetic sweeps.
- :mod:`repro.bench.timing` -- repeated-sample timing with summary stats.
- :mod:`repro.bench.cpu` -- process- and thread-group CPU utilization via
  ``/proc`` (the paper measures CPU% of the publisher and system-wide).
- :mod:`repro.bench.rates` -- log-generation-rate measurement.
- :mod:`repro.bench.reporting` -- plain-text tables mirroring the paper's
  rows, plus JSON result capture for EXPERIMENTS.md.
"""

from repro.bench.workloads import PAPER_SIZES, payload_of_size, paper_payloads
from repro.bench.timing import TimingStats, measure
from repro.bench.cpu import ProcessCpuSampler, ThreadGroupCpuSampler
from repro.bench.rates import measure_log_rate
from repro.bench.reporting import Table, save_results

__all__ = [
    "PAPER_SIZES",
    "payload_of_size",
    "paper_payloads",
    "TimingStats",
    "measure",
    "ProcessCpuSampler",
    "ThreadGroupCpuSampler",
    "measure_log_rate",
    "Table",
    "save_results",
]
