"""Repeated-sample timing with the summary statistics the paper reports."""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, List


@dataclass(frozen=True)
class TimingStats:
    """Mean/stdev/min/max of a timing experiment, in seconds."""

    samples: int
    mean: float
    stdev: float
    min: float
    max: float

    @property
    def mean_ms(self) -> float:
        return self.mean * 1e3

    @property
    def stdev_ms(self) -> float:
        return self.stdev * 1e3

    def __str__(self) -> str:
        return f"{self.mean_ms:.3f} ms ({self.stdev_ms:.3f} ms) n={self.samples}"

    @classmethod
    def from_samples(cls, durations: List[float]) -> "TimingStats":
        n = len(durations)
        if n == 0:
            raise ValueError("no samples")
        mean = sum(durations) / n
        var = sum((d - mean) ** 2 for d in durations) / n
        return cls(
            samples=n,
            mean=mean,
            stdev=math.sqrt(var),
            min=min(durations),
            max=max(durations),
        )


def measure(
    fn: Callable[[], object], samples: int = 100, warmup: int = 3
) -> TimingStats:
    """Time ``fn`` over ``samples`` calls (after ``warmup`` discarded ones).

    The paper's Table I uses 3000 samples per data type; callers choose
    their own count.
    """
    for _ in range(warmup):
        fn()
    durations = []
    for _ in range(samples):
        t0 = time.perf_counter()
        fn()
        durations.append(time.perf_counter() - t0)
    return TimingStats.from_samples(durations)
