"""Log-generation-rate measurement (Figure 15 / Table IV)."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.log_server import LogServer


@dataclass(frozen=True)
class LogRate:
    """Observed logging throughput."""

    duration_s: float
    entries: int
    bytes: int

    @property
    def bytes_per_second(self) -> float:
        return self.bytes / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def megabits_per_second(self) -> float:
        """Mb/s as the paper's Table IV reports (decimal megabits)."""
        return self.bytes_per_second * 8 / 1e6

    @property
    def entries_per_second(self) -> float:
        return self.entries / self.duration_s if self.duration_s > 0 else 0.0


def measure_log_rate(server: LogServer, duration_s: float) -> LogRate:
    """Watch ``server`` for ``duration_s`` and report the ingest rate.

    The workload must already be running; this only observes counters.
    """
    entries0 = len(server)
    bytes0 = server.total_bytes
    t0 = time.monotonic()
    time.sleep(duration_s)
    elapsed = time.monotonic() - t0
    return LogRate(
        duration_s=elapsed,
        entries=len(server) - entries0,
        bytes=server.total_bytes - bytes0,
    )
