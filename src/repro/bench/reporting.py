"""Result rendering and capture.

Each benchmark prints a plain-text table mirroring the paper's rows and
appends its raw numbers to ``bench_results.json`` so EXPERIMENTS.md can be
cross-checked against an actual run.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, List, Sequence

_RESULTS_PATH = os.environ.get("REPRO_BENCH_RESULTS", "bench_results.json")
_lock = threading.Lock()
_cpu_count: "int | None" = None


def host_cpu_count() -> int:
    """The host's CPU count, detected once and shared.

    Every benchmark that gates a scaling assertion on available
    parallelism (and every saved row that must be interpretable later)
    uses this single helper, so gating and recording can never disagree
    about what host the numbers came from.
    """
    global _cpu_count
    if _cpu_count is None:
        _cpu_count = os.cpu_count() or 1
    return _cpu_count


class Table:
    """A fixed-width text table."""

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = list(headers)
        self.rows: List[List[str]] = []

    def add_row(self, *cells: Any) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"expected {len(self.headers)} cells, got {len(cells)}"
            )
        self.rows.append([_format_cell(c) for c in cells])

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [f"== {self.title} =="]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(self.headers, widths)))
        lines.append(sep)
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def save_results(experiment: str, data: Dict[str, Any]) -> None:
    """Merge ``data`` under ``experiment`` into the results JSON file."""
    with _lock:
        results: Dict[str, Any] = {}
        if os.path.exists(_RESULTS_PATH):
            try:
                with open(_RESULTS_PATH) as f:
                    results = json.load(f)
            except (OSError, json.JSONDecodeError):
                results = {}
        results[experiment] = data
        with open(_RESULTS_PATH, "w") as f:
            json.dump(results, f, indent=2, sort_keys=True)
