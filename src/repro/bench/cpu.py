"""CPU-utilization measurement via ``/proc``.

The paper's Figure 14 reports the *publisher's* CPU utilization and
Table II the system-wide utilization of the self-driving application.  Our
nodes are threads of one Python process, so:

- :class:`ProcessCpuSampler` measures whole-process CPU% (Table II's
  analogue: everything the application consumes);
- :class:`ThreadGroupCpuSampler` measures the CPU% of a *subset* of
  threads -- those belonging to one node -- by reading per-task
  ``utime+stime`` from ``/proc/self/task/<tid>/stat`` (Figure 14's
  analogue of per-process accounting on the paper's testbed).

Utilization is expressed in percent of one core, matching the paper's
plots (values may exceed 100 on multi-core usage).
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Iterable, List, Optional

_CLOCK_TICKS = os.sysconf("SC_CLK_TCK")


def _task_cpu_seconds(tid: int) -> Optional[float]:
    """utime+stime of one task (thread), in seconds; None if it exited."""
    try:
        with open(f"/proc/self/task/{tid}/stat", "rb") as f:
            raw = f.read().decode("ascii", "replace")
    except OSError:
        return None
    # fields after the parenthesized comm; utime/stime are fields 14/15
    rest = raw.rsplit(")", 1)[1].split()
    utime, stime = int(rest[11]), int(rest[12])
    return (utime + stime) / _CLOCK_TICKS


def threads_matching(predicate: Callable[[threading.Thread], bool]) -> List[int]:
    """Native thread ids of live Python threads satisfying ``predicate``."""
    ids = []
    for thread in threading.enumerate():
        if thread.native_id is not None and predicate(thread):
            ids.append(thread.native_id)
    return ids


class ProcessCpuSampler:
    """Whole-process CPU%: delta(cpu time)/delta(wall time) * 100."""

    def __init__(self) -> None:
        self._t0 = 0.0
        self._cpu0 = 0.0

    def start(self) -> None:
        times = os.times()
        self._cpu0 = times.user + times.system
        self._t0 = time.monotonic()

    def stop(self) -> float:
        """Return average CPU% of one core since :meth:`start`."""
        times = os.times()
        wall = time.monotonic() - self._t0
        if wall <= 0:
            return 0.0
        return 100.0 * (times.user + times.system - self._cpu0) / wall


class ThreadGroupCpuSampler:
    """CPU% consumed by a fixed set of native thread ids.

    Threads that exit mid-measurement keep their last observed CPU time, so
    short-lived workers are still accounted (their final reading may lag by
    one sample; sample reasonably often for accuracy).
    """

    def __init__(self, thread_ids: Iterable[int]):
        self._ids = list(thread_ids)
        self._last: dict = {}
        self._t0 = 0.0
        self._base = 0.0

    def _total(self) -> float:
        total = 0.0
        for tid in self._ids:
            seconds = _task_cpu_seconds(tid)
            if seconds is not None:
                self._last[tid] = seconds
            total += self._last.get(tid, 0.0)
        return total

    def start(self) -> None:
        self._base = self._total()
        self._t0 = time.monotonic()

    def sample(self) -> None:
        """Refresh the last-seen CPU times (call periodically for threads
        that may exit before :meth:`stop`)."""
        self._total()

    def stop(self) -> float:
        """Return average CPU% of one core since :meth:`start`."""
        wall = time.monotonic() - self._t0
        if wall <= 0:
            return 0.0
        return 100.0 * (self._total() - self._base) / wall
