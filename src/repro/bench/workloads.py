"""Benchmark payloads.

Table I's three representative data types and their sizes:

=========  =========  =============================
Type       Size (B)   Our realization
=========  =========  =============================
Steering   20         small control command
Scan       8705       1080-beam packed LIDAR sweep
Image      921641     640x480 RGB frame
=========  =========  =============================

Payloads are deterministic pseudo-random bytes: incompressible like real
sensor data, reproducible across runs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

#: The paper's Table I data sizes, in bytes.
PAPER_SIZES: Dict[str, int] = {
    "Steering": 20,
    "Scan": 8705,
    "Image": 921641,
}

#: Payload-size sweep for the Figure 13 latency experiment.
LATENCY_SWEEP_SIZES: Tuple[int, ...] = (
    20,
    256,
    1024,
    8705,
    65536,
    262144,
    921641,
)


def payload_of_size(size: int, seed: int = 0) -> bytes:
    """Deterministic pseudo-random payload of exactly ``size`` bytes."""
    rng = np.random.default_rng(seed + size)
    return rng.integers(0, 256, size=size, dtype=np.uint8).tobytes()


def paper_payloads(seed: int = 0) -> Dict[str, bytes]:
    """The three Table I payloads, keyed by type name."""
    return {name: payload_of_size(size, seed) for name, size in PAPER_SIZES.items()}


def sweep_payloads(seed: int = 0) -> List[Tuple[int, bytes]]:
    """(size, payload) pairs for the latency sweep."""
    return [(size, payload_of_size(size, seed)) for size in LATENCY_SWEEP_SIZES]
