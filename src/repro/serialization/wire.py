"""Low-level protobuf wire encoding: varints, zigzag, tags, wire types."""

from __future__ import annotations

import enum
import struct
from typing import Tuple

from repro.errors import DecodingError

#: Largest value a field number may take (protobuf limit).
MAX_FIELD_NUMBER = (1 << 29) - 1


class WireType(enum.IntEnum):
    """The wire types of the protobuf encoding we use."""

    VARINT = 0
    I64 = 1
    LEN = 2
    I32 = 5


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a base-128 varint."""
    if value < 0:
        raise ValueError("varints encode non-negative integers; zigzag first")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> Tuple[int, int]:
    """Decode a varint at ``offset``; returns ``(value, next_offset)``.

    Bounded to 10 bytes (64-bit range) to reject malicious unbounded input.
    """
    result = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(data):
            raise DecodingError("truncated varint")
        if pos - offset >= 10:
            raise DecodingError("varint longer than 10 bytes")
        byte = data[pos]
        result |= (byte & 0x7F) << shift
        pos += 1
        if not byte & 0x80:
            return result, pos
        shift += 7


def zigzag_encode(value: int) -> int:
    """Map a signed integer onto unsigned for efficient varint coding."""
    return (value << 1) ^ (value >> 63) if value < 0 else value << 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def encode_tag(field_number: int, wire_type: WireType) -> bytes:
    """Encode a field tag (field number + wire type) as a varint."""
    if not 1 <= field_number <= MAX_FIELD_NUMBER:
        raise ValueError(f"field number {field_number} out of range")
    return encode_varint((field_number << 3) | int(wire_type))


def decode_tag(data: bytes, offset: int = 0) -> Tuple[int, WireType, int]:
    """Decode a field tag; returns ``(field_number, wire_type, next_offset)``."""
    raw, pos = decode_varint(data, offset)
    field_number = raw >> 3
    try:
        wire_type = WireType(raw & 0x7)
    except ValueError as exc:
        raise DecodingError(f"unknown wire type {raw & 0x7}") from exc
    if field_number < 1:
        raise DecodingError("field number must be positive")
    return field_number, wire_type, pos


def encode_length_delimited(payload: bytes) -> bytes:
    """Encode a LEN payload: varint length followed by the bytes."""
    return encode_varint(len(payload)) + payload


def decode_length_delimited(data: bytes, offset: int = 0) -> Tuple[bytes, int]:
    """Decode a LEN payload at ``offset``; returns ``(payload, next_offset)``."""
    length, pos = decode_varint(data, offset)
    end = pos + length
    if end > len(data):
        raise DecodingError("truncated length-delimited payload")
    return data[pos:end], end


def encode_double(value: float) -> bytes:
    """Encode a float as 8 little-endian IEEE-754 bytes (I64 wire type)."""
    return struct.pack("<d", value)


def decode_double(data: bytes, offset: int = 0) -> Tuple[float, int]:
    """Decode an I64 double at ``offset``."""
    end = offset + 8
    if end > len(data):
        raise DecodingError("truncated double")
    return struct.unpack_from("<d", data, offset)[0], end


def skip_field(data: bytes, offset: int, wire_type: WireType) -> int:
    """Skip an unknown field's value; returns the next offset.

    Allows forward-compatible decoding: messages with unknown fields are
    tolerated, matching protobuf semantics.
    """
    if wire_type is WireType.VARINT:
        _, pos = decode_varint(data, offset)
        return pos
    if wire_type is WireType.I64:
        return offset + 8
    if wire_type is WireType.I32:
        return offset + 4
    if wire_type is WireType.LEN:
        _, pos = decode_length_delimited(data, offset)
        return pos
    raise DecodingError(f"cannot skip wire type {wire_type}")
