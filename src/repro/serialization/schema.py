"""Declarative protobuf-style messages.

A message class declares numbered fields; instances encode to (and decode
from) protobuf wire format.  Example::

    class LogRecord(WireMessage):
        component = string(1)
        seq = uint64(2)
        payload = bytes_(3)
        timestamp = double(4)

    raw = LogRecord(component="camera", seq=7, payload=b"...", timestamp=1.5).encode()
    rec = LogRecord.decode(raw)

Semantics follow proto3: fields at their default value (0, "", b"", False)
are omitted on the wire; unknown fields are skipped on decode.
"""

from __future__ import annotations

import enum as _enum
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.errors import DecodingError, SchemaError
from repro.serialization import wire
from repro.serialization.wire import WireType


class Field:
    """Descriptor for a single numbered field of a :class:`WireMessage`."""

    def __init__(self, number: int, default: Any):
        if number < 1:
            raise SchemaError("field numbers start at 1")
        self.number = number
        self.default = default
        self.name: str = "<unbound>"

    def __set_name__(self, owner: type, name: str) -> None:
        self.name = name

    def __get__(self, instance: Any, owner: Optional[type] = None) -> Any:
        if instance is None:
            return self
        return instance.__dict__.get(self.name, self.default_value())

    def __set__(self, instance: Any, value: Any) -> None:
        instance.__dict__[self.name] = self.coerce(value)

    def default_value(self) -> Any:
        return self.default

    def coerce(self, value: Any) -> Any:
        """Validate/convert an assigned value; subclasses override."""
        return value

    def is_default(self, value: Any) -> bool:
        return value == self.default_value()

    # -- wire interface -------------------------------------------------
    def encode(self, value: Any) -> bytes:
        """Encode tag + value; empty bytes when the value is default."""
        raise NotImplementedError

    def decode(self, data: bytes, offset: int, wire_type: WireType) -> Tuple[Any, int]:
        """Decode this field's value at ``offset``."""
        raise NotImplementedError

    def merge(self, old: Any, new: Any) -> Any:
        """Combine a re-occurring field (repeated fields accumulate)."""
        return new


class _ScalarField(Field):
    """Shared machinery for the scalar field kinds."""

    wire_type: WireType

    def _check_wire_type(self, wire_type: WireType) -> None:
        if wire_type is not self.wire_type:
            raise DecodingError(
                f"field {self.number} ({self.name}): expected wire type "
                f"{self.wire_type.name}, got {wire_type.name}"
            )


class UInt64Field(_ScalarField):
    """Unsigned 64-bit varint field."""

    wire_type = WireType.VARINT

    def __init__(self, number: int):
        super().__init__(number, default=0)

    def coerce(self, value: Any) -> int:
        value = int(value)
        if not 0 <= value < 1 << 64:
            raise SchemaError(f"{self.name}: value out of uint64 range")
        return value

    def encode(self, value: int) -> bytes:
        if value == 0:
            return b""
        return wire.encode_tag(self.number, self.wire_type) + wire.encode_varint(value)

    def decode(self, data: bytes, offset: int, wire_type: WireType) -> Tuple[int, int]:
        self._check_wire_type(wire_type)
        return wire.decode_varint(data, offset)


class SInt64Field(_ScalarField):
    """Signed 64-bit field, zigzag-encoded varint."""

    wire_type = WireType.VARINT

    def __init__(self, number: int):
        super().__init__(number, default=0)

    def coerce(self, value: Any) -> int:
        value = int(value)
        if not -(1 << 63) <= value < 1 << 63:
            raise SchemaError(f"{self.name}: value out of int64 range")
        return value

    def encode(self, value: int) -> bytes:
        if value == 0:
            return b""
        return wire.encode_tag(self.number, self.wire_type) + wire.encode_varint(
            wire.zigzag_encode(value)
        )

    def decode(self, data: bytes, offset: int, wire_type: WireType) -> Tuple[int, int]:
        self._check_wire_type(wire_type)
        raw, pos = wire.decode_varint(data, offset)
        return wire.zigzag_decode(raw), pos


class BoolField(_ScalarField):
    """Boolean field encoded as a 0/1 varint."""

    wire_type = WireType.VARINT

    def __init__(self, number: int):
        super().__init__(number, default=False)

    def coerce(self, value: Any) -> bool:
        return bool(value)

    def encode(self, value: bool) -> bytes:
        if not value:
            return b""
        return wire.encode_tag(self.number, self.wire_type) + wire.encode_varint(1)

    def decode(self, data: bytes, offset: int, wire_type: WireType) -> Tuple[bool, int]:
        self._check_wire_type(wire_type)
        raw, pos = wire.decode_varint(data, offset)
        return bool(raw), pos


class DoubleField(_ScalarField):
    """IEEE-754 double field (I64 wire type)."""

    wire_type = WireType.I64

    def __init__(self, number: int):
        super().__init__(number, default=0.0)

    def coerce(self, value: Any) -> float:
        return float(value)

    def encode(self, value: float) -> bytes:
        if value == 0.0:
            return b""
        return wire.encode_tag(self.number, self.wire_type) + wire.encode_double(value)

    def decode(self, data: bytes, offset: int, wire_type: WireType) -> Tuple[float, int]:
        self._check_wire_type(wire_type)
        return wire.decode_double(data, offset)


class BytesField(_ScalarField):
    """Raw bytes field (LEN wire type)."""

    wire_type = WireType.LEN

    def __init__(self, number: int):
        super().__init__(number, default=b"")

    def coerce(self, value: Any) -> bytes:
        if isinstance(value, (bytearray, memoryview)):
            return bytes(value)
        if not isinstance(value, bytes):
            raise SchemaError(f"{self.name}: expected bytes, got {type(value).__name__}")
        return value

    def encode(self, value: bytes) -> bytes:
        if not value:
            return b""
        return wire.encode_tag(self.number, self.wire_type) + wire.encode_length_delimited(value)

    def decode(self, data: bytes, offset: int, wire_type: WireType) -> Tuple[bytes, int]:
        self._check_wire_type(wire_type)
        return wire.decode_length_delimited(data, offset)


class StringField(BytesField):
    """UTF-8 string field (LEN wire type)."""

    def __init__(self, number: int):
        _ScalarField.__init__(self, number, default="")

    def coerce(self, value: Any) -> str:
        if not isinstance(value, str):
            raise SchemaError(f"{self.name}: expected str, got {type(value).__name__}")
        return value

    def encode(self, value: str) -> bytes:
        if not value:
            return b""
        return wire.encode_tag(self.number, self.wire_type) + wire.encode_length_delimited(
            value.encode("utf-8")
        )

    def decode(self, data: bytes, offset: int, wire_type: WireType) -> Tuple[str, int]:
        self._check_wire_type(wire_type)
        payload, pos = wire.decode_length_delimited(data, offset)
        try:
            return payload.decode("utf-8"), pos
        except UnicodeDecodeError as exc:
            raise DecodingError(f"field {self.number}: invalid UTF-8") from exc


class EnumField(_ScalarField):
    """Field holding a Python :class:`enum.IntEnum` value as a varint."""

    wire_type = WireType.VARINT

    def __init__(self, number: int, enum_type: Type[_enum.IntEnum]):
        self.enum_type = enum_type
        default = list(enum_type)[0]
        super().__init__(number, default=default)

    def coerce(self, value: Any) -> _enum.IntEnum:
        return self.enum_type(value)

    def encode(self, value: _enum.IntEnum) -> bytes:
        if int(value) == int(self.default):
            return b""
        return wire.encode_tag(self.number, self.wire_type) + wire.encode_varint(int(value))

    def decode(self, data: bytes, offset: int, wire_type: WireType) -> Tuple[Any, int]:
        self._check_wire_type(wire_type)
        raw, pos = wire.decode_varint(data, offset)
        try:
            return self.enum_type(raw), pos
        except ValueError as exc:
            raise DecodingError(
                f"field {self.number}: {raw} is not a valid {self.enum_type.__name__}"
            ) from exc


class MessageField(Field):
    """Nested-message field (LEN wire type).

    The message type may be given lazily as a zero-argument callable to break
    declaration cycles.
    """

    wire_type = WireType.LEN

    def __init__(self, number: int, message_type):
        super().__init__(number, default=None)
        self._message_type = message_type

    @property
    def message_type(self) -> Type["WireMessage"]:
        if not isinstance(self._message_type, type):
            self._message_type = self._message_type()
        return self._message_type

    def coerce(self, value: Any) -> Any:
        if value is not None and not isinstance(value, self.message_type):
            raise SchemaError(
                f"{self.name}: expected {self.message_type.__name__} or None"
            )
        return value

    def encode(self, value: Optional["WireMessage"]) -> bytes:
        if value is None:
            return b""
        return wire.encode_tag(self.number, WireType.LEN) + wire.encode_length_delimited(
            value.encode()
        )

    def decode(self, data: bytes, offset: int, wire_type: WireType) -> Tuple[Any, int]:
        if wire_type is not WireType.LEN:
            raise DecodingError(f"field {self.number}: nested messages use LEN")
        payload, pos = wire.decode_length_delimited(data, offset)
        return self.message_type.decode(payload), pos


class RepeatedField(Field):
    """Repeated (list) field wrapping an element field.

    Encoded unpacked (one tag per element), which is valid protobuf for all
    element types and keeps the implementation simple.
    """

    def __init__(self, element: Field):
        super().__init__(element.number, default=None)
        self.element = element

    def __set_name__(self, owner: type, name: str) -> None:
        super().__set_name__(owner, name)
        self.element.name = name

    def default_value(self) -> List[Any]:
        return []

    def is_default(self, value: Any) -> bool:
        return not value

    def coerce(self, value: Any) -> List[Any]:
        if value is None:
            return []
        return [self.element.coerce(v) for v in value]

    def encode(self, value: List[Any]) -> bytes:
        parts = []
        for item in value:
            encoded = self.element.encode(item)
            if not encoded:
                # Element at its default value still needs explicit encoding:
                # emit tag + canonical default representation.
                encoded = self._encode_default_element(item)
            parts.append(encoded)
        return b"".join(parts)

    def _encode_default_element(self, item: Any) -> bytes:
        element = self.element
        if isinstance(element, (StringField,)):
            return wire.encode_tag(element.number, WireType.LEN) + wire.encode_length_delimited(b"")
        if isinstance(element, BytesField):
            return wire.encode_tag(element.number, WireType.LEN) + wire.encode_length_delimited(b"")
        if isinstance(element, DoubleField):
            return wire.encode_tag(element.number, WireType.I64) + wire.encode_double(0.0)
        # varint-coded kinds (uint, sint, bool, enum)
        return wire.encode_tag(element.number, WireType.VARINT) + wire.encode_varint(0)

    def decode(self, data: bytes, offset: int, wire_type: WireType) -> Tuple[Any, int]:
        return self.element.decode(data, offset, wire_type)

    def merge(self, old: Any, new: Any) -> Any:
        items = list(old) if old else []
        items.append(new)
        return items


class WireMessage:
    """Base class for declaratively defined wire messages."""

    _fields_by_name: Dict[str, Field]
    _fields_by_number: Dict[int, Field]

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        fields_by_name: Dict[str, Field] = {}
        fields_by_number: Dict[int, Field] = {}
        # Walk the MRO so subclassed messages inherit parent fields.
        for klass in reversed(cls.__mro__):
            for name, attr in vars(klass).items():
                if isinstance(attr, Field):
                    if attr.number in fields_by_number and fields_by_number[attr.number].name != name:
                        raise SchemaError(
                            f"{cls.__name__}: duplicate field number {attr.number}"
                        )
                    fields_by_name[name] = attr
                    fields_by_number[attr.number] = attr
        cls._fields_by_name = fields_by_name
        cls._fields_by_number = fields_by_number

    def __init__(self, **kwargs: Any) -> None:
        for name, value in kwargs.items():
            if name not in self._fields_by_name:
                raise SchemaError(f"{type(self).__name__} has no field {name!r}")
            setattr(self, name, value)

    def encode(self) -> bytes:
        """Serialize to protobuf wire format (fields in number order)."""
        parts = []
        for field in sorted(self._fields_by_number.values(), key=lambda f: f.number):
            value = getattr(self, field.name)
            if field.is_default(value):
                continue
            parts.append(field.encode(value))
        return b"".join(parts)

    @classmethod
    def decode(cls, data: bytes):
        """Parse an instance from wire format, skipping unknown fields."""
        instance = cls()
        offset = 0
        while offset < len(data):
            number, wire_type, offset = wire.decode_tag(data, offset)
            field = cls._fields_by_number.get(number)
            if field is None:
                offset = wire.skip_field(data, offset, wire_type)
                continue
            value, offset = field.decode(data, offset, wire_type)
            current = instance.__dict__.get(field.name)
            instance.__dict__[field.name] = field.merge(current, value)
        return instance

    def encoded_size(self) -> int:
        """Size in bytes of :meth:`encode` output."""
        return len(self.encode())

    def __eq__(self, other: Any) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self._fields_by_name
        )

    def __repr__(self) -> str:
        parts = []
        for name, field in self._fields_by_name.items():
            value = getattr(self, name)
            if field.is_default(value):
                continue
            shown = value
            if isinstance(value, bytes) and len(value) > 16:
                shown = value[:16] + b"..."
            parts.append(f"{name}={shown!r}")
        return f"{type(self).__name__}({', '.join(parts)})"


# ---------------------------------------------------------------------------
# Declaration helpers (the public schema DSL).
# ---------------------------------------------------------------------------

def uint64(number: int) -> UInt64Field:
    """Declare an unsigned 64-bit varint field."""
    return UInt64Field(number)


def sint64(number: int) -> SInt64Field:
    """Declare a signed 64-bit zigzag varint field."""
    return SInt64Field(number)


def double(number: int) -> DoubleField:
    """Declare an IEEE-754 double field."""
    return DoubleField(number)


def boolean(number: int) -> BoolField:
    """Declare a boolean field."""
    return BoolField(number)


def string(number: int) -> StringField:
    """Declare a UTF-8 string field."""
    return StringField(number)


def bytes_(number: int) -> BytesField:
    """Declare a raw bytes field."""
    return BytesField(number)


def enum(number: int, enum_type: Type[_enum.IntEnum]) -> EnumField:
    """Declare an IntEnum-valued field."""
    return EnumField(number, enum_type)


def message(number: int, message_type) -> MessageField:
    """Declare a nested-message field; ``message_type`` may be lazy."""
    return MessageField(number, message_type)


def repeated(element: Field) -> RepeatedField:
    """Declare a repeated field from an element declaration, e.g.
    ``repeated(string(3))``."""
    return RepeatedField(element)
