"""Protobuf-style binary serialization.

The ADLP prototype serializes log entries with Google protocol buffers
(Section V-B, step 5).  protobuf is unavailable offline, so this package
implements the same wire format from scratch:

- :mod:`repro.serialization.wire` -- varints, zigzag, field tags, and the
  four wire types used by proto3.
- :mod:`repro.serialization.schema` -- declarative message classes whose
  fields encode/decode with protobuf-compatible framing.

Messages are therefore comparable in encoded size and structure to what the
paper's implementation produced, which matters for the Table III / Figure 15
storage experiments.
"""

from repro.serialization.wire import (
    WireType,
    encode_varint,
    decode_varint,
    zigzag_encode,
    zigzag_decode,
)
from repro.serialization.schema import (
    WireMessage,
    uint64,
    sint64,
    double,
    boolean,
    string,
    bytes_,
    enum,
    message,
    repeated,
)

__all__ = [
    "WireType",
    "encode_varint",
    "decode_varint",
    "zigzag_encode",
    "zigzag_decode",
    "WireMessage",
    "uint64",
    "sint64",
    "double",
    "boolean",
    "string",
    "bytes_",
    "enum",
    "message",
    "repeated",
]
