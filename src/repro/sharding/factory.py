"""Backend switch for the sharded trusted logger.

Both backends expose the same logger surface and produce byte-identical
:class:`~repro.sharding.sharded_server.ShardSetCommitment` roots for
identical inputs (the cross-process equivalence suite's invariant), so
callers pick purely on deployment shape:

- ``"thread"``: N shards inside this interpreter
  (:class:`~repro.sharding.sharded_server.ShardedLogServer`).  Cheapest;
  hashing still serializes on the GIL.  In-memory unless ``store_dir``
  is given.
- ``"process"``: N worker subprocesses
  (:class:`~repro.sharding.process_server.ProcessShardedLogServer`).
  True CPU parallelism; always durable (each worker owns a WAL), and
  ``fsync`` defaults to ``"always"`` there so an acknowledged submit is a
  durable submit.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import LoggingError
from repro.sharding.process_server import ProcessShardedLogServer
from repro.sharding.sharded_server import ShardedLogServer

#: Backends :func:`make_sharded_server` accepts.
BACKENDS = ("thread", "process")


def make_sharded_server(
    backend: str = "thread",
    shards: int = 4,
    store_dir: Optional[str] = None,
    fsync: "str | None" = None,
    checkpoint_every: int = 256,
    **kwargs,
):
    """Build a sharded logger; ``backend`` selects threads or processes.

    Extra keyword arguments pass through to the chosen class (e.g. the
    process backend's ``initial_worker_env``/``probe_interval``); an
    argument the chosen backend does not take raises ``TypeError`` like
    any wrong call would.
    """
    if backend == "thread":
        return ShardedLogServer(
            shards=shards,
            store_dir=store_dir,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            **kwargs,
        )
    if backend == "process":
        if fsync is None:
            fsync = "always"  # ACK == durable, the reconcile contract
        return ProcessShardedLogServer(
            shards=shards,
            store_dir=store_dir,
            fsync=fsync,
            checkpoint_every=checkpoint_every,
            **kwargs,
        )
    raise LoggingError(
        f"unknown sharding backend {backend!r}; expected one of {BACKENDS}"
    )
