"""Topic-sharded trusted logger.

A single :class:`~repro.core.log_server.LogServer` funnels every submit --
batched or not -- through one lock and one hash chain, so the logger
saturates one core no matter how many components feed it.  The sharded
server runs N *independent* ``LogServer`` instances, one per shard, and
routes each entry to its shard by topic (:class:`ShardRouter`).  Shards
share nothing on the submit path: each has its own lock, hash chain,
Merkle frontier, and -- when backed by disk -- its own WAL + checkpoint
directory, so submits to different shards proceed in parallel.

What the set still commits to as a whole is the
:class:`ShardSetCommitment`: a Merkle root over the ordered shard roots.
One hash pins the entire log (publishable per epoch exactly like a single
server's root), and a mismatch localizes to the shard whose leaf changed.

Shard layout on disk::

    store_dir/
        shard-000/   <- one DurableLogStore (WAL segments + checkpoints)
        shard-001/
        ...

Reopening with a different ``shards`` count is refused: routing is plain
modulo, so a different count would scatter a topic's future entries across
new shards while its history stays in the old one -- the per-topic
transmission pairing the auditor relies on would silently break.
"""

from __future__ import annotations

import os
import re
import struct
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.entries import Direction, LogEntry
from repro.core.log_server import LogCommitment, LogServer
from repro.core.log_store import LogStore
from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.merkle import MerkleTree
from repro.errors import DecodingError, LogIntegrityError, LoggingError, ProofError
from repro.sharding.router import ShardRouter

#: Name of shard ``i``'s subdirectory under a durable ``store_dir``.
SHARD_DIR_FORMAT = "shard-%03d"
_SHARD_DIR_RE = re.compile(r"^shard-(\d{3})$")

#: Fixed-width prefix of a shard's leaf in the set commitment: shard index
#: and entry count (8 bytes big-endian each) followed by the shard's chain
#: head and Merkle root.  Fixed widths make the encoding injective.
_LEAF_HEADER = struct.Struct(">QQ")


def shard_dirname(shard: int) -> str:
    """The on-disk directory name for shard ``shard``."""
    return SHARD_DIR_FORMAT % shard


def _shard_set_root(commitments: Sequence[LogCommitment]) -> bytes:
    tree = MerkleTree(
        _LEAF_HEADER.pack(index, c.entries) + c.chain_head + c.merkle_root
        for index, c in enumerate(commitments)
    )
    return tree.root()


@dataclass(frozen=True)
class ShardSetCommitment:
    """The sharded logger's publishable commitment: one Merkle root over
    the ordered per-shard commitments.

    Equality of two set roots implies equality of every shard's entry
    count, chain head, and Merkle root (each leaf binds all three), so a
    replicated deployment can compare whole sharded loggers with one hash
    -- and when the roots differ, :meth:`mismatched_shards` names the
    shards responsible.
    """

    shards: int
    entries: int
    total_bytes: int
    root: bytes
    shard_commitments: Tuple[LogCommitment, ...]

    def mismatched_shards(self, other: "ShardSetCommitment") -> List[int]:
        """Shard indices whose commitments differ between ``self`` and
        ``other`` (the localization step of a set-root mismatch)."""
        if other.shards != self.shards:
            raise ValueError(
                f"cannot compare shard sets of different sizes "
                f"({self.shards} vs {other.shards})"
            )
        return [
            i
            for i, (mine, theirs) in enumerate(
                zip(self.shard_commitments, other.shard_commitments)
            )
            if mine != theirs
        ]

    def as_log_commitment(self) -> LogCommitment:
        """Collapse to the single-logger commitment shape (set root in
        both hash slots) -- what an untargeted ``OP_HEALTH`` reports."""
        return LogCommitment(
            entries=self.entries,
            chain_head=self.root,
            merkle_root=self.root,
            total_bytes=self.total_bytes,
        )


class ShardedLogServer:
    """N independent :class:`LogServer` shards behind one logger surface.

    Drop-in for the places a ``LogServer`` goes: ``register_key`` /
    ``submit`` / ``submit_batch`` / ``entries`` / ``stats`` all exist with
    the same semantics, and ``ShardedLogServer(shards=1)`` is
    byte-identical to a plain ``LogServer`` fed the same stream (asserted
    by the equivalence suite).  The differences are where sharding shows:

    - ``commitment()`` returns a :class:`ShardSetCommitment`;
    - record indexes are per shard, so raw-record access and inclusion
      proofs take a shard argument;
    - key registrations are broadcast to every shard (each shard must be
      independently auditable, and keys are tiny compared to entries).
    """

    def __init__(
        self,
        shards: int = 4,
        store_dir: Optional[str] = None,
        fsync: "str | None" = None,
        checkpoint_every: int = 256,
        store_factory: Optional[Callable[[int], LogStore]] = None,
        signer: Optional[PrivateKey] = None,
        log_id: Optional[str] = None,
    ):
        if store_dir is not None and store_factory is not None:
            raise ValueError("pass either store_dir or store_factory, not both")
        #: Logger identity (one keypair for the whole set; per-shard heads
        #: carry the shard in their scope).  ``None`` = no signed heads.
        self._signer = signer
        self.log_id = log_id or (
            f"log-{signer.public_key.fingerprint()}" if signer else "unsigned"
        )
        self.router = ShardRouter(shards)
        self.store_dir = store_dir
        if store_dir is not None:
            self._check_layout(store_dir, shards)
            # import deferred so the in-memory path never touches storage
            from repro.storage.durable_store import DurableLogStore

            store_factory = lambda index: DurableLogStore(  # noqa: E731
                os.path.join(store_dir, shard_dirname(index)),
                fsync=fsync,
                checkpoint_every=checkpoint_every,
            )
        self._servers: List[LogServer] = [
            LogServer(store_factory(index) if store_factory is not None else None)
            for index in range(shards)
        ]
        #: Submissions refused before any shard was selected (undecodable
        #: bytes carry no topic to route on).
        self._unroutable = 0

    @staticmethod
    def _check_layout(store_dir: str, shards: int) -> None:
        """Refuse to reopen a durable layout with a different shard count."""
        if not os.path.isdir(store_dir):
            return
        existing = sorted(
            int(match.group(1))
            for name in os.listdir(store_dir)
            if (match := _SHARD_DIR_RE.match(name))
        )
        if not existing:
            return
        if existing != list(range(shards)):
            raise LogIntegrityError(
                f"store layout at {store_dir!r} holds shard directories "
                f"{existing} but {shards} shards were requested; the "
                f"topic->shard mapping depends on the count, so reopening "
                f"with a different one would split topics across shards"
            )

    # -- shard access ------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self.router.shards

    def shard(self, index: int) -> LogServer:
        """The underlying :class:`LogServer` for shard ``index``."""
        return self._servers[index]

    def shard_of(self, topic: str) -> int:
        """Which shard entries for ``topic`` land in."""
        return self.router.shard_of(topic)

    @property
    def keystore(self):
        """A key registry view (all shards hold identical registries)."""
        return self._servers[0].keystore

    @property
    def rejected_submissions(self) -> int:
        """Undecodable submissions refused across the set (same semantics
        as :attr:`LogServer.rejected_submissions`)."""
        return self._unroutable + sum(
            server.rejected_submissions for server in self._servers
        )

    # -- component-facing API ---------------------------------------------

    def register_key(self, component_id: str, key: Union[PublicKey, bytes]) -> None:
        """Register a component's key on *every* shard.

        Each shard must be independently auditable (and independently
        recoverable from its own WAL), so the registry is replicated
        rather than routed.
        """
        if isinstance(key, bytes):
            key = PublicKey.from_bytes(key)
        for server in self._servers:
            server.register_key(component_id, key)

    def _route(self, entry: Union[LogEntry, bytes]) -> Tuple[int, Union[LogEntry, bytes]]:
        """Pick the shard for one entry; raises ``LoggingError`` (and
        counts the rejection) when the bytes are undecodable."""
        if isinstance(entry, LogEntry):
            return self.router.shard_of(entry.topic), entry
        record = bytes(entry)
        try:
            topic = LogEntry.decode(record).topic
        except DecodingError as exc:
            self._unroutable += 1
            raise LoggingError(f"undecodable log entry: {exc}") from exc
        # Hand the shard the original bytes, not the re-encoding: the
        # shard's chain must fold exactly what the component signed over.
        return self.router.shard_of(topic), record

    def submit(self, entry: Union[LogEntry, bytes]) -> int:
        """Ingest one entry into its topic's shard; returns the entry's
        index *within that shard*."""
        shard, routed = self._route(entry)
        return self._servers[shard].submit(routed)

    def submit_batch(self, entries: List[Union[LogEntry, bytes]]) -> List[int]:
        """Group-commit a batch, split by shard.

        The batch is routed first (an undecodable entry rejects the whole
        batch before anything is mutated, like ``LogServer.submit_batch``),
        then each shard ingests its sub-batch under its own lock as one
        group commit.  All-or-nothing holds *per shard*: a store failure in
        shard ``k`` rolls back shard ``k``'s sub-batch, but sub-batches
        already committed to other shards stay -- the caller's per-entry
        retry fallback then re-submits only what the failing shard refused
        (re-submission of a committed entry would be visible to the auditor
        as a replayed sequence, never silent).
        """
        if not entries:
            return []
        routed: List[Tuple[int, Union[LogEntry, bytes]]] = []
        for entry in entries:
            routed.append(self._route(entry))
        by_shard: Dict[int, List[int]] = {}
        for position, (shard, _) in enumerate(routed):
            by_shard.setdefault(shard, []).append(position)
        indices: List[int] = [0] * len(entries)
        for shard in sorted(by_shard):
            positions = by_shard[shard]
            sub_batch = [routed[p][1] for p in positions]
            try:
                sub_indices = self._servers[shard].submit_batch(sub_batch)
            except Exception as exc:
                raise LoggingError(
                    f"shard {shard} rejected its sub-batch: {exc}"
                ) from exc
            for position, index in zip(positions, sub_indices):
                indices[position] = index
        return indices

    def submit_to_shard(self, shard: int, entry: Union[LogEntry, bytes]) -> int:
        """Ingest one entry into an explicitly named shard, verifying that
        the router agrees -- the server-side check behind shard-tagged
        ``OP_SUBMIT`` frames (a client with a stale shard count must not
        scatter a topic across shards)."""
        expected, routed = self._route(entry)
        if shard != expected:
            raise LoggingError(
                f"entry routed to shard {shard} but its topic belongs to "
                f"shard {expected} of {self.shard_count}"
            )
        return self._servers[expected].submit(routed)

    def submit_batch_to_shard(
        self, shard: int, entries: List[Union[LogEntry, bytes]]
    ) -> List[int]:
        """Batch variant of :meth:`submit_to_shard` (whole batch must route
        to ``shard``; verified before anything is mutated)."""
        routed: List[Union[LogEntry, bytes]] = []
        for entry in entries:
            expected, item = self._route(entry)
            if shard != expected:
                raise LoggingError(
                    f"batch tagged for shard {shard} holds an entry whose "
                    f"topic belongs to shard {expected}"
                )
            routed.append(item)
        return self._servers[shard].submit_batch(routed)

    # -- auditor/query API -------------------------------------------------

    def entries(
        self,
        component_id: Optional[str] = None,
        topic: Optional[str] = None,
        direction: Optional[Direction] = None,
        seq: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> List[LogEntry]:
        """Entries matching every filter, shard-major in ingestion order.

        A ``topic`` filter touches only that topic's shard (routing makes
        the other shards provably empty for it); a ``shard`` filter scopes
        the query to one shard explicitly.
        """
        if shard is not None:
            servers = [self._servers[shard]]
        elif topic is not None:
            servers = [self._servers[self.router.shard_of(topic)]]
        else:
            servers = self._servers
        result: List[LogEntry] = []
        for server in servers:
            result.extend(server.entries(component_id, topic, direction, seq))
        return result

    def __len__(self) -> int:
        return sum(len(server) for server in self._servers)

    @property
    def total_bytes(self) -> int:
        return sum(server.total_bytes for server in self._servers)

    def shard_raw_records(
        self, shard: int, start: int = 0, count: Optional[int] = None
    ) -> List[bytes]:
        """Encoded records ``[start, start+count)`` of one shard -- the
        fetch side of per-shard anti-entropy (a merged index space would
        not be stable under interleaved submits, so fetches are per
        shard)."""
        return self._servers[shard].raw_records(start, count)

    def components(self) -> List[str]:
        return self._servers[0].components()

    def keys_snapshot(self) -> Dict[str, bytes]:
        return self._servers[0].keys_snapshot()

    def public_key(self, component_id: str) -> PublicKey:
        return self._servers[0].public_key(component_id)

    def add_observer(self, callback) -> None:
        for server in self._servers:
            server.add_observer(callback)

    def remove_observer(self, callback) -> None:
        for server in self._servers:
            server.remove_observer(callback)

    # -- stats -------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Flat integer counters (mergeable into protocol ``stats()``)."""
        return {
            "shard_count": self.shard_count,
            "sharded_entries": len(self),
            "sharded_bytes": self.total_bytes,
            "sharded_rejected": self.rejected_submissions,
        }

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard detail: entry/byte/rejection counters per shard."""
        return [
            {
                "shard": index,
                "entries": len(server),
                "total_bytes": server.total_bytes,
                "rejected_submissions": server.rejected_submissions,
            }
            for index, server in enumerate(self._servers)
        ]

    def shard_audit_payload(self, shard: int) -> Tuple[List[bytes], Dict[str, bytes]]:
        """One shard's raw records and the key registry, as plain
        picklable values -- what a process-pool auditor ships to a child
        interpreter (both sharding backends expose this)."""
        server = self._servers[shard]
        return server.raw_records(), server.keys_snapshot()

    # -- integrity ---------------------------------------------------------

    def verify_shard(self, shard: int) -> None:
        """Check one shard's tamper-evident store; raises a
        :class:`LogIntegrityError` naming the shard."""
        try:
            self._servers[shard].verify_integrity()
        except LogIntegrityError as exc:
            raise LogIntegrityError(f"shard {shard}: {exc}") from exc

    def verify_integrity(self) -> None:
        """Check every shard's tamper-evident store; raises a
        :class:`LogIntegrityError` naming the first failing shard."""
        for index in range(self.shard_count):
            self.verify_shard(index)

    def shard_commitment(self, shard: int) -> LogCommitment:
        """One shard's commitment (what a shard-targeted ``OP_HEALTH``
        probe reports)."""
        return self._servers[shard].commitment()

    def commitment(self) -> ShardSetCommitment:
        """The set commitment over all shards.

        Each shard's snapshot is internally consistent (taken under that
        shard's lock); the *set* is a consistent point-in-time snapshot
        only when no submits are in flight, which is when commitments are
        taken (epoch close, catch-up freeze, audit).
        """
        commitments = tuple(server.commitment() for server in self._servers)
        return ShardSetCommitment(
            shards=self.shard_count,
            entries=sum(c.entries for c in commitments),
            total_bytes=sum(c.total_bytes for c in commitments),
            root=_shard_set_root(commitments),
            shard_commitments=commitments,
        )

    def merkle_root(self) -> bytes:
        """The shard-set root (the one hash pinning the whole log)."""
        return self.commitment().root

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.shard_count:
            raise ProofError(
                f"shard {shard} out of range for a {self.shard_count}-shard set"
            )

    def prove_inclusion(self, shard: int, index: int, tree_size: Optional[int] = None):
        """Inclusion proof for entry ``index`` of shard ``shard`` against
        that shard's Merkle root; pair it with the shard's leaf in the set
        root for an end-to-end proof.  ``tree_size`` targets the shard's
        historical root (the one its signed tree head committed to)."""
        self._check_shard(shard)
        return self._servers[shard].prove_inclusion(index, tree_size)

    def shard_prove_inclusion(
        self, shard: int, index: int, tree_size: Optional[int] = None
    ):
        """Shard-tagged ``OP_PROVE_INCLUSION`` entry point (alias of
        :meth:`prove_inclusion` under the endpoint's protocol name)."""
        return self.prove_inclusion(shard, index, tree_size)

    def shard_prove_consistency(
        self, shard: int, old_size: int, new_size: Optional[int] = None
    ):
        """RFC 6962 consistency proof between two sizes of one shard's log
        (the shard-tagged ``OP_PROVE_CONSISTENCY`` entry point)."""
        self._check_shard(shard)
        return self._servers[shard].prove_consistency(old_size, new_size)

    # -- signed tree heads ---------------------------------------------------

    def attach_signer(self, signer: PrivateKey, log_id: Optional[str] = None) -> None:
        """Give the shard set an identity keypair for signed tree heads."""
        self._signer = signer
        self.log_id = log_id or f"log-{signer.public_key.fingerprint()}"

    @property
    def signer_public_key(self) -> Optional[PublicKey]:
        return self._signer.public_key if self._signer else None

    def _require_signer(self) -> PrivateKey:
        if self._signer is None:
            raise LoggingError(
                "sharded log server has no signer attached; cannot issue "
                "a signed tree head"
            )
        return self._signer

    def shard_signed_tree_head(self, shard: int, timestamp: Optional[float] = None):
        """One shard's signed head (scope = shard index + 1): the same
        logger identity signs every shard, so forked views of *any* shard
        convict the whole logger."""
        from repro.gossip.sth import issue_sth

        signer = self._require_signer()
        self._check_shard(shard)
        commitment = self._servers[shard].commitment()
        return issue_sth(
            signer,
            self.log_id,
            entries=commitment.entries,
            chain_head=commitment.chain_head,
            merkle_root=commitment.merkle_root,
            scope=shard + 1,
            timestamp=timestamp,
        )

    def signed_tree_head(self, timestamp: Optional[float] = None):
        """The signed *set* head: the shard-set root (which pins every
        shard's entry count, chain head, and Merkle root) in both hash
        slots, under the logger identity's signature."""
        from repro.gossip.sth import issue_sth

        signer = self._require_signer()
        commitment = self.commitment()
        return issue_sth(
            signer,
            self.log_id,
            entries=commitment.entries,
            chain_head=commitment.root,
            merkle_root=commitment.root,
            timestamp=timestamp,
        )

    def checkpoint(self) -> None:
        for server in self._servers:
            server.checkpoint()

    def close(self) -> None:
        for server in self._servers:
            server.close()
