"""Parallel audit of a sharded log, with per-shard localization.

Topic routing keeps both log entries of every transmission in the same
shard (the publisher's OUT and the subscriber's IN carry the same topic),
so the paper's pairwise verification (Lemmas 1-3) decomposes cleanly:
each shard is audited *independently* on its own worker, and the per-shard
verdicts are exact -- not approximations of a global audit.  The
equivalence suite asserts this: the merged verdicts equal a single-server
audit of the same workload.

Only two things span shards and run after the merge:

- per-component aggregation (a component publishes and subscribes across
  many topics, hence many shards), rebuilt from the concatenated verdicts;
- temporal-causality checks over multi-hop chains (Lemma 4): a chain
  ``x -[t1]-> y -[t2]-> z`` crosses shards when ``t1`` and ``t2`` route
  differently, so :func:`check_chain_precedence` runs over the merged
  entry list.

Tamper localization falls out of shard independence: a shard whose store
fails verification is reported *by index* (``tampered_shards``), and a
shard whose commitment disagrees with an expected
:class:`ShardSetCommitment` is named by ``mismatched_shards`` -- the
investigator re-fetches one shard, not the whole log.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.audit.auditor import Auditor, Topology
from repro.audit.causality import (
    CausalityViolation,
    ChainHop,
    check_chain_precedence,
)
from repro.audit.verdicts import AuditReport, HiddenRecord
from repro.core.log_server import LogCommitment
from repro.crypto.verifypool import VerifyPool
from repro.errors import LogIntegrityError
from repro.sharding.sharded_server import ShardedLogServer, ShardSetCommitment


@dataclass
class ShardAuditOutcome:
    """What one shard's worker concluded."""

    shard: int
    entries: int
    #: the shard's store failed tamper-evident verification
    tampered: bool = False
    #: the verification error, when ``tampered``
    error: str = ""
    #: the shard's classification (``None`` when verification failed --
    #: verdicts over tampered bytes would be meaningless)
    report: Optional[AuditReport] = None
    #: the shard's commitment at audit time
    commitment: Optional[LogCommitment] = None


@dataclass
class ShardedAuditResult:
    """A full sharded audit: merged verdicts plus per-shard localization."""

    shards: int
    outcomes: List[ShardAuditOutcome]
    #: merged classification across all untampered shards, with
    #: per-component aggregates rebuilt over the union
    report: AuditReport
    #: the set commitment taken at audit time
    commitment: ShardSetCommitment
    #: shards whose stores failed verification
    tampered_shards: List[int] = field(default_factory=list)
    #: shards whose commitment disagrees with the expected one
    mismatched_shards: List[int] = field(default_factory=list)
    #: cross-shard temporal-causality violations (Lemma 4)
    causality_violations: List[CausalityViolation] = field(default_factory=list)

    def flagged_shards(self) -> List[int]:
        """Shards implicated by tampering or commitment mismatch."""
        return sorted(set(self.tampered_shards) | set(self.mismatched_shards))

    def shard_of_hidden(self, hidden: HiddenRecord) -> int:
        """Which shard a proven-hidden entry should have lived in (the
        shard whose worker inferred it; topics never span shards, so this
        is also where the missing entry's topic routes)."""
        for outcome in self.outcomes:
            if outcome.report is not None and hidden in outcome.report.hidden:
                return outcome.shard
        raise ValueError(f"hidden record {hidden} was not produced by this audit")

    @property
    def clean(self) -> bool:
        """No tampering, no mismatch, no flagged component, no causality
        violation anywhere in the set."""
        return (
            not self.tampered_shards
            and not self.mismatched_shards
            and not self.causality_violations
            and not self.report.flagged_components()
            and not self.report.anomalies
        )


def _verify_shard_of(server: ShardedLogServer, shard: int) -> None:
    """Integrity-check one shard of either backend.

    Prefers the server's ``verify_shard`` (which checks the shard's
    *actual* store -- for the process backend, the worker's durable WAL
    via ``OP_VERIFY``); falls back to verifying a shard view directly.
    Re-fetching records and re-chaining them locally would only prove
    transit integrity, which is why verification happens here, before any
    payload is extracted for a process-pool audit.
    """
    verify_shard = getattr(server, "verify_shard", None)
    if verify_shard is not None:
        verify_shard(shard)
    else:
        server.shard(shard).verify_integrity()


def _audit_one_shard(
    server: ShardedLogServer,
    shard: int,
    topology: Optional[Topology],
    verify_pool: Optional[VerifyPool] = None,
) -> ShardAuditOutcome:
    shard_server = server.shard(shard)
    outcome = ShardAuditOutcome(shard=shard, entries=len(shard_server))
    outcome.commitment = shard_server.commitment()
    try:
        _verify_shard_of(server, shard)
    except LogIntegrityError as exc:
        outcome.tampered = True
        outcome.error = str(exc)
        return outcome
    auditor = Auditor(shard_server.keystore, topology, verify_pool=verify_pool)
    outcome.report = auditor.audit(shard_server.entries())
    return outcome


def _audit_shard_payload(
    shard: int,
    records: List[bytes],
    keys: Dict[str, bytes],
    topology: Optional[Topology],
) -> Tuple[int, AuditReport]:
    """Audit one shard's extracted payload in a child interpreter.

    Top-level (picklable) on purpose: this is the function a
    ``ProcessPoolExecutor`` ships to its spawn-context children.  It gets
    plain values (raw records + key blobs), rebuilds the shard view, and
    returns the shard's :class:`AuditReport` -- integrity verification
    already happened parent-side (:func:`_verify_shard_of`), because a
    rebuilt in-memory chain is self-consistent by construction and would
    mask store tampering.
    """
    from repro.core.log_server import LogServer

    shard_server = LogServer()
    for component_id in sorted(keys):
        shard_server.register_key(component_id, keys[component_id])
    if records:
        shard_server.submit_batch(records)
    auditor = Auditor(shard_server.keystore, topology)
    return shard, auditor.audit(shard_server.entries())


def _shard_payload_of(
    server: ShardedLogServer, shard: int
) -> Tuple[List[bytes], Dict[str, bytes]]:
    payload = getattr(server, "shard_audit_payload", None)
    if payload is not None:
        return payload(shard)
    shard_server = server.shard(shard)
    return shard_server.raw_records(), shard_server.keys_snapshot()


def _audit_with_processes(
    server: ShardedLogServer,
    topology: Optional[Topology],
    workers: int,
    count: int,
) -> List[ShardAuditOutcome]:
    """The ``executor="process"`` fan-out: verify and extract each shard
    parent-side, audit the payloads in a spawn-context process pool (the
    signature checks are the CPU cost, and child interpreters do them
    outside this process's GIL)."""
    outcomes: Dict[int, ShardAuditOutcome] = {}
    ready: List[Tuple[int, List[bytes], Dict[str, bytes]]] = []
    for shard in range(count):
        commitment = server.shard_commitment(shard)
        outcome = ShardAuditOutcome(
            shard=shard, entries=commitment.entries, commitment=commitment
        )
        outcomes[shard] = outcome
        try:
            _verify_shard_of(server, shard)
        except LogIntegrityError as exc:
            outcome.tampered = True
            outcome.error = str(exc)
            continue
        records, keys = _shard_payload_of(server, shard)
        ready.append((shard, records, keys))
    if ready:
        context = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=min(workers, len(ready)), mp_context=context
        ) as pool:
            futures = [
                pool.submit(_audit_shard_payload, shard, records, keys, topology)
                for shard, records, keys in ready
            ]
            for future in futures:
                shard, report = future.result()
                outcomes[shard].report = report
    return [outcomes[shard] for shard in range(count)]


def _merge_reports(outcomes: Sequence[ShardAuditOutcome]) -> AuditReport:
    """Concatenate shard reports (shard-major, preserving each shard's
    ingestion order) and rebuild the per-component aggregates over the
    union -- components span shards even though transmissions do not."""
    merged = AuditReport()
    for outcome in outcomes:
        if outcome.report is None:
            continue
        merged.classified.extend(outcome.report.classified)
        merged.hidden.extend(outcome.report.hidden)
        merged.anomalies.extend(outcome.report.anomalies)
    merged._account()
    return merged


def audit_sharded(
    server: ShardedLogServer,
    topology: Optional[Topology] = None,
    workers: Optional[int] = None,
    expected: Optional[ShardSetCommitment] = None,
    chains: Sequence[Sequence[ChainHop]] = (),
    executor: str = "thread",
    verify_pool: Optional[VerifyPool] = None,
) -> ShardedAuditResult:
    """Audit every shard of ``server`` across a worker pool.

    :param topology: a-priori deployment knowledge, shared by all workers
        (when omitted, each shard derives its own from its entries --
        exact, because topics never span shards).
    :param workers: pool size for the per-shard fan-out; default
        ``min(shard_count, cpu_count)``.  ``1`` audits serially (thread
        mode).
    :param expected: a previously published :class:`ShardSetCommitment`
        to compare against; disagreeing shards land in
        ``mismatched_shards``.
    :param chains: multi-hop causal chains (Lemma 4) to check over the
        *merged* entries -- the only check that crosses shard boundaries.
    :param executor: ``"thread"`` audits shards on a thread pool;
        ``"process"`` extracts each shard's payload (after verifying its
        store parent-side) and audits in a spawn-context process pool --
        same verdicts, but the signature checking escapes this process's
        GIL.  Works against both sharding backends.
    :param verify_pool: optional
        :class:`~repro.crypto.verifypool.VerifyPool` each shard auditor
        batches its signature checks onto.  Lets the (GIL-bound) thread
        executor parallelize the CPU cost without rebuilding shard state
        in children; ignored under ``executor="process"``, whose workers
        are already separate interpreters.
    """
    count = server.shard_count
    if workers is None:
        workers = min(count, os.cpu_count() or 1)
    if workers < 1:
        raise ValueError("workers must be at least 1")
    if executor not in ("thread", "process"):
        raise ValueError(
            f"unknown audit executor {executor!r}; expected 'thread' or 'process'"
        )

    if executor == "process":
        outcomes = _audit_with_processes(server, topology, workers, count)
    elif workers == 1 or count == 1:
        outcomes = [
            _audit_one_shard(server, shard, topology, verify_pool)
            for shard in range(count)
        ]
    else:
        with ThreadPoolExecutor(
            max_workers=min(workers, count), thread_name_prefix="shard-audit"
        ) as pool:
            outcomes = list(
                pool.map(
                    lambda shard: _audit_one_shard(
                        server, shard, topology, verify_pool
                    ),
                    range(count),
                )
            )

    result = ShardedAuditResult(
        shards=count,
        outcomes=outcomes,
        report=_merge_reports(outcomes),
        commitment=server.commitment(),
        tampered_shards=[o.shard for o in outcomes if o.tampered],
    )
    if expected is not None:
        result.mismatched_shards = expected.mismatched_shards(result.commitment)
    if chains:
        merged_entries = [c.entry for c in result.report.classified]
        for chain in chains:
            result.causality_violations.extend(
                check_chain_precedence(merged_entries, chain)
            )
    return result
