"""Process-parallel topic-sharded trusted logger.

:class:`~repro.sharding.sharded_server.ShardedLogServer` removes the
single submit lock but keeps every shard inside one interpreter, so one
GIL still serializes the hashing.  This module moves each shard into its
own *worker subprocess* (:mod:`repro.sharding.worker`): one ``LogServer``
+ WAL/checkpoint directory per worker, served over a unix socket through
the ordinary :class:`~repro.core.remote.LogServerEndpoint`.  The parent
routes with the same deterministic :class:`ShardRouter` and speaks the
shard-tagged wire protocol through one pinned
:class:`~repro.core.remote.RemoteLogger` per worker -- the sharded remote
protocol *is* the parent<->worker transport; no new RPC layer exists.

Layout on disk is byte-identical to the threaded backend's::

    store_dir/
        shard-000/       <- worker 0's DurableLogStore
        shard-001/
        ...
        worker-000.log   <- worker stdout/stderr (not a shard dir)
        worker-000.sock  <- unix socket (unlinked on close)

so a store written by one backend reopens under the other, and identical
inputs produce identical :class:`ShardSetCommitment` roots (asserted by
the cross-process equivalence suite).

Exactly-once submission across worker crashes
---------------------------------------------

Parent submits are *acknowledged*: every sub-batch goes out as a sync
``OP_SUBMIT(_BATCH)`` and the worker answers with its post-ingest entry
count.  The parent keeps a per-worker ``acked`` count; because each worker
has exactly one writer (this parent) feeding one FIFO connection, the
count identifies the accepted prefix of in-flight records exactly.  When
a worker dies mid-batch the supervisor respawns it on the same store
directory, the worker recovers from its own WAL, and the parent resends
``records[recovered - acked:]`` -- nothing is dropped, nothing is
double-ingested.  A recovered count *below* ``acked`` means previously
acknowledged (and, with the default ``fsync="always"``, durable) evidence
vanished: that is not a crash to retry around but tampering/data loss,
reported as :class:`LogIntegrityError`.

Worker supervision: a background probe thread health-checks each worker
(``OP_HEALTH``) and respawns dead ones; ``close()`` drains cleanly
(SIGTERM -> wait -> SIGKILL).  Each worker also watches its stdin pipe,
so workers never outlive a SIGKILLed parent.
"""

from __future__ import annotations

import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.core.entries import Direction, LogEntry
from repro.core.log_server import LogCommitment, LogServer
from repro.core.remote import FETCH_BATCH_LIMIT, RemoteLogger, RemoteUnavailable
from repro.crypto.keys import PrivateKey, PublicKey
from repro.errors import (
    DecodingError,
    LogIntegrityError,
    LoggingError,
    ProofError,
    ServerBusy,
)
from repro.middleware.transport.unix import UnixTransport, unix_sockets_supported
from repro.resilience.admission import AdmissionConfig
from repro.resilience.flow import full_jitter
from repro.sharding.router import ShardRouter
from repro.sharding.sharded_server import (
    ShardSetCommitment,
    ShardedLogServer,
    _shard_set_root,
    shard_dirname,
)
from repro.util.concurrency import StoppableThread

#: The environment variable the storage chaos hooks arm; restarts strip it
#: so an injected crash fires once, not on every respawn.
_CRASHPOINT_ENV = "ADLP_CRASHPOINT"


def _src_pythonpath() -> str:
    """Directory that must be on the worker's ``PYTHONPATH`` so
    ``python -m repro.sharding.worker`` imports this very library."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class _WorkerHandle:
    """Parent-side state for one worker subprocess.

    ``lock`` serializes everything that touches this worker's connection
    or reconciliation state: the submit path, the supervisor's probe, and
    restart.  ``acked`` is the worker's entry count as of the last
    acknowledged exchange -- the anchor of crash reconciliation.
    """

    def __init__(self, index: int, store_dir: str, socket_path: str, log_path: str):
        self.index = index
        self.store_dir = store_dir
        self.socket_path = socket_path
        self.log_path = log_path
        self.lock = threading.RLock()
        self.process: Optional[subprocess.Popen] = None
        self.client: Optional[RemoteLogger] = None
        self.log_file = None
        self.acked = 0
        self.restarts = 0
        #: Restart-storm hysteresis state (supervised restarts only): the
        #: current backoff interval, the earliest time the supervisor may
        #: respawn this worker again, and when it last restarted it.
        self.restart_backoff = 0.0
        self.next_restart_at = 0.0
        self.last_restart_at = 0.0
        #: Permanent failure (evidence loss, restart budget exhausted):
        #: every later operation on this shard re-raises it.
        self.poison: Optional[Exception] = None

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class ProcessShardedLogServer:
    """N worker subprocesses behind the :class:`ShardedLogServer` surface.

    Drop-in for the threaded backend (see
    :func:`repro.sharding.factory.make_sharded_server`): ``register_key``
    / ``submit`` / ``submit_batch`` / ``entries`` / ``commitment`` /
    ``stats`` / ``verify_integrity`` all exist with the same semantics,
    and identical input streams produce byte-identical
    :class:`ShardSetCommitment` roots.  Intentional differences:

    - every shard is durable (each worker owns a ``DurableLogStore``);
      ``fsync`` defaults to ``"always"`` so an acknowledgement implies
      crash-durability -- the property the reconcile protocol leans on;
    - ``shard(index)`` returns a locally *rebuilt* ``LogServer`` (records
      and keys fetched from the worker), not the live one -- the live one
      lives in another process;
    - observers cannot cross the process boundary, so
      ``add_observer``/``remove_observer`` raise.

    :param initial_worker_env: extra environment variables for a worker's
        *first* spawn only, keyed by shard index -- the chaos suite's hook
        for arming ``ADLP_CRASHPOINT`` in exactly one worker.  Restarts
        always use a clean environment (the crashpoint must fire once).
    """

    def __init__(
        self,
        shards: int = 4,
        store_dir: Optional[str] = None,
        fsync: "str | None" = "always",
        checkpoint_every: int = 256,
        segment_max_bytes: int = 4 * 1024 * 1024,
        probe_interval: float = 1.0,
        spawn_timeout: float = 20.0,
        restart_limit: int = 5,
        supervise: bool = True,
        rpc_timeout: float = 30.0,
        initial_worker_env: Optional[Dict[int, Dict[str, str]]] = None,
        admission: Optional[AdmissionConfig] = None,
        ingest_delay: float = 0.0,
        restart_backoff_base: float = 0.25,
        restart_backoff_max: float = 5.0,
        restart_backoff_reset: float = 10.0,
        signer: Optional[PrivateKey] = None,
        log_id: Optional[str] = None,
    ):
        if not unix_sockets_supported():  # pragma: no cover - posix-only CI
            raise LoggingError(
                "process-sharded logging needs AF_UNIX sockets; "
                "use the thread backend on this platform"
            )
        if shards < 1:
            raise ValueError("need at least one shard")
        self.router = ShardRouter(shards)
        self._owns_store = store_dir is None
        if store_dir is None:
            store_dir = tempfile.mkdtemp(prefix="adlp-shards-")
        else:
            os.makedirs(store_dir, exist_ok=True)
        # Same reopen discipline as the threaded backend: a layout written
        # with a different shard count is refused, never re-routed.
        ShardedLogServer._check_layout(store_dir, shards)
        self.store_dir = store_dir
        self._fsync = fsync or "always"
        self._checkpoint_every = checkpoint_every
        self._segment_max_bytes = segment_max_bytes
        if ingest_delay < 0:
            raise ValueError("ingest_delay must be >= 0")
        self._probe_interval = probe_interval
        self._spawn_timeout = spawn_timeout
        self._restart_limit = restart_limit
        self._rpc_timeout = rpc_timeout
        self._initial_env = dict(initial_worker_env or {})
        #: Worker-side admission control (BUSY on sync submits past the
        #: high watermark) and test-only ingest slowdown, both forwarded
        #: on each worker's command line.
        self._admission = admission
        self._ingest_delay = ingest_delay
        self._restart_backoff_base = restart_backoff_base
        self._restart_backoff_max = restart_backoff_max
        self._restart_backoff_reset = restart_backoff_reset
        #: Logger identity.  Workers hold no key material: the deployment
        #: (this parent) is the logger the outside world trusts, so the
        #: parent signs the heads it probes from its workers.
        self._signer = signer
        self.log_id = log_id or (
            f"log-{signer.public_key.fingerprint()}" if signer else "unsigned"
        )
        self._sock_dir: Optional[str] = None
        self._unroutable = 0
        self._restarts_total = 0
        self._restarts_deferred = 0
        self._resubmitted = 0
        self._busy_backoffs = 0
        self._counter_lock = threading.Lock()
        self._closed = False
        self._handles: List[_WorkerHandle] = [
            _WorkerHandle(
                index,
                os.path.join(store_dir, shard_dirname(index)),
                self._socket_path(index),
                os.path.join(store_dir, "worker-%03d.log" % index),
            )
            for index in range(shards)
        ]
        self._pool = ThreadPoolExecutor(
            max_workers=shards, thread_name_prefix="shard-proc"
        )
        try:
            for handle in self._handles:
                # The first health probe doubles as reconciliation anchor:
                # a reopened store's WAL recovery is this worker's state.
                handle.acked = self._spawn(handle, first=True).entries
        except Exception:
            self.close()
            raise
        self._supervisor: Optional[StoppableThread] = None
        if supervise:
            self._supervisor = StoppableThread(
                "shard-supervisor", target=self._supervise_loop
            )
            self._supervisor.start()

    # -- worker lifecycle --------------------------------------------------

    def _socket_path(self, index: int) -> str:
        """Socket path for worker ``index``; falls back to a short private
        directory when the store path would overflow ``sun_path`` (107
        bytes on Linux -- deep pytest tmp dirs get close)."""
        path = os.path.join(self.store_dir, "worker-%03d.sock" % index)
        if len(path.encode()) <= 96:
            return path
        if self._sock_dir is None:
            self._sock_dir = tempfile.mkdtemp(prefix="adlp-sock-")
        return os.path.join(self._sock_dir, "%03d.sock" % index)

    def _spawn(self, handle: _WorkerHandle, first: bool) -> LogCommitment:
        """Start (or restart) one worker and wait until its socket answers
        ``OP_HEALTH``; returns that first health commitment (the worker's
        post-recovery state)."""
        env = os.environ.copy()
        # A crashpoint armed for the parent's own storage tests -- or for
        # this worker's previous incarnation -- must not re-fire forever.
        env.pop(_CRASHPOINT_ENV, None)
        env["PYTHONPATH"] = _src_pythonpath() + os.pathsep + env.get("PYTHONPATH", "")
        if first:
            env.update(self._initial_env.get(handle.index, {}))
        if handle.client is not None:
            handle.client.close()
            handle.client = None
        if handle.log_file is not None:
            handle.log_file.close()
        handle.log_file = open(handle.log_path, "ab")
        argv = [
            sys.executable,
            "-m",
            "repro.sharding.worker",
            "--socket",
            handle.socket_path,
            "--store-dir",
            handle.store_dir,
            "--shard",
            str(handle.index),
            "--shards",
            str(self.shard_count),
            "--fsync",
            self._fsync,
            "--checkpoint-every",
            str(self._checkpoint_every),
            "--segment-max-bytes",
            str(self._segment_max_bytes),
        ]
        if self._admission is not None:
            argv += [
                "--admission-high",
                str(self._admission.high_watermark),
                "--admission-low",
                str(self._admission.effective_low_watermark),
                "--retry-after",
                str(self._admission.retry_after),
            ]
        if self._ingest_delay > 0:
            argv += ["--ingest-delay", str(self._ingest_delay)]
        handle.process = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=handle.log_file,
            stderr=subprocess.STDOUT,
            env=env,
        )
        handle.client = RemoteLogger(
            ("unix", handle.socket_path),
            transport=UnixTransport(),
            shard=handle.index,
            reconnect_backoff=0.01,
            max_reconnect_backoff=0.25,
        )
        deadline = time.monotonic() + self._spawn_timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            code = handle.process.poll()
            if code is not None:
                raise LoggingError(
                    f"worker for shard {handle.index} exited with status "
                    f"{code} during startup (log: {handle.log_path})"
                )
            try:
                return handle.client.health(timeout=1.0)
            except LoggingError as exc:
                last_error = exc
                time.sleep(0.02)
        self._kill(handle)
        raise LoggingError(
            f"worker for shard {handle.index} did not become ready within "
            f"{self._spawn_timeout}s: {last_error}"
        )

    def _kill(self, handle: _WorkerHandle) -> None:
        process = handle.process
        if process is None:
            return
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        if process.stdin is not None:
            try:
                process.stdin.close()
            except OSError:
                pass

    def _restart_worker(self, handle: _WorkerHandle) -> int:
        """Respawn a dead/unresponsive worker (caller holds ``handle.lock``)
        and reconcile ``acked`` against what its WAL recovered.

        Returns the recovered entry count.  Raises
        :class:`LogIntegrityError` -- and poisons the handle -- when the
        worker comes back with *fewer* entries than were acknowledged:
        acknowledged evidence is durable by contract, so a shrunken log is
        loss/tampering, not a transient fault.
        """
        if handle.poison is not None:
            raise handle.poison
        if handle.restarts >= self._restart_limit:
            handle.poison = LoggingError(
                f"shard {handle.index} worker exceeded its restart budget "
                f"({self._restart_limit}); refusing further restarts "
                f"(log: {handle.log_path})"
            )
            raise handle.poison
        handle.restarts += 1
        handle.last_restart_at = time.monotonic()
        with self._counter_lock:
            self._restarts_total += 1
        self._kill(handle)
        try:
            commitment = self._spawn(handle, first=False)
        except LoggingError as exc:
            # Leave the handle restartable (budget permitting): a spawn
            # that raced a dying predecessor's socket may succeed next try.
            raise RemoteUnavailable(
                f"shard {handle.index} worker failed to restart: {exc}"
            ) from exc
        recovered = commitment.entries
        if recovered < handle.acked:
            handle.poison = LogIntegrityError(
                f"shard {handle.index} recovered only {recovered} entries "
                f"but {handle.acked} were acknowledged as durable -- "
                f"acknowledged evidence vanished across the restart"
            )
            raise handle.poison
        handle.acked = recovered
        return recovered

    def _supervise_loop(self) -> None:
        supervisor = self._supervisor
        assert supervisor is not None
        while not supervisor.stop_event.wait(self._probe_interval):
            for handle in self._handles:
                if supervisor.stopped():
                    return
                # Never contend with a submit in flight: the submit path
                # handles its own worker's failures (and holds the batch
                # being reconciled, which the supervisor must not race).
                if not handle.lock.acquire(blocking=False):
                    continue
                try:
                    if handle.poison is not None:
                        continue
                    healthy = handle.alive()
                    if healthy and handle.client is not None:
                        try:
                            handle.client.health(timeout=2.0)
                        except LoggingError:
                            healthy = False
                    now = time.monotonic()
                    if healthy:
                        # A worker that stayed healthy long enough after
                        # its last restart earns its hysteresis back.
                        if (
                            handle.restart_backoff
                            and now - handle.last_restart_at
                            >= self._restart_backoff_reset
                        ):
                            handle.restart_backoff = 0.0
                            handle.next_restart_at = 0.0
                        continue
                    # Restart-storm hysteresis: a crash-looping shard is
                    # respawned on an exponentially growing schedule
                    # instead of burning its whole restart budget in one
                    # probe-interval burst.  (Submit-path restarts stay
                    # immediate -- a caller is waiting on that worker.)
                    if now < handle.next_restart_at:
                        with self._counter_lock:
                            self._restarts_deferred += 1
                        continue
                    try:
                        self._restart_worker(handle)
                    except Exception:
                        # poison (or restart budget) is recorded on the
                        # handle; the next caller touching this shard
                        # gets the real error.
                        pass
                    handle.restart_backoff = min(
                        self._restart_backoff_base
                        if handle.restart_backoff <= 0
                        else handle.restart_backoff * 2,
                        self._restart_backoff_max,
                    )
                    handle.next_restart_at = (
                        time.monotonic() + handle.restart_backoff
                    )
                finally:
                    handle.lock.release()

    # -- shard access ------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return self.router.shards

    def shard_of(self, topic: str) -> int:
        return self.router.shard_of(topic)

    def worker_log_path(self, shard: int) -> str:
        """Path of one worker's captured stdout/stderr (chaos-run
        forensics; CI uploads these on soak failures)."""
        return self._handles[shard].log_path

    def worker_socket_path(self, shard: int) -> str:
        """The unix socket one worker serves on (stable across restarts).
        The resilience matrix's overload cells attach their flood and
        sync clients here directly."""
        return self._handles[shard].socket_path

    def worker_pid(self, shard: int) -> Optional[int]:
        """The live worker's PID (the chaos suite SIGKILLs through this);
        ``None`` once the process has exited."""
        handle = self._handles[shard]
        return handle.process.pid if handle.alive() else None

    def shard(self, index: int) -> LogServer:
        """A locally rebuilt :class:`LogServer` holding shard ``index``'s
        records and keys -- same observable state as the worker's live
        server (the audit path's per-shard view)."""
        records, keys = self.shard_audit_payload(index)
        server = LogServer()
        for component_id in sorted(keys):
            server.register_key(component_id, keys[component_id])
        if records:
            server.submit_batch(records)
        return server

    # -- worker RPC plumbing -----------------------------------------------

    def _worker_call(
        self,
        shard: int,
        fn: Callable[[RemoteLogger], Any],
        restart: bool = True,
    ) -> Any:
        """Run one RPC against a worker under its lock, restarting it once
        on transport failure (:class:`RemoteUnavailable`); server-side
        rejections propagate untouched.

        Observability probes pass ``restart=False``: a stats read must
        never burn restart budget or bypass the supervisor's restart
        hysteresis -- monitoring a crash-looping worker would otherwise
        mask the very crash loop being monitored.
        """
        handle = self._handles[shard]
        with handle.lock:
            if handle.poison is not None:
                raise handle.poison
            try:
                return fn(handle.client)
            except RemoteUnavailable:
                if not restart:
                    raise
                self._restart_worker(handle)
                return fn(handle.client)

    def _fan_out_workers(self, fn: Callable[[RemoteLogger], Any]) -> List[Any]:
        """Run ``fn`` against every worker concurrently on the shared
        pool; returns results in shard order, raising the first failure
        (by shard index) after every shard has finished.  Single-shard
        servers stay inline -- no pool hop for the common test setup."""
        if self.shard_count == 1:
            return [self._worker_call(0, fn)]
        futures = [
            self._pool.submit(self._worker_call, index, fn)
            for index in range(self.shard_count)
        ]
        results: List[Any] = []
        failure: Optional[Exception] = None
        for future in futures:
            try:
                results.append(future.result())
            except Exception as exc:
                if failure is None:
                    failure = exc
        if failure is not None:
            raise failure
        return results

    # -- component-facing API ---------------------------------------------

    def register_key(self, component_id: str, key: Union[PublicKey, bytes]) -> None:
        """Register a component's key on *every* worker (each shard must
        be independently auditable).  Workers journal registrations in
        their WALs, so restarts need no re-registration.

        The fan-out runs concurrently across workers (each call still
        serializes on its handle lock); with the pipelined wire protocol
        a registration round costs one RPC round-trip, not shard_count.
        """
        if isinstance(key, PublicKey):
            key = key.to_bytes()
        self._fan_out_workers(
            lambda client: client.register_key(component_id, key)
        )

    def _route(self, entry: Union[LogEntry, bytes]) -> Tuple[int, bytes]:
        """Pick the shard and the exact wire bytes for one entry; raises
        ``LoggingError`` (counting the rejection) on undecodable bytes --
        same semantics as the threaded backend's ``_route``."""
        if isinstance(entry, LogEntry):
            return self.router.shard_of(entry.topic), entry.encode()
        record = bytes(entry)
        try:
            topic = LogEntry.decode(record).topic
        except DecodingError as exc:
            with self._counter_lock:
                self._unroutable += 1
            raise LoggingError(f"undecodable log entry: {exc}") from exc
        return self.router.shard_of(topic), record

    def _submit_shard(self, shard: int, records: List[bytes]) -> int:
        """Acknowledged submission of one shard's sub-batch; returns the
        first record's index within the shard.

        Runs the crash-reconcile loop: on transport failure the worker is
        restarted, its recovered count tells us which prefix of
        ``records`` already landed (FIFO connection, single writer), and
        only the suffix is resent.  The final count must equal
        ``base + len(records)`` exactly -- anything else is an integrity
        failure, not a retry case.
        """
        handle = self._handles[shard]
        with handle.lock:
            if handle.poison is not None:
                raise handle.poison
            base = handle.acked
            remaining = records
            attempts = 0
            busy_waited = 0.0
            while True:
                try:
                    count = handle.client.submit_batch_sync(
                        remaining, timeout=self._rpc_timeout
                    )
                except ServerBusy as exc:
                    # Cooperative backpressure, not a crash: BUSY refuses
                    # a sync frame *before* ingesting it, so wait the
                    # hinted time (jittered) and resend -- bounded so a
                    # permanently wedged worker still surfaces.  A multi-
                    # frame batch may have landed a prefix of frames
                    # before the refused one; the worker's count (single
                    # writer, FIFO connection) identifies that prefix
                    # exactly, so only the suffix is resent.
                    if busy_waited >= 2 * self._rpc_timeout:
                        raise LoggingError(
                            f"shard {shard} stayed busy for "
                            f"{busy_waited:.1f}s; giving up on this batch: "
                            f"{exc}"
                        ) from exc
                    pause = max(exc.retry_after, 0.01)
                    pause += full_jitter(pause)
                    busy_waited += pause
                    with self._counter_lock:
                        self._busy_backoffs += 1
                    time.sleep(pause)
                    try:
                        landed = (
                            handle.client.health(
                                timeout=self._rpc_timeout
                            ).entries
                            - base
                        )
                    except LoggingError:
                        # Health probe trouble: fall through to the next
                        # submit attempt, whose own failure takes the
                        # crash-reconcile path.
                        continue
                    if landed > len(records):
                        raise LogIntegrityError(
                            f"shard {shard} holds {base + landed} entries, "
                            f"more than the {base + len(records)} ever "
                            f"submitted -- phantom evidence appeared"
                        )
                    if landed < len(records) - len(remaining):
                        handle.poison = LogIntegrityError(
                            f"shard {shard} lost acknowledged entries "
                            f"while busy ({base + landed} remain)"
                        )
                        raise handle.poison
                    remaining = records[landed:]
                    if not remaining:
                        count = base + len(records)
                        break
                    continue
                except RemoteUnavailable as exc:
                    attempts += 1
                    if attempts > self._restart_limit:
                        raise LoggingError(
                            f"shard {shard} worker kept failing mid-batch "
                            f"({attempts} attempts): {exc}"
                        ) from exc
                    recovered = self._restart_worker(handle)
                    landed = recovered - base
                    if landed > len(records):
                        raise LogIntegrityError(
                            f"shard {shard} recovered {recovered} entries, "
                            f"more than the {base + len(records)} ever "
                            f"submitted -- phantom evidence appeared"
                        )
                    if landed < len(records) - len(remaining):
                        # recovery rolled back past what an earlier round
                        # trip acknowledged -- same loss class as acked
                        handle.poison = LogIntegrityError(
                            f"shard {shard} lost acknowledged entries "
                            f"across a restart ({recovered} recovered)"
                        )
                        raise handle.poison
                    resend = records[landed:]
                    # every record of the interrupted attempt was settled
                    # by reconciliation -- either proven landed by the
                    # recovered count or resent below
                    with self._counter_lock:
                        self._resubmitted += len(remaining)
                    remaining = resend
                    if not remaining:
                        count = recovered
                        break
                    continue
                except LoggingError as exc:
                    # The worker answered and refused: nothing of
                    # ``remaining`` was ingested (sync ingest is
                    # all-or-nothing); propagate like the threaded backend.
                    raise LoggingError(
                        f"shard {shard} rejected its sub-batch: {exc}"
                    ) from exc
                break
            if count != base + len(records):
                handle.poison = LogIntegrityError(
                    f"shard {shard} acknowledged {count} entries where "
                    f"{base + len(records)} were expected -- submission "
                    f"accounting diverged"
                )
                raise handle.poison
            handle.acked = count
            return base

    def submit(self, entry: Union[LogEntry, bytes]) -> int:
        """Ingest one entry into its topic's shard (acknowledged: when
        this returns, the worker has journaled it); returns the entry's
        index within that shard."""
        shard, record = self._route(entry)
        return self._submit_shard(shard, [record])

    def submit_batch(self, entries: List[Union[LogEntry, bytes]]) -> List[int]:
        """Group-commit a batch, split by shard, sub-batches submitted to
        their workers concurrently.

        Routing happens first (an undecodable entry rejects the whole
        batch before anything is sent).  All-or-nothing holds per shard
        exactly like the threaded backend; across shards, sub-batches
        committed to healthy workers stay even if another shard fails.
        """
        if not entries:
            return []
        routed = [self._route(entry) for entry in entries]
        by_shard: Dict[int, List[int]] = {}
        for position, (shard, _) in enumerate(routed):
            by_shard.setdefault(shard, []).append(position)
        futures = {
            shard: self._pool.submit(
                self._submit_shard, shard, [routed[p][1] for p in positions]
            )
            for shard, positions in by_shard.items()
        }
        indices: List[int] = [0] * len(entries)
        failure: Optional[Exception] = None
        for shard in sorted(futures):
            try:
                start = futures[shard].result()
            except Exception as exc:
                if failure is None:
                    failure = exc
                continue
            for offset, position in enumerate(by_shard[shard]):
                indices[position] = start + offset
        if failure is not None:
            raise failure
        return indices

    # -- auditor/query API -------------------------------------------------

    def _fetch_all_records(self, shard: int) -> List[bytes]:
        def fetch(client: RemoteLogger) -> List[bytes]:
            total = client.health(timeout=self._rpc_timeout).entries
            records: List[bytes] = []
            while len(records) < total:
                page = client.fetch_records(
                    len(records), FETCH_BATCH_LIMIT, timeout=self._rpc_timeout
                )
                if not page:
                    raise LoggingError(
                        f"shard {shard} fetch stalled at {len(records)} of "
                        f"{total} records"
                    )
                records.extend(page)
            return records

        return self._worker_call(shard, fetch)

    def shard_audit_payload(self, shard: int) -> Tuple[List[bytes], Dict[str, bytes]]:
        """Everything the pairwise audit needs from one shard -- its raw
        records (fetched in ``FETCH_BATCH_LIMIT`` pages) and the key
        registry -- as plain picklable values for a process-pool auditor."""
        records = self._fetch_all_records(shard)
        keys = self._worker_call(shard, lambda client: client.fetch_keys())
        return records, keys

    def entries(
        self,
        component_id: Optional[str] = None,
        topic: Optional[str] = None,
        direction: Optional[Direction] = None,
        seq: Optional[int] = None,
        shard: Optional[int] = None,
    ) -> List[LogEntry]:
        """Entries matching every filter, shard-major in ingestion order
        (same filter semantics as the threaded backend; a ``topic`` filter
        touches only that topic's shard)."""
        if shard is not None:
            shards = [shard]
        elif topic is not None:
            shards = [self.router.shard_of(topic)]
        else:
            shards = list(range(self.shard_count))
        result: List[LogEntry] = []
        for index in shards:
            for record in self._fetch_all_records(index):
                entry = LogEntry.decode(record)
                if component_id is not None and entry.component_id != component_id:
                    continue
                if topic is not None and entry.topic != topic:
                    continue
                if direction is not None and entry.direction is not direction:
                    continue
                if seq is not None and entry.seq != seq:
                    continue
                result.append(entry)
        return result

    def __len__(self) -> int:
        return sum(handle.acked for handle in self._handles)

    @property
    def total_bytes(self) -> int:
        return sum(
            self.shard_commitment(index).total_bytes
            for index in range(self.shard_count)
        )

    def shard_raw_records(
        self, shard: int, start: int = 0, count: Optional[int] = None
    ) -> List[bytes]:
        records: List[bytes] = []
        remaining = count
        cursor = start
        while remaining is None or remaining > 0:
            page_size = FETCH_BATCH_LIMIT
            if remaining is not None:
                page_size = min(page_size, remaining)
            page = self._worker_call(
                shard,
                lambda client, c=cursor, n=page_size: client.fetch_records(
                    c, n, timeout=self._rpc_timeout
                ),
            )
            records.extend(page)
            if len(page) < page_size or not page:
                break
            cursor += len(page)
            if remaining is not None:
                remaining -= len(page)
        return records

    def components(self) -> List[str]:
        return sorted(self.keys_snapshot())

    def keys_snapshot(self) -> Dict[str, bytes]:
        return self._worker_call(0, lambda client: client.fetch_keys())

    def public_key(self, component_id: str) -> PublicKey:
        try:
            blob = self.keys_snapshot()[component_id]
        except KeyError:
            raise LoggingError(f"no key registered for {component_id!r}") from None
        return PublicKey.from_bytes(blob)

    def add_observer(self, callback) -> None:
        raise LoggingError(
            "log observers cannot cross the worker process boundary; "
            "attach them to an in-process backend instead"
        )

    def remove_observer(self, callback) -> None:
        raise LoggingError(
            "log observers cannot cross the worker process boundary"
        )

    @property
    def rejected_submissions(self) -> int:
        """Undecodable submissions refused across the set (parent-side
        routing rejections plus, best-effort, each live worker's own
        counter)."""
        total = self._unroutable
        for index in range(self.shard_count):
            try:
                stats = self._worker_call(
                    index,
                    lambda client: client.server_stats(timeout=5.0),
                    restart=False,
                )
            except LoggingError:
                continue
            total += int(stats.get("rejected_submissions", 0))
        return total

    # -- stats -------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Flat integer counters (same keys as the threaded backend, plus
        the process-supervision counters).

        A pure observability read: dead workers contribute zero bytes
        instead of being respawned mid-probe (respawning is the
        supervisor's job, subject to its restart hysteresis)."""
        nbytes = 0
        for index in range(self.shard_count):
            try:
                nbytes += self.shard_commitment(index, restart=False).total_bytes
            except LoggingError:
                continue
        return {
            "shard_count": self.shard_count,
            "sharded_entries": len(self),
            "sharded_bytes": nbytes,
            "sharded_rejected": self.rejected_submissions,
            "worker_restarts": self._restarts_total,
            "restarts_deferred": self._restarts_deferred,
            "resubmitted_after_crash": self._resubmitted,
            "busy_backoffs": self._busy_backoffs,
        }

    def shard_stats(self) -> List[Dict[str, Any]]:
        """Per-shard detail, merging each worker's ``OP_STATS`` counters
        (entry/byte/rejection totals plus its recovery summary) with the
        parent's supervision state."""
        result: List[Dict[str, Any]] = []
        for handle in self._handles:
            row: Dict[str, Any] = {
                "shard": handle.index,
                "entries": handle.acked,
                "restarts": handle.restarts,
                "alive": handle.alive(),
            }
            try:
                row.update(
                    self._worker_call(
                        handle.index,
                        lambda client: client.server_stats(timeout=5.0),
                        restart=False,
                    )
                )
            except LoggingError as exc:
                row["stats_error"] = str(exc)
            result.append(row)
        return result

    # -- integrity ---------------------------------------------------------

    def verify_shard(self, shard: int) -> None:
        """Tamper-evidence check of one worker's *actual* store (WAL bytes
        included), via ``OP_VERIFY``; raises :class:`LogIntegrityError`
        naming the shard."""
        try:
            self._worker_call(
                shard, lambda client: client.verify_remote(timeout=self._rpc_timeout)
            )
        except RemoteUnavailable:
            raise
        except LogIntegrityError as exc:
            raise LogIntegrityError(f"shard {shard}: {exc}") from exc
        except LoggingError as exc:
            raise LogIntegrityError(f"shard {shard}: {exc}") from exc

    def verify_integrity(self) -> None:
        """Check every worker's store; raises naming the first failing
        shard -- same contract as the threaded backend."""
        for index in range(self.shard_count):
            self.verify_shard(index)

    def shard_commitment(self, shard: int, restart: bool = True) -> LogCommitment:
        return self._worker_call(
            shard,
            lambda client: client.health(timeout=self._rpc_timeout),
            restart=restart,
        )

    def commitment(self) -> ShardSetCommitment:
        """The set commitment over all workers (probed concurrently).

        Like the threaded backend, the set is a consistent point-in-time
        snapshot only when no submits are in flight -- which is when
        commitments are taken (epoch close, audit).
        """
        futures = [
            self._pool.submit(self.shard_commitment, index)
            for index in range(self.shard_count)
        ]
        commitments = tuple(future.result() for future in futures)
        return ShardSetCommitment(
            shards=self.shard_count,
            entries=sum(c.entries for c in commitments),
            total_bytes=sum(c.total_bytes for c in commitments),
            root=_shard_set_root(commitments),
            shard_commitments=commitments,
        )

    def merkle_root(self) -> bytes:
        return self.commitment().root

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.shard_count:
            raise ProofError(
                f"shard {shard} out of range for a {self.shard_count}-shard set"
            )

    def prove_inclusion(self, shard: int, index: int, tree_size: Optional[int] = None):
        """Inclusion proof for entry ``index`` of shard ``shard``, built by
        the worker that owns the shard's live Merkle tree (its pinned
        client shard-tags the ``OP_PROVE_INCLUSION`` frame, so the worker
        re-verifies the target before proving).  An out-of-range request
        comes back as a typed :class:`~repro.errors.ProofError`, never a
        worker traceback."""
        self._check_shard(shard)
        return self._worker_call(
            shard,
            lambda client: client.prove_inclusion(
                index, tree_size, timeout=self._rpc_timeout
            ),
        )

    def prove_consistency(
        self, shard: int, old_size: int, new_size: Optional[int] = None
    ):
        """RFC 6962 consistency proof between two sizes of one worker's
        shard log (forwarded like :meth:`prove_inclusion`)."""
        self._check_shard(shard)
        return self._worker_call(
            shard,
            lambda client: client.prove_consistency(
                old_size, new_size, timeout=self._rpc_timeout
            ),
        )

    # Endpoint protocol aliases, so a ProcessShardedLogServer behind a
    # LogServerEndpoint serves shard-tagged proof frames like the threaded
    # backend does.
    def shard_prove_inclusion(
        self, shard: int, index: int, tree_size: Optional[int] = None
    ):
        return self.prove_inclusion(shard, index, tree_size)

    def shard_prove_consistency(
        self, shard: int, old_size: int, new_size: Optional[int] = None
    ):
        return self.prove_consistency(shard, old_size, new_size)

    # -- signed tree heads ---------------------------------------------------

    def attach_signer(self, signer: PrivateKey, log_id: Optional[str] = None) -> None:
        """Give the deployment an identity keypair for signed tree heads."""
        self._signer = signer
        self.log_id = log_id or f"log-{signer.public_key.fingerprint()}"

    @property
    def signer_public_key(self) -> Optional[PublicKey]:
        return self._signer.public_key if self._signer else None

    def _require_signer(self) -> PrivateKey:
        if self._signer is None:
            raise LoggingError(
                "process-sharded log server has no signer attached; cannot "
                "issue a signed tree head"
            )
        return self._signer

    def shard_signed_tree_head(self, shard: int, timestamp: Optional[float] = None):
        """One worker shard's signed head (scope = shard index + 1).  The
        parent signs the commitment it probes from the worker: the worker
        holds no key material, so a compromised worker can corrupt its own
        chain (caught by divergence/audit) but cannot mint heads."""
        from repro.gossip.sth import issue_sth

        signer = self._require_signer()
        self._check_shard(shard)
        commitment = self.shard_commitment(shard)
        return issue_sth(
            signer,
            self.log_id,
            entries=commitment.entries,
            chain_head=commitment.chain_head,
            merkle_root=commitment.merkle_root,
            scope=shard + 1,
            timestamp=timestamp,
        )

    def signed_tree_head(self, timestamp: Optional[float] = None):
        """The signed set head over all workers (set root in both hash
        slots, like the threaded backend)."""
        from repro.gossip.sth import issue_sth

        signer = self._require_signer()
        commitment = self.commitment()
        return issue_sth(
            signer,
            self.log_id,
            entries=commitment.entries,
            chain_head=commitment.root,
            merkle_root=commitment.root,
            timestamp=timestamp,
        )

    def checkpoint(self) -> None:
        """Fan a durable-checkpoint request out to every worker
        concurrently (checkpoints are independent per shard)."""
        self._fan_out_workers(
            lambda client: client.checkpoint(timeout=self._rpc_timeout)
        )

    # -- shutdown ----------------------------------------------------------

    def close(self) -> None:
        """Drain and stop every worker: SIGTERM (clean close: endpoint
        drained, WAL sealed), bounded wait, SIGKILL stragglers.  Removes
        the store directory only when this server created it."""
        if self._closed:
            return
        self._closed = True
        supervisor = getattr(self, "_supervisor", None)
        if supervisor is not None:
            supervisor.stop()
        for handle in self._handles:
            with handle.lock:
                if handle.client is not None:
                    handle.client.close()
                    handle.client = None
                self._kill(handle)
                if handle.log_file is not None:
                    handle.log_file.close()
                    handle.log_file = None
                try:
                    os.unlink(handle.socket_path)
                except OSError:
                    pass
        self._pool.shutdown(wait=True)
        if self._sock_dir is not None:
            shutil.rmtree(self._sock_dir, ignore_errors=True)
        if self._owns_store:
            shutil.rmtree(self.store_dir, ignore_errors=True)

    def __enter__(self) -> "ProcessShardedLogServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
