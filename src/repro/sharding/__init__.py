"""Topic-sharded trusted logger with parallel audit.

Partitions the log by topic across N independent shards -- each with its
own lock, hash chain, Merkle frontier, and (when durable) WAL + checkpoint
directory -- so submits to different shards no longer contend, while a
single :class:`ShardSetCommitment` (Merkle root over the ordered shard
roots) still pins the entire log.  Two interchangeable backends exist
behind :func:`make_sharded_server`: shards as threads in this interpreter
(:class:`ShardedLogServer`) or shards as supervised worker subprocesses
(:class:`ProcessShardedLogServer`), commitment-equivalent by construction.
``audit_sharded`` fans per-shard audits across a thread or process pool
and localizes tampering to the shard it lives in.
"""

from repro.sharding.factory import BACKENDS, make_sharded_server
from repro.sharding.parallel_audit import (
    ShardAuditOutcome,
    ShardedAuditResult,
    audit_sharded,
)
from repro.sharding.process_server import ProcessShardedLogServer
from repro.sharding.router import ShardRouter
from repro.sharding.sharded_server import (
    ShardedLogServer,
    ShardSetCommitment,
    shard_dirname,
)
from repro.sharding.worker import ShardWorkerServer

__all__ = [
    "BACKENDS",
    "ProcessShardedLogServer",
    "ShardAuditOutcome",
    "ShardRouter",
    "ShardSetCommitment",
    "ShardWorkerServer",
    "ShardedAuditResult",
    "ShardedLogServer",
    "audit_sharded",
    "make_sharded_server",
    "shard_dirname",
]
