"""Topic-sharded trusted logger with parallel audit.

Partitions the log by topic across N independent shards -- each with its
own lock, hash chain, Merkle frontier, and (when durable) WAL + checkpoint
directory -- so submits to different shards no longer contend, while a
single :class:`ShardSetCommitment` (Merkle root over the ordered shard
roots) still pins the entire log.  ``audit_sharded`` fans per-shard audits
across a worker pool and localizes tampering to the shard it lives in.
"""

from repro.sharding.parallel_audit import (
    ShardAuditOutcome,
    ShardedAuditResult,
    audit_sharded,
)
from repro.sharding.router import ShardRouter
from repro.sharding.sharded_server import (
    ShardedLogServer,
    ShardSetCommitment,
    shard_dirname,
)

__all__ = [
    "ShardAuditOutcome",
    "ShardRouter",
    "ShardSetCommitment",
    "ShardedAuditResult",
    "ShardedLogServer",
    "audit_sharded",
    "shard_dirname",
]
