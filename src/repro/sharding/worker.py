"""One shard's worker subprocess.

``python -m repro.sharding.worker`` hosts a single
:class:`~repro.core.log_server.LogServer` backed by its own
:class:`~repro.storage.durable_store.DurableLogStore` and serves it over a
unix socket through the ordinary
:class:`~repro.core.remote.LogServerEndpoint` -- the shard-tagged wire
protocol from the sharded remote work *is* the parent<->worker transport,
so the worker side adds no new RPC machinery, only an adapter
(:class:`ShardWorkerServer`) that pins the endpoint's shard-tag dispatch
to this worker's assigned shard.

Lifecycle contract with the parent
(:class:`~repro.sharding.process_server.ProcessShardedLogServer`):

- the parent chooses the socket path and store directory *before*
  spawning, so there is no address hand-back step; readiness is "the
  socket accepts connections and answers ``OP_HEALTH``";
- the worker exits on ``SIGTERM`` (clean close: endpoint drained, WAL
  sealed) and also when its stdin reaches EOF -- the parent holds the
  write end of that pipe, so even a SIGKILLed parent reaps its workers;
- on startup the worker recovers from whatever its WAL holds (that is the
  whole restart-with-recovery story: the supervisor just respawns this
  module on the same directory).

Crash injection: the worker imports :mod:`repro.storage.crashpoints`,
whose ``ADLP_CRASHPOINT`` environment arming applies here exactly as in
the single-logger SIGKILL tests -- the parent's chaos suite arms a point
in one worker's first-spawn environment and the supervisor's restart (with
a clean environment) must recover it.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import Dict, List, Optional, Union

from repro.core.entries import LogEntry
from repro.core.log_server import LogCommitment, LogServer
from repro.core.remote import LogServerEndpoint
from repro.errors import LoggingError
from repro.middleware.transport.unix import UnixTransport
from repro.resilience.admission import AdmissionConfig, AdmissionController
from repro.resilience.overload import OverloadInjector
from repro.sharding.router import ShardRouter
from repro.storage.durable_store import DurableLogStore


class ShardWorkerServer(LogServer):
    """A :class:`LogServer` that knows which shard of which set it is.

    The endpoint dispatches shard-tagged frames through the duck-typed
    ``submit_to_shard`` / ``shard_commitment`` / ``shard_raw_records``
    surface; this adapter implements that surface for exactly one shard
    index, re-verifying with the *full* router (all ``total_shards``
    buckets) that every entry's topic actually routes here -- a parent
    with a stale shard count, or a frame misdelivered to the wrong
    worker's socket, must be refused, never silently ingested into the
    wrong chain.
    """

    def __init__(self, store, shard_index: int, total_shards: int):
        super().__init__(store)
        if not 0 <= shard_index < total_shards:
            raise ValueError(
                f"shard index {shard_index} out of range for "
                f"{total_shards} shards"
            )
        self.shard_index = shard_index
        self.router = ShardRouter(total_shards)

    # -- shard-tag verification -------------------------------------------

    def _check_tag(self, shard: int) -> None:
        if shard != self.shard_index:
            raise LoggingError(
                f"frame targets shard {shard} but this worker hosts "
                f"shard {self.shard_index}"
            )

    def _check_route(self, entry: Union[LogEntry, bytes]) -> None:
        if isinstance(entry, LogEntry):
            topic = entry.topic
        else:
            # Undecodable bytes are LogServer.submit's rejection to make;
            # here we only refuse *routable* entries that belong elsewhere.
            try:
                topic = LogEntry.decode(bytes(entry)).topic
            except Exception:
                return
        expected = self.router.shard_of(topic)
        if expected != self.shard_index:
            raise LoggingError(
                f"topic {topic!r} routes to shard {expected} of "
                f"{self.router.shards}, not this worker's shard "
                f"{self.shard_index}"
            )

    # -- the endpoint's shard-aware dispatch surface ----------------------

    def submit_to_shard(self, shard: int, entry: Union[LogEntry, bytes]) -> int:
        self._check_tag(shard)
        self._check_route(entry)
        return self.submit(entry)

    def submit_batch_to_shard(
        self, shard: int, entries: List[Union[LogEntry, bytes]]
    ) -> List[int]:
        self._check_tag(shard)
        for entry in entries:
            self._check_route(entry)
        return self.submit_batch(entries)

    def shard_commitment(self, shard: int) -> LogCommitment:
        self._check_tag(shard)
        return self.commitment()

    def shard_raw_records(
        self, shard: int, start: int = 0, count: Optional[int] = None
    ) -> List[bytes]:
        self._check_tag(shard)
        return self.raw_records(start, count)

    def shard_prove_inclusion(
        self, shard: int, index: int, tree_size: Optional[int] = None
    ):
        """Shard-tagged ``OP_PROVE_INCLUSION``: this worker proves against
        its own live Merkle tree (no key material here -- the parent signs
        the heads these proofs verify under)."""
        self._check_tag(shard)
        return self.prove_inclusion(index, tree_size)

    def shard_prove_consistency(
        self, shard: int, old_size: int, new_size: Optional[int] = None
    ):
        self._check_tag(shard)
        return self.prove_consistency(old_size, new_size)

    # -- observability ----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Worker counters, including what recovery found at startup --
        the parent's ``OP_STATS`` probe merges these into its own."""
        data: Dict[str, int] = {
            "shard": self.shard_index,
            "shards": self.router.shards,
            "entries": len(self),
            "total_bytes": self.total_bytes,
            "rejected_submissions": self.rejected_submissions,
        }
        recovery = getattr(self.store, "recovery", None)
        if recovery is not None:
            data.update(recovery.summary())
        return data


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sharding.worker",
        description="Serve one shard of a process-sharded trusted logger.",
    )
    parser.add_argument("--socket", required=True, help="unix socket path")
    parser.add_argument("--store-dir", required=True, help="this shard's store")
    parser.add_argument("--shard", type=int, required=True)
    parser.add_argument("--shards", type=int, required=True)
    parser.add_argument("--fsync", default="always")
    parser.add_argument("--checkpoint-every", type=int, default=256)
    parser.add_argument(
        "--segment-max-bytes", type=int, default=4 * 1024 * 1024
    )
    # Overload protection / injection (0 = disabled, the default --
    # parents predating these flags spawn workers with classic behavior).
    parser.add_argument(
        "--admission-high",
        type=int,
        default=0,
        help="admission-control high watermark (entries in flight); "
        "0 disables admission control",
    )
    parser.add_argument(
        "--admission-low",
        type=int,
        default=0,
        help="low watermark where the busy latch clears "
        "(default: half the high watermark)",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=0.05,
        help="base retry-after hint returned with BUSY verdicts, seconds",
    )
    parser.add_argument(
        "--ingest-delay",
        type=float,
        default=0.0,
        help="test-only per-entry ingest slowdown, seconds "
        "(drives this worker into its admission regime deterministically)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    store = DurableLogStore(
        args.store_dir,
        fsync=args.fsync,
        segment_max_bytes=args.segment_max_bytes,
        checkpoint_every=args.checkpoint_every,
    )
    server = ShardWorkerServer(store, args.shard, args.shards)
    ingest = server
    if args.ingest_delay > 0:
        # Overload injection: the endpoint talks to a throttled proxy so
        # tests can saturate this worker without a hot host.
        ingest = OverloadInjector(server, delay=args.ingest_delay)
    admission = None
    if args.admission_high > 0:
        admission = AdmissionController(
            AdmissionConfig(
                high_watermark=args.admission_high,
                low_watermark=args.admission_low or None,
                retry_after=args.retry_after,
            )
        )
    endpoint = LogServerEndpoint(
        ingest,
        transport=UnixTransport(path=args.socket),
        admission=admission,
    )

    stop = threading.Event()
    signal.signal(signal.SIGTERM, lambda signum, frame: stop.set())
    signal.signal(signal.SIGINT, lambda signum, frame: stop.set())

    def watch_parent() -> None:
        # The parent holds our stdin's write end; EOF means it is gone
        # (exited, crashed, or SIGKILLed) and nobody will ever talk to
        # this socket again -- exit instead of leaking a process.  Raw
        # ``os.read`` on the fd, NOT ``sys.stdin.buffer.read()``: a daemon
        # thread parked inside the buffered reader holds its lock across
        # interpreter shutdown and turns every clean SIGTERM exit into a
        # ``_enter_buffered_busy`` abort.
        try:
            while os.read(0, 4096):
                pass
        except OSError:
            pass
        stop.set()

    watcher = threading.Thread(
        target=watch_parent, name="worker-parent-watch", daemon=True
    )
    watcher.start()

    # Readiness marker for humans reading the worker log; the parent's
    # actual readiness check is an OP_HEALTH round trip on the socket.
    print(
        f"ADLP-WORKER-READY shard={args.shard}/{args.shards} "
        f"recovered={len(server)}",
        flush=True,
    )
    stop.wait()
    endpoint.close()
    server.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - subprocess entrypoint
    sys.exit(main())
