"""Deterministic topic -> shard routing.

ADLP's audit machinery is naturally partitioned by topic: a transmission
``D_{x->y}`` is identified by ``(topic, seq, subscriber)`` and both of its
log entries -- the publisher's OUT and each subscriber's IN -- carry the
same topic.  Routing every entry by its topic therefore keeps *both sides
of every transmission in the same shard*, so per-shard audits see complete
pairs and lose none of the paper's pairwise guarantees (Lemmas 1-3).

The router must be stable across process restarts and across machines: a
recovered :class:`~repro.sharding.sharded_server.ShardedLogServer` reopens
each shard's WAL directory and must route new entries for old topics to
the same shard, and a remote client computes the shard id locally before
tagging an ``OP_SUBMIT`` frame.  Python's builtin ``hash()`` is salted per
process (PYTHONHASHSEED), so the router hashes with SHA-256 instead.
"""

from __future__ import annotations

from typing import List

from repro.crypto.hashing import sha256

#: Domain separation: the routing hash must not collide with any other use
#: of SHA-256 over topic names elsewhere in the protocol.
_ROUTE_PREFIX = b"repro.shard.route\x00"


class ShardRouter:
    """Maps topics onto ``shards`` buckets, identically on every host.

    ``shard_of`` is a pure function of ``(topic, shards)``: no state, no
    process salt, no dependence on registration order.  Changing the shard
    count changes the mapping (plain modulo, not consistent hashing) --
    which is why :class:`ShardedLogServer` refuses to reopen a durable
    shard layout with a different count.
    """

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError("shard count must be at least 1")
        self.shards = shards

    def shard_of(self, topic: str) -> int:
        """The shard index for ``topic`` (stable across restarts)."""
        digest = sha256(_ROUTE_PREFIX + topic.encode("utf-8"))
        return int.from_bytes(digest[:8], "big") % self.shards

    def partition(self, topics: List[str]) -> List[List[str]]:
        """Group ``topics`` by shard (index ``i`` lists shard ``i``'s)."""
        buckets: List[List[str]] = [[] for _ in range(self.shards)]
        for topic in topics:
            buckets[self.shard_of(topic)].append(topic)
        return buckets

    def __repr__(self) -> str:
        return f"ShardRouter(shards={self.shards})"
