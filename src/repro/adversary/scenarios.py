"""Offline forgery helpers.

Fabrication, impersonation, and collusion do not need a live data path --
a liar just writes entries.  These helpers craft exactly the entries the
paper's scenarios describe, for direct submission to a log server:

- :func:`fabricate_publication_entry` / :func:`fabricate_receipt_entry` --
  Lemma 1's fabrications: an entry for a transmission that never happened.
  The forger signs its own side correctly but can only guess the
  counterpart's signature.
- :func:`forge_impersonated_entry` -- an entry written under *another*
  component's identity ("Impersonation", Section III-B).
- :func:`forge_colluding_pair` -- a publisher and subscriber who share keys
  and goodwill manufacture a mutually consistent pair of entries for a
  transmission that never happened.  The auditor classifies both valid --
  the paper's acknowledged limitation (L_V,c may be non-empty).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.protocol import message_digest
from repro.crypto.keys import KeyPair


def fabricate_publication_entry(
    component_id: str,
    keypair: KeyPair,
    topic: str,
    type_name: str,
    seq: int,
    payload: bytes,
    subscriber_id: str,
    timestamp: float = 0.0,
    reuse_ack: Optional[Tuple[bytes, bytes]] = None,
) -> LogEntry:
    """A publisher's L_x for a publication that never happened.

    :param reuse_ack: optionally an old (acknowledged hash, s_y) pair
        captured from a real earlier transmission -- the "reuse a previously
        received M_y" attempt from the proof of Lemma 1.  Defaults to a
        random signature.
    """
    digest = message_digest(seq, payload)
    if reuse_ack is not None:
        peer_hash, peer_sig = reuse_ack
    else:
        peer_hash, peer_sig = digest, os.urandom(keypair.public.signature_size)
    return LogEntry(
        component_id=component_id,
        topic=topic,
        type_name=type_name,
        direction=Direction.OUT,
        seq=seq,
        timestamp=timestamp,
        scheme=Scheme.ADLP,
        data=payload,
        own_sig=keypair.private.sign_digest(digest),
        peer_id=subscriber_id,
        peer_hash=peer_hash,
        peer_sig=peer_sig,
    )


def fabricate_receipt_entry(
    component_id: str,
    keypair: KeyPair,
    topic: str,
    type_name: str,
    seq: int,
    payload: bytes,
    publisher_id: str,
    timestamp: float = 0.0,
    reuse_message: Optional[Tuple[bytes, bytes]] = None,
    store_hash: bool = True,
) -> LogEntry:
    """A subscriber's L_y for a receipt that never happened.

    :param reuse_message: optionally an old (payload, s_x) pair from a real
        earlier message, replayed under the new ``seq`` -- defeated by the
        sequence number inside the signed digest.
    """
    if reuse_message is not None:
        payload, peer_sig = reuse_message
    else:
        peer_sig = os.urandom(keypair.public.signature_size)
    digest = message_digest(seq, payload)
    entry = LogEntry(
        component_id=component_id,
        topic=topic,
        type_name=type_name,
        direction=Direction.IN,
        seq=seq,
        timestamp=timestamp,
        scheme=Scheme.ADLP,
        own_sig=keypair.private.sign_digest(digest),
        peer_id=publisher_id,
        peer_sig=peer_sig,
    )
    if store_hash:
        entry.data_hash = digest
    else:
        entry.data = payload
    return entry


def forge_impersonated_entry(
    victim_id: str,
    attacker_keypair: KeyPair,
    topic: str,
    type_name: str,
    seq: int,
    payload: bytes,
    direction: Direction = Direction.OUT,
    timestamp: float = 0.0,
) -> LogEntry:
    """An entry written as if ``victim_id`` created it.

    The attacker cannot produce the victim's signature, so it signs with its
    own key (or might as well use random bytes); verification under the
    victim's registered key fails -- "no component can write a log entry as
    if it was created by someone else" (Section IV-B).
    """
    digest = message_digest(seq, payload)
    return LogEntry(
        component_id=victim_id,
        topic=topic,
        type_name=type_name,
        direction=direction,
        seq=seq,
        timestamp=timestamp,
        scheme=Scheme.ADLP,
        data=payload,
        own_sig=attacker_keypair.private.sign_digest(digest),
        peer_id="",
    )


def forge_colluding_pair(
    publisher_id: str,
    publisher_keypair: KeyPair,
    subscriber_id: str,
    subscriber_keypair: KeyPair,
    topic: str,
    type_name: str,
    seq: int,
    payload: bytes,
    timestamp: float = 0.0,
    store_hash: bool = True,
) -> Tuple[LogEntry, LogEntry]:
    """A mutually consistent fake (L_x, L_y) pair for a transmission that
    never occurred (or whose real payload differed).

    Because the colluders cooperate, each can obtain the other's genuine
    signature over the fake digest; every check the auditor can run
    succeeds.  This is the fundamental limit the paper concedes for
    colluding groups; only transmissions crossing a group boundary are
    protected.
    """
    digest = message_digest(seq, payload)
    s_x = publisher_keypair.private.sign_digest(digest)
    s_y = subscriber_keypair.private.sign_digest(digest)
    pub_entry = LogEntry(
        component_id=publisher_id,
        topic=topic,
        type_name=type_name,
        direction=Direction.OUT,
        seq=seq,
        timestamp=timestamp,
        scheme=Scheme.ADLP,
        data=payload,
        own_sig=s_x,
        peer_id=subscriber_id,
        peer_hash=digest,
        peer_sig=s_y,
    )
    sub_entry = LogEntry(
        component_id=subscriber_id,
        topic=topic,
        type_name=type_name,
        direction=Direction.IN,
        seq=seq,
        timestamp=timestamp,
        scheme=Scheme.ADLP,
        own_sig=s_y,
        peer_id=publisher_id,
        peer_sig=s_x,
    )
    if store_hash:
        sub_entry.data_hash = digest
    else:
        sub_entry.data = payload
    return pub_entry, sub_entry
