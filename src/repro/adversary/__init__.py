"""Unfaithful components.

The paper's trust model (Section II-A) allows any component to forge, hide,
or alter its log entries, and groups of components to collude.  This package
makes those behaviors injectable so the accountability guarantees
(Lemmas 1-4, Theorems 1-2) can be validated empirically:

- :mod:`repro.adversary.behaviors` -- declarative descriptions of publisher-
  and subscriber-side deviations (Section III-B's taxonomy).
- :mod:`repro.adversary.harness` -- protocol classes that apply behaviors on
  the live data path while recording ground truth.
- :mod:`repro.adversary.scenarios` -- offline forgery helpers (fabricated
  entries, impersonation, colluding consistent lies) and canned scenarios
  from the paper's figures.
- :mod:`repro.adversary.forking` -- the *compromised logger* itself: an
  equivocating server signing two histories under one identity, for
  exercising the gossip layer's split-view detection.
"""

from repro.adversary.behaviors import PublisherBehavior, SubscriberBehavior
from repro.adversary.forking import ForkingLogServer, tamper_timestamp
from repro.adversary.harness import (
    GroundTruth,
    TransmissionRecord,
    UnfaithfulAdlpProtocol,
)
from repro.adversary.scenarios import (
    fabricate_publication_entry,
    fabricate_receipt_entry,
    forge_impersonated_entry,
    forge_colluding_pair,
)

__all__ = [
    "ForkingLogServer",
    "tamper_timestamp",
    "PublisherBehavior",
    "SubscriberBehavior",
    "GroundTruth",
    "TransmissionRecord",
    "UnfaithfulAdlpProtocol",
    "fabricate_publication_entry",
    "fabricate_receipt_entry",
    "forge_impersonated_entry",
    "forge_colluding_pair",
]
