"""Live adversarial protocol + ground-truth recording.

:class:`UnfaithfulAdlpProtocol` is a drop-in replacement for
:class:`~repro.core.adlp_protocol.AdlpProtocol` that (a) applies the
configured :class:`PublisherBehavior` / :class:`SubscriberBehavior`
deviations on the live data path and (b) records what *actually* crossed the
wire into a shared :class:`GroundTruth`, so tests can compare the auditor's
verdicts against reality.  With default (faithful) behaviors it is
behaviorally identical to ``AdlpProtocol`` and is also used for the faithful
nodes of adversarial scenarios -- every node then contributes ground truth.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.adversary.behaviors import PublisherBehavior, SubscriberBehavior
from repro.core.adlp_protocol import (
    AdlpProtocol,
    _AdlpPublisherProtocol,
    _AdlpSubscriberProtocol,
)
from repro.core.entries import LogEntry
from repro.core.protocol import AdlpMessage, message_digest
from repro.middleware.transport.base import Connection, PublisherProtocol, SubscriberProtocol


@dataclass(frozen=True)
class TransmissionRecord:
    """One actual transmission D_{x->y} as it really happened."""

    publisher: str
    subscriber: str
    topic: str
    seq: int
    digest: bytes  # h(seq || D) of the payload actually sent/received


class GroundTruth:
    """Thread-safe record of real sends and receipts during a scenario."""

    def __init__(self) -> None:
        self._sent: List[TransmissionRecord] = []
        self._received: List[TransmissionRecord] = []
        self._lock = threading.Lock()

    def record_send(self, record: TransmissionRecord) -> None:
        with self._lock:
            self._sent.append(record)

    def record_receipt(self, record: TransmissionRecord) -> None:
        with self._lock:
            self._received.append(record)

    @property
    def sent(self) -> List[TransmissionRecord]:
        with self._lock:
            return list(self._sent)

    @property
    def received(self) -> List[TransmissionRecord]:
        with self._lock:
            return list(self._received)

    def transmissions(self) -> List[TransmissionRecord]:
        """Completed transmissions: sent by x *and* received by y."""
        received = {
            (r.publisher, r.subscriber, r.topic, r.seq): r for r in self.received
        }
        return [
            r
            for r in self.sent
            if (r.publisher, r.subscriber, r.topic, r.seq) in received
        ]

    def digest_of(self, topic: str, seq: int) -> Optional[bytes]:
        """The true digest of the payload published as (topic, seq)."""
        for record in self.sent:
            if record.topic == topic and record.seq == seq:
                return record.digest
        return None


class _UnfaithfulPublisherProtocol(_AdlpPublisherProtocol):
    """Publisher side with injectable deviations."""

    def __init__(self, outer: "UnfaithfulAdlpProtocol", topic: str, type_name: str):
        super().__init__(outer, topic, type_name)
        self._behavior: PublisherBehavior = outer.publisher_behavior
        self._truth: GroundTruth = outer.ground_truth

    def make_frame(self, seq: int, payload: bytes) -> bytes:
        behavior = self._behavior
        frame = super().make_frame(seq, payload)

        if behavior.falsify is not None:
            # Log D' instead of D; the *sent* frame keeps the true payload
            # and valid signature.  The liar signs D' for its log so its own
            # signature verifies ("obvious detection" avoided).
            forged = behavior.falsify(payload)
            forged_sig = self._outer.keypair.private.sign_digest(
                message_digest(seq, forged)
            )
            with self._pending_lock:
                self._pending[seq] = (forged, forged_sig)

        if behavior.send_invalid_signature:
            # Figure 8 (a): ship a garbage signature with the true payload.
            frame = AdlpMessage(
                seq=seq, payload=payload, signature=os.urandom(128)
            ).encode()
        return frame

    def on_link_send(
        self, subscriber_id: str, connection: Connection, seq: int, frame: bytes
    ) -> None:
        # What actually leaves this publisher, per subscriber.
        msg = AdlpMessage.decode(frame)
        self._truth.record_send(
            TransmissionRecord(
                publisher=self._outer.component_id,
                subscriber=subscriber_id,
                topic=self._topic,
                seq=seq,
                digest=message_digest(seq, msg.payload),
            )
        )
        super().on_link_send(subscriber_id, connection, seq, frame)

    def _now(self) -> float:
        return super()._now() + self._behavior.log_clock_offset

    def _submit_entry(self, entry: LogEntry) -> None:
        if self._behavior.hide_entries:
            return
        super()._submit_entry(entry)


class _UnfaithfulSubscriberProtocol(_AdlpSubscriberProtocol):
    """Subscriber side with injectable deviations."""

    def __init__(self, outer: "UnfaithfulAdlpProtocol", topic: str, type_name: str):
        super().__init__(outer, topic, type_name)
        self._behavior: SubscriberBehavior = outer.subscriber_behavior
        self._truth: GroundTruth = outer.ground_truth
        self._previous: Optional[Tuple[bytes, bytes]] = None  # (payload, s_x)

    def on_frame(
        self, publisher_id: str, connection: Connection, frame: bytes
    ) -> Optional[bytes]:
        try:
            msg = AdlpMessage.decode(frame)
            self._truth.record_receipt(
                TransmissionRecord(
                    publisher=publisher_id,
                    subscriber=self._outer.component_id,
                    topic=self._topic,
                    seq=msg.seq,
                    digest=message_digest(msg.seq, msg.payload),
                )
            )
        except Exception:
            pass
        result = super().on_frame(publisher_id, connection, frame)
        if result is not None:
            try:
                parsed = AdlpMessage.decode(frame)
                self._previous = (parsed.payload, parsed.signature)
            except Exception:
                pass
        return result

    def _send_ack(self, connection, seq, digest, signature, payload) -> None:
        if self._behavior.suppress_acks:
            return  # full stealth: pretend nothing arrived
        super()._send_ack(connection, seq, digest, signature, payload)

    def _now(self) -> float:
        return super()._now() + self._behavior.log_clock_offset

    def _submit_entry(self, entry: LogEntry) -> None:
        if self._behavior.hide_entries or self._behavior.suppress_acks:
            return
        super()._submit_entry(entry)

    def _build_entry(self, publisher_id, msg, digest, signature) -> LogEntry:
        behavior = self._behavior
        entry = super()._build_entry(publisher_id, msg, digest, signature)

        if behavior.falsify is not None:
            forged = behavior.falsify(msg.payload)
            forged_digest = message_digest(msg.seq, forged)
            entry.data = b""
            entry.data_hash = forged_digest
            entry.own_sig = self._outer.keypair.private.sign_digest(forged_digest)
            # the claimed publisher signature stays the real s_x, which
            # cannot verify for the forged digest (Lemma 3 ii)

        if behavior.fabricate_peer_signature:
            # Figure 8 (b): accuse the publisher of sending garbage.
            entry.peer_sig = os.urandom(len(entry.peer_sig) or 128)

        if behavior.replay_previous and self._previous is not None:
            old_payload, old_sig = self._previous
            replay_digest = message_digest(msg.seq, old_payload)
            entry.data = b""
            entry.data_hash = replay_digest
            entry.own_sig = self._outer.keypair.private.sign_digest(replay_digest)
            entry.peer_sig = old_sig  # signed for the *old* seq: stale
        return entry


class UnfaithfulAdlpProtocol(AdlpProtocol):
    """ADLP with configurable unfaithfulness and ground-truth recording."""

    name = "adlp-unfaithful"

    def __init__(
        self,
        component_id: str,
        log_server,
        ground_truth: GroundTruth,
        publisher_behavior: Optional[PublisherBehavior] = None,
        subscriber_behavior: Optional[SubscriberBehavior] = None,
        **kwargs,
    ):
        super().__init__(component_id, log_server, **kwargs)
        self.ground_truth = ground_truth
        self.publisher_behavior = publisher_behavior or PublisherBehavior()
        self.subscriber_behavior = subscriber_behavior or SubscriberBehavior()

    @property
    def is_faithful(self) -> bool:
        return (
            self.publisher_behavior.is_faithful
            and self.subscriber_behavior.is_faithful
        )

    def publisher_protocol(self, topic: str, type_name: str) -> PublisherProtocol:
        return _UnfaithfulPublisherProtocol(self, topic, type_name)

    def subscriber_protocol(self, topic: str, type_name: str) -> SubscriberProtocol:
        return _UnfaithfulSubscriberProtocol(self, topic, type_name)
