"""Declarative unfaithful behaviors (the Section III-B taxonomy).

Each field corresponds to one of the paper's unfaithful actions.  A behavior
object with all defaults describes a faithful component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

#: Transforms the true payload into the payload the liar *reports*.
PayloadForgery = Callable[[bytes], bytes]


def flip_first_byte(payload: bytes) -> bytes:
    """A canonical payload forgery: corrupt the first byte."""
    if not payload:
        return b"\x01"
    return bytes([payload[0] ^ 0xFF]) + payload[1:]


@dataclass(frozen=True)
class PublisherBehavior:
    """Deviations applied on the publisher side of ADLP."""

    #: *Hiding*: publish normally but never enter L_x.
    hide_entries: bool = False

    #: *Falsification*: log D' = forge(D) instead of the D actually sent.
    #: The liar signs D' correctly for its log entry (an invalid own
    #: signature would be "obvious detection"), but the subscriber's ACK it
    #: holds is for D -- which is exactly what convicts it (Lemma 3 i).
    falsify: Optional[PayloadForgery] = None

    #: Figure 8 (a): attach a random (invalid) signature to the *sent*
    #: message, hoping to make the subscriber's log unverifiable.  The
    #: transport-level signing requirement (eq. 4) forbids this for
    #: protocol-compliant components; this flag bypasses it.
    send_invalid_signature: bool = False

    #: *Timing disruption*: seconds added to every log-entry timestamp.
    log_clock_offset: float = 0.0

    @property
    def is_faithful(self) -> bool:
        return self == PublisherBehavior()


@dataclass(frozen=True)
class SubscriberBehavior:
    """Deviations applied on the subscriber side of ADLP."""

    #: *Hiding* (log only): ACK to keep receiving, but never enter L_y.
    #: Lemma 2: the publisher's L_x, holding our signed ACK, exposes us.
    hide_entries: bool = False

    #: *Hiding* (stealth): never ACK and never log, as if nothing arrived.
    #: The protocol's penalty is that the publisher stops sending to us.
    suppress_acks: bool = False

    #: *Falsification*: log D'' = forge(D) instead of the D received, with a
    #: freshly self-signed commitment.  The claimed publisher signature
    #: cannot verify for D'' (Lemma 3 ii).
    falsify: Optional[PayloadForgery] = None

    #: Figure 8 (b): report a random bytes blob as the publisher's
    #: signature, accusing the publisher of sending an invalid pair.
    fabricate_peer_signature: bool = False

    #: *Replay*: log the previously received payload (and publisher
    #: signature) under the current sequence number.  Freshness in the
    #: signed digest defeats this (Lemma 1).
    replay_previous: bool = False

    #: *Timing disruption*: seconds added to every log-entry timestamp.
    log_clock_offset: float = 0.0

    @property
    def is_faithful(self) -> bool:
        return self == SubscriberBehavior()
