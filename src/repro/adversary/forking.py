"""An equivocating trusted logger.

The gossip subsystem (:mod:`repro.gossip`) exists to catch exactly one
adversary: a *compromised logger* that signs two different histories and
shows each to a different audience -- a split view.  Per-client proofs
cannot catch it (each view is internally consistent, every inclusion and
consistency proof checks out); only comparing signed tree heads across
audiences can.

:class:`ForkingLogServer` builds that adversary out of two honest
:class:`~repro.core.log_server.LogServer` instances sharing ONE signing
identity (same key, same ``log_id``).  Every submission feeds both views;
at ``fork_at`` the forked view silently ingests a tampered-but-decodable
copy of the record instead, after which the two hash chains -- and hence
every subsequent chain head, Merkle root, and signed tree head -- diverge
forever while staying individually valid.

Serve the two views to two client groups with :meth:`face`::

    fork = ForkingLogServer(signer, fork_at=3)
    endpoint_a = LogServerEndpoint(fork.face("honest"), transport=...)
    endpoint_b = LogServerEndpoint(fork.face("forked"), transport=...)

Each face answers queries (commitments, proofs, STHs) from its own view
but routes ingestion through the shared fork controller, so both views
see the identical submission stream no matter which face a client used.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Union

from repro.core.entries import LogEntry
from repro.core.log_server import LogCommitment, LogServer
from repro.crypto.keys import PrivateKey, PublicKey
from repro.crypto.merkle import MerkleConsistencyProof, MerkleProof


def tamper_timestamp(record: bytes) -> bytes:
    """Default fork mutation: nudge the timestamp by one second.

    The result still decodes and still carries the component's original
    signature bytes -- a *plausible* lie (the kind a compromised logger
    would tell to reorder blame), not garbage the view itself would
    reject.
    """
    decoded = LogEntry.decode(record)
    decoded.timestamp = decoded.timestamp + 1.0
    return decoded.encode()


class ForkingLogServer:
    """One signing identity, two histories.

    ``fork_at`` is the entry index at which the forked view first
    diverges (default 0: the very first record).  Before that index both
    views are byte-identical; from it on they disagree on every head.
    """

    VIEWS = ("honest", "forked")

    def __init__(
        self,
        signer: PrivateKey,
        log_id: Optional[str] = None,
        fork_at: int = 0,
        mutate: Optional[Callable[[bytes], bytes]] = None,
    ):
        self.honest = LogServer(signer=signer, log_id=log_id)
        # Same signer, same identity: the whole point is that both views'
        # heads verify under one key, making the fork attributable.
        self.forked = LogServer(signer=signer, log_id=self.honest.log_id)
        self.log_id = self.honest.log_id
        self.fork_at = fork_at
        self._mutate = mutate or tamper_timestamp
        self._lock = threading.Lock()
        self.forked_records = 0

    @property
    def signer_public_key(self) -> PublicKey:
        return self.honest.signer_public_key

    # -- shared ingestion --------------------------------------------------

    def register_key(self, component_id: str, key) -> None:
        self.honest.register_key(component_id, key)
        self.forked.register_key(component_id, key)

    def submit(self, entry: Union[LogEntry, bytes]) -> int:
        with self._lock:
            record = (
                entry.encode() if isinstance(entry, LogEntry) else bytes(entry)
            )
            index = self.honest.submit(record)
            if index == self.fork_at:
                record = self._mutate(record)
                self.forked_records += 1
            self.forked.submit(record)
            return index

    def submit_batch(self, entries: List[Union[LogEntry, bytes]]) -> List[int]:
        return [self.submit(entry) for entry in entries]

    # -- faces -------------------------------------------------------------

    def face(self, view: str) -> "_LoggerFace":
        """A ``LogServer``-shaped object serving ``view`` ("honest" or
        "forked") -- plug it straight into a
        :class:`~repro.core.remote.LogServerEndpoint`."""
        if view not in self.VIEWS:
            raise ValueError(f"unknown view {view!r}; expected one of {self.VIEWS}")
        return _LoggerFace(self, self.honest if view == "honest" else self.forked)

    def close(self) -> None:
        self.honest.close()
        self.forked.close()


class _LoggerFace:
    """One audience's window onto the fork.

    Ingestion goes through the shared controller (both views must see
    every submission); every read -- commitment, proof, STH, raw records
    -- answers from this face's view alone, which is what makes each
    audience's experience internally consistent.
    """

    def __init__(self, fork: ForkingLogServer, view: LogServer):
        self._fork = fork
        self._view = view

    # ingestion: shared, so the split stays invisible to submitters
    def register_key(self, component_id: str, key) -> None:
        self._fork.register_key(component_id, key)

    def submit(self, entry: Union[LogEntry, bytes]) -> int:
        return self._fork.submit(entry)

    def submit_batch(self, entries: List[Union[LogEntry, bytes]]) -> List[int]:
        return self._fork.submit_batch(entries)

    # reads: this view only
    def __len__(self) -> int:
        return len(self._view)

    @property
    def total_bytes(self) -> int:
        return self._view.total_bytes

    @property
    def keystore(self):
        return self._view.keystore

    @property
    def store(self):
        return self._view.store

    def keys_snapshot(self):
        return self._view.keys_snapshot()

    def checkpoint(self) -> None:
        self._view.checkpoint()

    def verify_integrity(self) -> None:
        self._view.verify_integrity()

    def commitment(self) -> LogCommitment:
        return self._view.commitment()

    def raw_records(self, start: int = 0, count: Optional[int] = None):
        return self._view.raw_records(start, count)

    def entries(self, *args, **kwargs):
        return self._view.entries(*args, **kwargs)

    def signed_tree_head(self, timestamp: Optional[float] = None):
        return self._view.signed_tree_head(timestamp)

    def prove_inclusion(
        self, index: int, tree_size: Optional[int] = None
    ) -> MerkleProof:
        return self._view.prove_inclusion(index, tree_size)

    def prove_consistency(
        self, old_size: int, new_size: Optional[int] = None
    ) -> MerkleConsistencyProof:
        return self._view.prove_consistency(old_size, new_size)

    def add_observer(self, callback) -> None:
        self._view.add_observer(callback)

    def remove_observer(self, callback) -> None:
        self._view.remove_observer(callback)

    def stats(self):
        return {
            "entries": len(self._view),
            "total_bytes": self._view.total_bytes,
            "rejected_submissions": self._view.rejected_submissions,
        }

    def close(self) -> None:
        # Faces share the fork's servers; closing is the fork's job.
        pass
