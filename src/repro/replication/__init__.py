"""Trusted-logger replication: fan-out, health, failover, anti-entropy.

The paper keeps the logger out of the data path so its failure "does not
interrupt a normal operation of the ROS nodes" -- but a single logger that
dies still takes the *evidence* with it.  This package removes that single
point of evidence loss: components fan every log entry out to a replica
set and the audit survives any minority of replica failures.

- :class:`~repro.replication.replicated.ReplicatedLogger` -- client-side
  fan-out stub, drop-in for the ``log_server`` the protocols expect.
- :class:`~repro.replication.breaker.CircuitBreaker` -- per-replica
  failure isolation with jittered half-open probing.
- :class:`~repro.replication.divergence.DivergenceDetector` -- flags
  replicas whose commitments disagree at the same entry count.
"""

from repro.replication.breaker import BreakerState, CircuitBreaker
from repro.replication.divergence import DivergenceDetector, DivergenceEvidence
from repro.replication.replicated import (
    CatchUpResult,
    ReplicaStatus,
    ReplicatedLogger,
)

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "DivergenceDetector",
    "DivergenceEvidence",
    "CatchUpResult",
    "ReplicaStatus",
    "ReplicatedLogger",
]
