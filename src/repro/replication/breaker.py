"""Per-replica circuit breaker.

A replica that stops answering must not be hammered from the hot path:
every submit attempt against a dead socket costs a connect timeout, and a
replica coming back up would face a thundering herd of reconnects.  The
classic three-state breaker solves both:

- **closed** -- requests flow; consecutive failures are counted.
- **open** -- after ``failure_threshold`` consecutive failures, requests
  are skipped entirely until a jittered backoff interval expires.
- **half-open** -- exactly one probe is let through; success closes the
  breaker, failure re-opens it with a doubled (capped) interval.

The jitter is multiplicative (up to ``+jitter`` fraction of the interval)
so that many clients whose breakers opened at the same moment -- the usual
consequence of one replica dying -- do not probe it back in lockstep.

Time and randomness are injected (``time_source``, ``rng``) so tests can
drive the state machine deterministically.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from typing import Callable, Optional


class BreakerState(enum.Enum):
    """The three classic circuit-breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Thread-safe breaker gating requests to one replica."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout: float = 0.5,
        max_reset_timeout: float = 30.0,
        jitter: float = 0.2,
        time_source: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout <= 0:
            raise ValueError("reset_timeout must be positive")
        if max_reset_timeout < reset_timeout:
            raise ValueError("max_reset_timeout must be at least reset_timeout")
        if not 0 <= jitter <= 1:
            raise ValueError("jitter must be within [0, 1]")
        self._failure_threshold = failure_threshold
        self._reset_timeout = reset_timeout
        self._max_reset_timeout = max_reset_timeout
        self._jitter = jitter
        self._now = time_source
        self._rng = rng or random.Random()
        self._lock = threading.Lock()
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._current_timeout = reset_timeout
        self._open_until = 0.0
        #: Times the breaker tripped open (observability).
        self.opens = 0

    @property
    def state(self) -> BreakerState:
        """Current state; an expired OPEN reads as HALF_OPEN-eligible but
        only :meth:`allow` performs the transition."""
        with self._lock:
            return self._state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive_failures

    def time_until_probe(self) -> float:
        """Seconds until an open breaker admits its half-open probe
        (0 when requests are currently admitted or a probe is due)."""
        with self._lock:
            if self._state is not BreakerState.OPEN:
                return 0.0
            return max(0.0, self._open_until - self._now())

    def allow(self) -> bool:
        """Whether a request may proceed right now.

        In OPEN state with an expired interval, transitions to HALF_OPEN
        and admits exactly one probe; further calls return ``False`` until
        the probe's outcome is recorded.
        """
        with self._lock:
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.HALF_OPEN:
                return False  # one probe in flight; wait for its verdict
            if self._now() >= self._open_until:
                self._state = BreakerState.HALF_OPEN
                return True
            return False

    def record_success(self) -> None:
        """A request succeeded: close the breaker and reset the backoff."""
        with self._lock:
            self._state = BreakerState.CLOSED
            self._consecutive_failures = 0
            self._current_timeout = self._reset_timeout

    def record_failure(self) -> None:
        """A request failed: count it, tripping or re-opening as due."""
        with self._lock:
            self._consecutive_failures += 1
            if self._state is BreakerState.HALF_OPEN:
                # the probe failed: back off harder
                self._trip_locked(escalate=True)
            elif (
                self._state is BreakerState.CLOSED
                and self._consecutive_failures >= self._failure_threshold
            ):
                self._trip_locked(escalate=False)

    def force_open(self) -> None:
        """Trip the breaker immediately (e.g. a divergent replica must be
        quarantined regardless of its liveness)."""
        with self._lock:
            if self._state is not BreakerState.OPEN:
                self._trip_locked(escalate=False)

    def _trip_locked(self, escalate: bool) -> None:
        if escalate:
            self._current_timeout = min(
                self._current_timeout * 2, self._max_reset_timeout
            )
        interval = self._current_timeout * (1.0 + self._jitter * self._rng.random())
        self._state = BreakerState.OPEN
        self._open_until = self._now() + interval
        self.opens += 1
