"""Client-side replication of the trusted logger.

:class:`ReplicatedLogger` is a drop-in for the ``log_server`` argument of
:class:`~repro.core.adlp_protocol.AdlpProtocol` (the ``register_key`` /
``submit`` / ``stats`` surface) that fans every operation out to N
:class:`~repro.core.remote.LogServerEndpoint` replicas:

- **Quorum submission** -- each submit is sent to every replica whose
  circuit breaker admits it; the call reports (via counters and
  :meth:`quorum_status`) whether it reached a durable majority or is
  limping on fewer replicas.  Submits stay fire-and-forget per replica,
  so a dead replica never stalls the data plane -- the paper's
  no-single-point-of-failure property, now without the single point.
- **Health probes** -- the ``OP_HEALTH`` RPC returns each replica's
  :class:`~repro.core.log_server.LogCommitment` (entry count, chain head,
  Merkle root); probes drive the per-replica breaker and feed the
  :class:`~repro.replication.divergence.DivergenceDetector`.
- **Failover** -- consecutive failures trip a replica's breaker open;
  fan-out skips it (no spill build-up for a quarantined replica) until a
  jittered half-open probe readmits it.
- **Anti-entropy catch-up** -- :meth:`catch_up` replays a lagging
  replica's missing suffix from the healthiest peer, re-verifying the
  hash chain record by record before trusting the rejoin.

**Ordering caveat**: replica commitments are order-sensitive, so all
components of one deployment must fan out through a *shared*
``ReplicatedLogger`` instance (submits are serialized internally, giving
every replica the identical interleaving).  Independent fan-out points
would produce replicas that disagree on order -- indistinguishable from
divergence.  See PROTOCOL.md §9.
"""

from __future__ import annotations

import logging
import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, TypeVar, Union

from repro.core.entries import LogEntry
from repro.core.log_server import LogCommitment
from repro.core.policy import ReplicationConfig
from repro.core.remote import RemoteLogger, RemoteUnavailable
from repro.crypto.hashchain import chain_digest
from repro.crypto.keys import PublicKey
from repro.errors import LoggingError, TransportError
from repro.gossip.evidence import EquivocationEvidence
from repro.gossip.relay import GossipRelay
from repro.gossip.sth import SignedTreeHead
from repro.middleware.transport.base import Transport
from repro.replication.breaker import BreakerState, CircuitBreaker
from repro.replication.divergence import DivergenceDetector, DivergenceEvidence
from repro.util.concurrency import StoppableThread

logger = logging.getLogger(__name__)

_T = TypeVar("_T")


@dataclass
class ReplicaStatus:
    """One replica's view for operators (the CLI ``replicas`` command)."""

    index: int
    address: object
    breaker: str
    connected: bool
    entries: Optional[int]
    chain_head: Optional[bytes]
    merkle_root: Optional[bytes]
    lag: Optional[int]
    submitted: int
    skipped: int
    last_error: Optional[str]


@dataclass(frozen=True)
class CatchUpResult:
    """Outcome of one replica's anti-entropy catch-up."""

    replica: int
    donor: int
    replayed: int
    discarded_spill: int
    ok: bool
    reason: str = ""


class _ReplicaHandle:
    """One replica: its client stub, breaker, and bookkeeping."""

    def __init__(self, index: int, address, client: RemoteLogger, breaker: CircuitBreaker):
        self.index = index
        self.address = address
        self.client = client
        self.breaker = breaker
        self.last_health: Optional[LogCommitment] = None
        self.last_error: Optional[str] = None
        self.submitted = 0
        self.skipped = 0
        #: Latest signed tree head fetched from this replica (gossip mode).
        self.last_sth: Optional[SignedTreeHead] = None
        #: Cleared after a clean "no signer" refusal so an unsigned
        #: replica is not re-asked on every probe.
        self.sth_enabled = True

    @property
    def label(self) -> str:
        return f"replica-{self.index}"


class ReplicatedLogger:
    """Fan-out stub over a set of trusted-logger replicas.

    :param addresses: replica endpoint addresses (falls back to
        ``config.replicas`` when omitted).
    :param config: replication policy; see
        :class:`~repro.core.policy.ReplicationConfig`.
    :param transport: shared transport used for every replica connection
        (defaults to TCP, like :class:`~repro.core.remote.RemoteLogger`).
    :param spill_dir: directory for per-replica disk spill files; ``None``
        keeps the per-replica spill queues memory-only.
    :param time_source: injected clock for the breakers (tests).
    :param rng: injected randomness for breaker jitter (tests).
    """

    def __init__(
        self,
        addresses: Optional[Sequence] = None,
        config: Optional[ReplicationConfig] = None,
        transport: Optional[Transport] = None,
        spill_dir: Optional[str] = None,
        time_source: Callable[[], float] = time.monotonic,
        rng: Optional[random.Random] = None,
    ):
        self.config = config or ReplicationConfig()
        addresses = list(addresses if addresses is not None else self.config.replicas)
        if not addresses:
            raise ValueError("a replica set needs at least one address")
        self._transport = transport
        self._spill_dir = spill_dir
        self._rng = rng or random.Random()
        self._time = time_source
        self._handles: List[_ReplicaHandle] = [
            self._make_handle(index, address)
            for index, address in enumerate(addresses)
        ]
        self.detector = DivergenceDetector()
        #: STH gossip (opt-in via :meth:`enable_sth_gossip`): health probes
        #: then also fetch each replica's signed tree head, and any
        #: equivocation evidence force-opens the offender's breaker.
        self.gossip: Optional[GossipRelay] = None
        self._gossip_key: Optional[PublicKey] = None
        # Serializes fan-out *rounds* so every replica sees the same
        # interleaving of submissions (multiple components share one
        # instance; commitments are order-sensitive).  Within one round
        # the replica RPCs run concurrently on the fan-out pool -- each
        # replica still observes the identical round order, but a slow
        # replica no longer adds its latency to every other replica's.
        self._submit_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self._fanout = ThreadPoolExecutor(
            max_workers=len(self._handles),
            thread_name_prefix="replica-fanout",
        )
        self.submits = 0
        self.quorum_submits = 0
        self.degraded_submits = 0
        self.last_reached = 0
        self._prober: Optional[StoppableThread] = None

    # -- construction ----------------------------------------------------

    def _make_handle(self, index: int, address) -> _ReplicaHandle:
        spill_path = None
        if self._spill_dir is not None:
            spill_path = f"{self._spill_dir}/replica-{index}.spill"
        client = RemoteLogger(
            address,
            transport=self._transport,
            spill_path=spill_path,
            flow_control=self.config.flow_control,
            rng=self._rng,
        )
        breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            reset_timeout=self.config.breaker_reset_timeout,
            max_reset_timeout=self.config.breaker_max_reset_timeout,
            jitter=self.config.breaker_jitter,
            time_source=self._time,
            rng=self._rng,
        )
        return _ReplicaHandle(index, address, client, breaker)

    def _fan_out(
        self, fn: Callable[[_ReplicaHandle], "_T"]
    ) -> List["_T"]:
        """Run ``fn`` once per replica concurrently; results in replica
        order.  Exceptions propagate (callers' ``fn`` absorb per-replica
        trouble themselves).  A single-replica set stays inline -- no
        thread hop on the degenerate case."""
        if len(self._handles) == 1:
            return [fn(self._handles[0])]
        return list(self._fanout.map(fn, self._handles))

    @property
    def quorum(self) -> int:
        """Replicas a submit must reach to count as durably logged."""
        return self.config.quorum_for(len(self._handles))

    @property
    def replica_count(self) -> int:
        return len(self._handles)

    # -- AdlpProtocol-facing surface -------------------------------------

    def register_key(self, component_id: str, key: Union[PublicKey, bytes]) -> None:
        """Register on every reachable replica; raises unless at least a
        quorum accepted (startup must not proceed under-replicated)."""
        if isinstance(key, PublicKey):
            key = key.to_bytes()

        def register_one(handle: _ReplicaHandle) -> Optional[str]:
            try:
                handle.client.register_key(component_id, key)
                handle.breaker.record_success()
                return None
            except (LoggingError, TransportError) as exc:
                handle.breaker.record_failure()
                handle.last_error = str(exc)
                return f"{handle.label}: {exc}"

        outcomes = self._fan_out(register_one)
        errors = [error for error in outcomes if error is not None]
        accepted = len(outcomes) - len(errors)
        if accepted < self.quorum:
            raise LoggingError(
                f"key registration for {component_id!r} reached only "
                f"{accepted}/{len(self._handles)} replicas "
                f"(quorum {self.quorum}): {'; '.join(errors)}"
            )

    def submit(self, entry: Union[LogEntry, bytes]) -> int:
        """Fan the entry out to every admissible replica; returns 0.

        Never raises and never blocks on a dead replica: per-replica
        trouble is absorbed by that replica's client (spill) or breaker
        (skip).  Quorum accounting is visible via :meth:`quorum_status`.
        """
        record = entry.encode() if isinstance(entry, LogEntry) else bytes(entry)

        def submit_one(handle: _ReplicaHandle) -> int:
            # Only CLOSED replicas get data: a submit must never be the
            # half-open readmission probe, because a replica that came
            # back *behind* its peers would append new entries over the
            # gap and fork its chain.  Readmission goes through
            # :meth:`probe` (which demands an up-to-date commitment) or
            # :meth:`catch_up` (which restores one).
            if handle.breaker.state is not BreakerState.CLOSED:
                handle.skipped += 1
                return 0
            handle.client.submit(record)
            handle.submitted += 1
            if handle.client.shedding:
                # Shed mode: the entry parked in the replica's spill
                # (delayed, not lost).  Not "reached" for quorum
                # purposes, but not a breaker failure either -- the
                # server IS up, it asked us to back off.
                return 0
            if handle.client.connected:
                handle.breaker.record_success()
                return 1
            self._note_failure(handle, "submit could not connect")
            return 0

        with self._submit_lock:
            reached = sum(self._fan_out(submit_one))
        with self._counter_lock:
            self.submits += 1
            self.last_reached = reached
            if reached >= self.quorum:
                self.quorum_submits += 1
            else:
                self.degraded_submits += 1
        return 0

    def submit_batch(self, entries: Sequence[Union[LogEntry, bytes]]) -> List[int]:
        """Fan a whole batch out to every admissible replica in one pass.

        Group-commit analogue of :meth:`submit`: the batch is sent to each
        replica as one ``OP_SUBMIT_BATCH`` frame (one round trip instead of
        N), under the same submit lock so every replica still observes the
        identical interleaving of batches.  Quorum accounting is
        entry-denominated -- a batch of N that reached a majority counts as
        N quorum submits -- so the counters stay comparable with per-entry
        operation.  Never raises and never blocks on a dead replica.
        """
        if not entries:
            return []
        records = [
            entry.encode() if isinstance(entry, LogEntry) else bytes(entry)
            for entry in entries
        ]
        def submit_batch_one(handle: _ReplicaHandle) -> int:
            # Same readmission rule as submit(): only CLOSED replicas
            # get data (see the comment there).
            if handle.breaker.state is not BreakerState.CLOSED:
                handle.skipped += len(records)
                return 0
            handle.client.submit_batch(records)
            handle.submitted += len(records)
            if handle.client.shedding:
                # Same as submit(): shed = delayed at the replica's
                # spill, neither reached nor a breaker failure.
                return 0
            if handle.client.connected:
                handle.breaker.record_success()
                return 1
            self._note_failure(handle, "batch submit could not connect")
            return 0

        with self._submit_lock:
            reached = sum(self._fan_out(submit_batch_one))
        with self._counter_lock:
            self.submits += len(records)
            self.last_reached = reached
            if reached >= self.quorum:
                self.quorum_submits += len(records)
            else:
                self.degraded_submits += len(records)
        return [0] * len(records)

    def stats(self) -> Dict[str, int]:
        """Replication counters, shaped for ``AdlpStats.attach_source``.

        Per-replica spill/drop counters are summed under ``replica_``
        prefixes (a drop at one replica is not evidence loss while a
        quorum holds the entry, so they must not pollute the component's
        own ``dropped``)."""
        with self._counter_lock:
            out = {
                "replicated_submits": self.submits,
                "quorum_submits": self.quorum_submits,
                "degraded_submits": self.degraded_submits,
                "replica_dropped": 0,
                "replica_spilled": 0,
                "replica_skipped": 0,
                "breaker_opens": 0,
                "replica_shed": 0,
                "replica_busy": 0,
            }
        for handle in self._handles:
            client_stats = handle.client.stats()
            out["replica_dropped"] += client_stats["dropped"]
            out["replica_spilled"] += client_stats["spilled"]
            out["replica_skipped"] += handle.skipped
            out["breaker_opens"] += handle.breaker.opens
            # Overload counters (present only on flow-controlled clients):
            # shed = diverted to spill on BUSY, i.e. delayed-not-lost.
            out["replica_shed"] += client_stats.get("shed_entries", 0)
            out["replica_busy"] += client_stats.get("busy_responses", 0)
        if self.gossip is not None:
            out["equivocation_evidence"] = len(self.gossip.evidence())
        return out

    # -- health / failover ------------------------------------------------

    def _note_failure(self, handle: _ReplicaHandle, error: str) -> None:
        handle.last_error = error
        before = handle.breaker.state
        handle.breaker.record_failure()
        if (
            before is not BreakerState.OPEN
            and handle.breaker.state is BreakerState.OPEN
        ):
            # Quarantined: drop the entries parked for this replica.  They
            # are durable on the quorum peers, and anti-entropy catch-up
            # will replay them in canonical order -- letting the reconnect
            # drain push them later would fork this replica's chain from
            # its peers' (order divergence), which is strictly worse.
            discarded = handle.client.discard_spill()
            logger.warning(
                "%s breaker opened after %r; discarded %d parked entries "
                "(recoverable via catch_up from a quorum peer)",
                handle.label,
                error,
                discarded,
            )

    def probe(self) -> List[DivergenceEvidence]:
        """Health-probe every admissible replica once.

        Drives the breakers (an open replica whose backoff expired gets
        its half-open probe here) and feeds the divergence detector.
        Returns any *new* divergence evidence this round surfaced.

        A quarantined replica that answers its half-open probe is only
        readmitted if its commitment has caught up with the healthy
        replicas' entry count; an alive-but-lagging replica stays out
        (its probe counts as a failure) until :meth:`catch_up` restores
        a commitment-identical state -- handing it fresh submits over the
        gap would fork its chain, which is worse than its absence.
        """
        fresh: List[DivergenceEvidence] = []
        healthy = [
            h for h in self._handles if h.breaker.state is BreakerState.CLOSED
        ]
        rejoining = [h for h in self._handles if h not in healthy]
        best: Optional[int] = None
        for handle in healthy:
            health = self._probe_one(handle, fresh)
            if health is not None and (best is None or health.entries > best):
                best = health.entries
        if best is None:
            # No CLOSED replica answered this round (e.g. a full outage
            # tripped every breaker).  Fall back to the best commitment
            # ever observed: probing rejoiners with no reference at all
            # would skip the lag check and readmit a lagging replica,
            # which forks its chain the moment submits resume.
            best = max(
                (
                    h.last_health.entries
                    for h in self._handles
                    if h.last_health is not None
                ),
                default=None,
            )
        for handle in rejoining:
            if not handle.breaker.allow():
                continue
            health = self._probe_one(handle, fresh, readmit_at=best)
        for evidence in fresh:
            self._quarantine_divergent(evidence)
        return fresh

    def _probe_one(
        self,
        handle: _ReplicaHandle,
        fresh: List[DivergenceEvidence],
        readmit_at: Optional[int] = None,
    ) -> Optional[LogCommitment]:
        try:
            health = handle.client.health(timeout=self.config.health_timeout)
        except (LoggingError, TransportError) as exc:
            self._note_failure(handle, str(exc))
            return None
        handle.last_health = health
        fresh.extend(self.detector.observe(handle.label, health))
        if self._gossip_probe(handle):
            # Proven equivocation: the quarantine the gossip listener just
            # applied must not be undone by this probe's success path --
            # and a half-open re-probe of a convicted logger re-opens here
            # every time (conviction is permanent; evidence never expires).
            return health
        if readmit_at is not None and health.entries < readmit_at:
            handle.breaker.record_failure()
            handle.last_error = (
                f"alive but lagging {readmit_at - health.entries} entries; "
                "catch_up required before readmission"
            )
            return health
        handle.last_error = None
        handle.breaker.record_success()
        return health

    # -- STH gossip (split-view detection) --------------------------------

    def enable_sth_gossip(
        self,
        public_key: Optional[PublicKey] = None,
        relay: Optional[GossipRelay] = None,
    ) -> GossipRelay:
        """Arm STH gossip: every health probe then also fetches the
        replica's signed tree head and deposits it in ``relay`` (created
        here when not supplied -- supplying one shares a pool with other
        observers, e.g. an auditor's).  ``public_key`` is the logger
        identity's key; it is registered for every log id the replicas
        present, so forged heads are dropped rather than convicting anyone.

        Any equivocation evidence -- from this client's own probes or
        gossiped in by whoever else feeds the relay -- force-opens the
        breaker of every replica presenting the convicted log id: the
        strongest possible divergence signal, since the logger signed two
        different histories itself.
        """
        self.gossip = relay or GossipRelay("replicated-client")
        self._gossip_key = public_key
        self.gossip.add_listener(self._quarantine_equivocator)
        return self.gossip

    def _gossip_probe(self, handle: _ReplicaHandle) -> bool:
        """Fetch and gossip one replica's STH; returns True when this
        replica presents a *convicted* log id (its quarantine must then
        stick -- the caller skips the probe's success bookkeeping)."""
        relay = self.gossip
        if relay is None or not handle.sth_enabled:
            return False
        try:
            sth = handle.client.fetch_sth(timeout=self.config.health_timeout)
        except (RemoteUnavailable, TransportError):
            return False  # transient; the health probe already noted it
        except LoggingError:
            # A clean server-side refusal: the replica has no signer.
            # Remember that instead of re-asking on every probe.
            handle.sth_enabled = False
            return False
        handle.last_sth = sth
        if self._gossip_key is not None:
            relay.register_key(sth.log_id, self._gossip_key)
        # Fresh evidence reaches _quarantine_equivocator via the relay
        # listener; the membership check below also re-convicts on old
        # evidence (a half-open re-probe of an already-convicted logger).
        relay.observe(sth, source=handle.label)
        convicted = any(
            ev.log_id == sth.log_id and ev.scope == sth.scope
            for ev in relay.evidence()
        )
        if convicted:
            handle.breaker.force_open()
            handle.last_error = (
                f"equivocation proven for log {sth.log_id!r}"
            )
        return convicted

    def _quarantine_equivocator(self, evidence: EquivocationEvidence) -> None:
        """Force-open every replica presenting the convicted log id.  No
        majority vote here (unlike root divergence): the evidence embeds
        two heads the logger *signed*, so there is no honest explanation
        to protect."""
        for handle in self._handles:
            sth = handle.last_sth
            if sth is not None and sth.log_id == evidence.log_id:
                handle.breaker.force_open()
                handle.last_error = (
                    f"equivocation ({evidence.kind}) proven for log "
                    f"{evidence.log_id!r} at size {evidence.second.entries}"
                )

    def equivocation(self) -> List[EquivocationEvidence]:
        """All equivocation evidence the gossip relay has accumulated."""
        return self.gossip.evidence() if self.gossip is not None else []

    def _quarantine_divergent(self, evidence: DivergenceEvidence) -> None:
        """Force-open the breakers of the replicas on the *minority* side
        of a divergence: their entries can no longer be trusted for
        quorum, and an operator must resolve the fork before they rejoin.
        When no side has a majority (a perfect split), every participant
        is quarantined -- there is no way to tell who is lying."""
        # Vote with every replica's latest commitment at this entry count,
        # not just the pair that triggered the evidence: when the rogue is
        # probed before the agreeing majority, the evidence alone looks
        # like a perfect split and would quarantine an honest replica.
        roots: Dict[str, bytes] = dict(evidence.roots)
        for handle in self._handles:
            health = handle.last_health
            if health is not None and health.entries == evidence.entries:
                roots.setdefault(handle.label, health.merkle_root)
        by_root: Dict[bytes, List[str]] = {}
        for label, root in roots.items():
            by_root.setdefault(root, []).append(label)
        majority = max(len(labels) for labels in by_root.values())
        flagged = {
            label
            for labels in by_root.values()
            if len(labels) < majority
            for label in labels
        }
        if not flagged:  # perfect split: quarantine all participants
            flagged = set(roots)
        for handle in self._handles:
            if handle.label in flagged:
                handle.breaker.force_open()

    def start_probing(self) -> None:
        """Run :meth:`probe` every ``config.probe_interval`` seconds in a
        background thread until :meth:`close`."""
        if self._prober is not None:
            return
        thread_box: List[StoppableThread] = []

        def loop() -> None:
            thread = thread_box[0]
            while not thread.stopped():
                try:
                    self.probe()
                except Exception:
                    logger.exception("replica health probe failed")
                thread.stop_event.wait(self.config.probe_interval)

        self._prober = StoppableThread("replica-prober", target=loop)
        thread_box.append(self._prober)
        self._prober.start()

    # -- observability ----------------------------------------------------

    def statuses(self) -> List[ReplicaStatus]:
        """Per-replica status for operators; lag is relative to the most
        advanced *probed* replica."""
        max_entries = max(
            (h.last_health.entries for h in self._handles if h.last_health),
            default=None,
        )
        statuses = []
        for handle in self._handles:
            health = handle.last_health
            statuses.append(
                ReplicaStatus(
                    index=handle.index,
                    address=handle.address,
                    breaker=handle.breaker.state.value,
                    connected=handle.client.connected,
                    entries=health.entries if health else None,
                    chain_head=health.chain_head if health else None,
                    merkle_root=health.merkle_root if health else None,
                    lag=(
                        max_entries - health.entries
                        if health is not None and max_entries is not None
                        else None
                    ),
                    submitted=handle.submitted,
                    skipped=handle.skipped,
                    last_error=handle.last_error,
                )
            )
        return statuses

    def quorum_status(self) -> Dict[str, object]:
        """One dict answering "are we durable on a majority right now?"."""
        closed = sum(
            1 for h in self._handles if h.breaker.state is BreakerState.CLOSED
        )
        with self._counter_lock:
            last_reached = self.last_reached
            degraded = self.degraded_submits
        return {
            "replicas": len(self._handles),
            "quorum": self.quorum,
            "breakers_closed": closed,
            "quorum_met": closed >= self.quorum,
            "last_submit_reached": last_reached,
            "degraded_submits": degraded,
        }

    def divergence(self) -> List[DivergenceEvidence]:
        """All divergence evidence accumulated by the detector."""
        return self.detector.check()

    # -- failover plumbing -------------------------------------------------

    def quiesce(
        self, replica: Optional[int] = None, timeout: float = 5.0
    ) -> bool:
        """Barrier: one synchronous round trip per targeted replica.

        The transport delivers a connection's frames in order and the
        endpoint serves them serially, so a health response proves every
        fire-and-forget frame sent *earlier on that connection* has been
        ingested.  This is the signal an orchestrator needs before
        gracefully restarting a replica's endpoint: bouncing one with
        frames still buffered would discard them silently, and the
        survivor/newcomer histories could fork (which :meth:`catch_up`
        correctly refuses to merge).  Entries parked in spill queues are
        NOT covered -- they live client-side and survive a bounce.

        Returns ``True`` only when every targeted replica answered.
        """
        handles = (
            self._handles if replica is None else [self._handles[replica]]
        )
        ok = True
        for handle in handles:
            try:
                handle.client.health(timeout=timeout)
            except (LoggingError, TransportError) as exc:
                handle.last_error = str(exc)
                ok = False
        return ok

    def reset_replica(self, index: int, address=None) -> None:
        """Point a replica slot at a (possibly new) endpoint address.

        Failover support: a replica that died and came back on a different
        port (or a replacement machine) is re-attached here.  The slot's
        breaker state is preserved -- the newcomer still has to pass a
        half-open probe and, typically, :meth:`catch_up` before it counts
        toward the quorum again.
        """
        handle = self._handles[index]
        handle.client.close()
        if address is not None:
            handle.address = address
        spill_path = None
        if self._spill_dir is not None:
            spill_path = f"{self._spill_dir}/replica-{index}.spill"
        handle.client = RemoteLogger(
            handle.address,
            transport=self._transport,
            spill_path=spill_path,
            flow_control=self.config.flow_control,
            rng=self._rng,
        )
        handle.last_health = None
        handle.last_error = None

    # -- anti-entropy ------------------------------------------------------

    def catch_up(
        self, replica: Optional[int] = None, attempts: int = 3
    ) -> List[CatchUpResult]:
        """Replay missing entries onto lagging replicas from the most
        advanced healthy peer; returns one result per replica attempted.

        The replayed records are chain-verified locally (folding the
        laggard's head through every fetched record must reproduce the
        donor's head) *before* the rejoin is trusted, and the laggard's
        post-replay commitment must equal the donor's -- so a replica
        only rejoins in a commitment-identical state.

        The bulk of the gap is replayed off the submit lock (live
        fan-out keeps flowing); the *final* verification then freezes
        fan-out, closes whatever residual gap live submits opened
        mid-replay, and compares the laggard against the donor's frozen
        commitment -- readmission happens inside that window, so no
        submit can land between a verification and the rejoin.  Failed
        passes (transient connection trouble) are retried up to
        ``attempts`` times per replica.  A *fork* (the donor's suffix
        does not extend the laggard's chain) is never retried: no amount
        of replaying reconciles divergent histories.
        """
        healths: Dict[int, LogCommitment] = {}
        for handle in self._handles:
            try:
                healths[handle.index] = handle.client.health(
                    timeout=self.config.health_timeout
                )
            except (LoggingError, TransportError) as exc:
                handle.last_error = str(exc)
        if not healths:
            raise LoggingError("catch_up: no reachable replica to act on")
        donor_index = max(healths, key=lambda i: healths[i].entries)
        donor = self._handles[donor_index]
        donor_entries = healths[donor_index].entries
        if replica is not None:
            targets = [replica]
        else:
            targets = [
                i
                for i, health in sorted(healths.items())
                if health.entries < donor_entries
            ]
        results = []
        for index in targets:
            if index == donor_index:
                continue
            if index not in healths:
                results.append(
                    CatchUpResult(
                        replica=index,
                        donor=donor_index,
                        replayed=0,
                        discarded_spill=0,
                        ok=False,
                        reason="replica unreachable",
                    )
                )
                continue
            handle = self._handles[index]
            result = None
            for _ in range(max(1, attempts)):
                try:
                    # fresh commitments each pass: the donor may have
                    # advanced while the previous replay was in flight
                    donor_health = donor.client.health(
                        timeout=self.config.health_timeout
                    )
                    lag_health = handle.client.health(
                        timeout=self.config.health_timeout
                    )
                except (LoggingError, TransportError) as exc:
                    result = CatchUpResult(
                        replica=index,
                        donor=donor_index,
                        replayed=0,
                        discarded_spill=0,
                        ok=False,
                        reason=str(exc),
                    )
                    break
                result = self._catch_up_one(handle, lag_health, donor, donor_health)
                if result.ok or "forked" in result.reason:
                    break
            results.append(result)
        return results

    def _replay_gap(
        self,
        handle: _ReplicaHandle,
        lag_health: LogCommitment,
        donor: _ReplicaHandle,
        donor_health: LogCommitment,
    ) -> Optional[int]:
        """Fetch, chain-verify, and replay the records the laggard lacks
        relative to ``donor_health``; returns the count replayed, or
        ``None`` on a fork.  Raises on fetch/connection trouble.

        The whole suffix is fetched and folded BEFORE submitting any of
        it: a fork is only provable once the complete fold is compared
        against the donor's head, and by then a submitted record would
        have buried the forked replica's evidence.

        When the replicas are sharded (``config.shards > 0``), chain heads
        and record indexes are per shard, so the gap is replayed shard by
        shard instead (``lag_health``/``donor_health`` are then aggregate
        set commitments and only their entry counts are meaningful here;
        the per-shard variant refetches per-shard commitments itself).
        """
        if self.config.shards:
            return self._replay_gap_sharded(handle, donor)
        expected_head = lag_health.chain_head
        start = lag_health.entries
        suffix: List[bytes] = []
        while start < donor_health.entries:
            batch = donor.client.fetch_records(
                start, min(self.config.fetch_batch, donor_health.entries - start)
            )
            if not batch:
                raise LoggingError(
                    f"donor {donor.label} returned no records at {start}"
                )
            for record in batch:
                expected_head = chain_digest(expected_head, record)
            suffix.extend(batch)
            start += len(batch)
        if expected_head != donor_health.chain_head:
            # The donor's suffix does not extend the laggard's chain:
            # one of the two forked -- that is divergence, not lag.
            return None
        replayed = 0
        step = max(1, self.config.fetch_batch)
        while replayed < len(suffix):
            batch = suffix[replayed:replayed + step]
            handle.client.submit_batch(batch)
            if not handle.client.connected:
                raise LoggingError(f"{handle.label} connection lost mid-replay")
            replayed += len(batch)
        return replayed

    def _replay_gap_sharded(
        self, handle: _ReplicaHandle, donor: _ReplicaHandle
    ) -> Optional[int]:
        """Per-shard analogue of :meth:`_replay_gap` for sharded replicas.

        Each shard is an independent chain, so the fetch-fold-verify-replay
        cycle runs once per shard against that shard's commitments
        (``OP_HEALTH``/``OP_FETCH`` with a shard tag); replayed records are
        submitted with the shard tag too, so the receiving server verifies
        the routing instead of trusting it.  Returns the total records
        replayed across shards, or ``None`` on any shard's fork.  A shard
        where the laggard is *ahead* of the donor is skipped -- the final
        frozen set-commitment comparison in ``_catch_up_one`` then fails
        honestly rather than inventing a merge.
        """
        total = 0
        timeout = self.config.health_timeout
        for shard in range(self.config.shards):
            donor_health = donor.client.health(timeout=timeout, shard=shard)
            lag_health = handle.client.health(timeout=timeout, shard=shard)
            if lag_health.entries >= donor_health.entries:
                if (
                    lag_health.entries == donor_health.entries
                    and lag_health.chain_head != donor_health.chain_head
                ):
                    return None  # same length, different history: a fork
                continue
            expected_head = lag_health.chain_head
            start = lag_health.entries
            suffix: List[bytes] = []
            while start < donor_health.entries:
                batch = donor.client.fetch_records(
                    start,
                    min(self.config.fetch_batch, donor_health.entries - start),
                    shard=shard,
                )
                if not batch:
                    raise LoggingError(
                        f"donor {donor.label} returned no records at "
                        f"shard {shard} index {start}"
                    )
                for record in batch:
                    expected_head = chain_digest(expected_head, record)
                suffix.extend(batch)
                start += len(batch)
            if expected_head != donor_health.chain_head:
                return None
            replayed = 0
            step = max(1, self.config.fetch_batch)
            while replayed < len(suffix):
                batch = suffix[replayed:replayed + step]
                handle.client.submit_batch(batch, shard=shard)
                if not handle.client.connected:
                    raise LoggingError(
                        f"{handle.label} connection lost mid-replay "
                        f"(shard {shard})"
                    )
                replayed += len(batch)
            total += replayed
        return total

    def _catch_up_one(
        self,
        handle: _ReplicaHandle,
        lag_health: LogCommitment,
        donor: _ReplicaHandle,
        donor_health: LogCommitment,
    ) -> CatchUpResult:
        def failure(reason: str, replayed: int = 0, discarded: int = 0):
            return CatchUpResult(
                replica=handle.index,
                donor=donor.index,
                replayed=replayed,
                discarded_spill=discarded,
                ok=False,
                reason=reason,
            )

        try:
            # Stale parked entries would replay out of canonical order;
            # the donor's records supersede them.
            discarded = handle.client.discard_spill()
            # Key registry first: replayed entries audit as valid only if
            # the replica knows every component's public key.
            for component_id, key in sorted(donor.client.fetch_keys().items()):
                handle.client.register_key(component_id, key)
            # Bulk replay against the snapshots, off the submit lock:
            # live fan-out keeps flowing and may advance the donor past
            # ``donor_health`` while this runs.
            replayed = self._replay_gap(handle, lag_health, donor, donor_health)
            if replayed is None:
                return failure(
                    "chain mismatch: replica and donor have forked",
                    discarded=discarded,
                )
            # Readmission window: freeze fan-out, close whatever residual
            # gap live submits opened during the bulk replay, and verify
            # against the donor's commitment taken INSIDE the freeze.
            # Verifying against the pre-replay snapshot instead would pass
            # while the donor is already ahead, and readmitting the still-
            # lagging replica would fork its chain on the next submit.
            with self._submit_lock:
                donor_now = donor.client.health(timeout=self.config.health_timeout)
                lag_now = handle.client.health(timeout=self.config.health_timeout)
                if lag_now.entries < donor_now.entries:
                    residual = self._replay_gap(handle, lag_now, donor, donor_now)
                    if residual is None:
                        return failure(
                            "chain mismatch: replica and donor have forked",
                            replayed=replayed,
                            discarded=discarded,
                        )
                    replayed += residual
                # The health request rides the same ordered connection as
                # the replayed submits, so its response proves they were
                # ingested.
                final = handle.client.health(timeout=self.config.health_timeout)
                handle.last_health = final
                commitment_identical = (
                    final.entries == donor_now.entries
                    and final.chain_head == donor_now.chain_head
                    and final.merkle_root == donor_now.merkle_root
                )
                if commitment_identical:
                    # Readmit while fan-out is still frozen: the first
                    # submit after the lock releases reaches a replica
                    # that is provably level with the donor.
                    handle.breaker.record_success()
                    handle.last_error = None
        except (LoggingError, TransportError) as exc:
            self._note_failure(handle, str(exc))
            return failure(str(exc))
        if not commitment_identical:
            self._note_failure(handle, "catch-up verification failed")
            return failure(
                "post-replay commitment does not match the donor",
                replayed=replayed,
                discarded=discarded,
            )
        self.detector.observe(handle.label, final)
        return CatchUpResult(
            replica=handle.index,
            donor=donor.index,
            replayed=replayed,
            discarded_spill=discarded,
            ok=True,
        )

    # -- lifecycle ---------------------------------------------------------

    def flush_spill(self) -> bool:
        """Attempt every replica's spill drain; ``True`` if all are empty."""
        with self._submit_lock:
            return all(handle.client.flush_spill() for handle in self._handles)

    def close(self) -> None:
        if self._prober is not None:
            self._prober.stop()
            self._prober = None
        for handle in self._handles:
            handle.client.close()
        self._fanout.shutdown(wait=True)
