"""Cross-replica commitment checking.

Replicating the trusted logger keeps availability, but it also changes the
trust calculus: with one logger, tampering is caught by the hash chain;
with N loggers, a *misbehaving replica* can present an internally
consistent chain that simply differs from its peers'.  The detector makes
that observable: every health probe deposits a ``(entry count -> chain
head, Merkle root)`` snapshot per replica, and any two replicas whose
snapshots share an entry count but disagree on the root are flagged, with
the conflicting roots retained as evidence.

This is the gossip/cross-audit pattern of the related work (clients
comparing the commitments different servers hand out): the logger stays
*trusted but verified* -- a lying replica cannot also match its peers'
roots, because the root commits to every record's bytes and order.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.log_server import LogCommitment

#: Snapshots retained per replica; old counts age out FIFO.  Divergence at
#: any shared count within the window is caught; replicas probed at wildly
#: different cadences may miss overlaps, which catch-up re-checks anyway.
HISTORY_LIMIT = 256


@dataclass(frozen=True)
class DivergenceEvidence:
    """Two (or more) replicas disagreeing at the same entry count.

    ``roots`` and ``heads`` map replica label -> commitment at ``entries``;
    at least two of the roots differ.  This is presentable evidence: the
    roots are recomputable by any investigator holding the replicas'
    records, so a lying replica cannot repudiate its own commitment.
    """

    entries: int
    roots: Tuple[Tuple[str, bytes], ...]
    heads: Tuple[Tuple[str, bytes], ...]

    def replicas(self) -> List[str]:
        return [label for label, _ in self.roots]


class DivergenceDetector:
    """Accumulates per-replica commitment snapshots and flags conflicts."""

    def __init__(self, history_limit: int = HISTORY_LIMIT):
        self._history_limit = history_limit
        # replica label -> (entry count -> (chain head, merkle root))
        self._history: Dict[str, "OrderedDict[int, Tuple[bytes, bytes]]"] = {}
        self._flagged_counts: set = set()
        self._evidence: List[DivergenceEvidence] = []
        self._lock = threading.Lock()

    def observe(self, replica: str, commitment: LogCommitment) -> List[DivergenceEvidence]:
        """Record one replica's commitment; returns any *new* evidence.

        A replica re-reporting a different root for a count it previously
        reported is itself divergence (it rewrote history), and is flagged
        the same way.
        """
        with self._lock:
            history = self._history.setdefault(replica, OrderedDict())
            previous = history.get(commitment.entries)
            snapshot = (commitment.chain_head, commitment.merkle_root)
            if previous is not None and previous != snapshot:
                # self-divergence: same count, different story over time
                evidence = DivergenceEvidence(
                    entries=commitment.entries,
                    roots=(
                        (f"{replica}@earlier", previous[1]),
                        (replica, commitment.merkle_root),
                    ),
                    heads=(
                        (f"{replica}@earlier", previous[0]),
                        (replica, commitment.chain_head),
                    ),
                )
                self._evidence.append(evidence)
                self._flagged_counts.add(commitment.entries)
                return [evidence]
            history[commitment.entries] = snapshot
            while len(history) > self._history_limit:
                history.popitem(last=False)
            return self._check_count_locked(commitment.entries)

    def check(self) -> List[DivergenceEvidence]:
        """All evidence accumulated so far."""
        with self._lock:
            return list(self._evidence)

    def _check_count_locked(self, entries: int) -> List[DivergenceEvidence]:
        if entries in self._flagged_counts:
            return []  # already reported; don't spam identical evidence
        snapshots = [
            (replica, history[entries])
            for replica, history in sorted(self._history.items())
            if entries in history
        ]
        if len(snapshots) < 2:
            return []
        roots = {root for _, (_, root) in snapshots}
        if len(roots) == 1:
            return []
        evidence = DivergenceEvidence(
            entries=entries,
            roots=tuple((replica, root) for replica, (_, root) in snapshots),
            heads=tuple((replica, head) for replica, (head, _) in snapshots),
        )
        self._evidence.append(evidence)
        self._flagged_counts.add(entries)
        return [evidence]
