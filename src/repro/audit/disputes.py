"""Pairwise dispute resolution.

The paper's headline capability: "if there is a dispute between a
non-colluding pair, ADLP can verify whose log entry conforms the reality"
(Section III-C).  :func:`resolve_dispute` takes the two conflicting entries
for one transmission and returns who is to blame, applying the Lemma 3
argument directly.  The :class:`~repro.audit.auditor.Auditor` embeds the
same logic; this standalone form exists for interactive/forensic use and is
what the examples demonstrate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.core.entries import Direction, LogEntry
from repro.crypto.keystore import KeyStore
from repro.errors import AuditError


class Blame(enum.Enum):
    """Outcome of a dispute between publisher and subscriber."""

    NONE = "none"  # entries agree; no dispute
    PUBLISHER = "publisher"  # L_x proven falsified/fabricated
    SUBSCRIBER = "subscriber"  # L_y proven falsified/fabricated
    BOTH = "both"  # neither side's claim is provable
    UNRESOLVABLE = "unresolvable"  # both claims provable (collusion artifact)


@dataclass(frozen=True)
class DisputeVerdict:
    """Who lied, and the evidence trail."""

    blame: Blame
    explanation: str
    publisher_proof_valid: bool
    subscriber_proof_valid: bool
    digests_agree: bool


def resolve_dispute(
    pub_entry: LogEntry,
    sub_entry: LogEntry,
    keystore: KeyStore,
) -> DisputeVerdict:
    """Decide whose entry conforms to reality for one transmission.

    :param pub_entry: the publisher's ``L_x`` (direction OUT).
    :param sub_entry: the subscriber's ``L_y`` (direction IN).
    :param keystore: registered public keys of both components.
    :raises AuditError: if the two entries do not describe the same
        transmission (topic/seq mismatch) or have the wrong directions.
    """
    if pub_entry.direction is not Direction.OUT:
        raise AuditError("pub_entry must be a publication (OUT) entry")
    if sub_entry.direction is not Direction.IN:
        raise AuditError("sub_entry must be a subscription (IN) entry")
    if (pub_entry.topic, pub_entry.seq) != (sub_entry.topic, sub_entry.seq):
        raise AuditError(
            "entries describe different transmissions: "
            f"{pub_entry.topic}#{pub_entry.seq} vs {sub_entry.topic}#{sub_entry.seq}"
        )

    pub_key = keystore.get(pub_entry.component_id)
    sub_key = keystore.get(sub_entry.component_id)

    d_x = pub_entry.reported_hash()
    d_y = sub_entry.reported_hash()
    digests_agree = bool(d_x) and d_x == d_y

    # Authenticity first (eq. 3): an entry failing its own signature is
    # immediately the liar.
    pub_authentic = bool(d_x) and pub_key.verify_digest(d_x, pub_entry.own_sig)
    sub_authentic = bool(d_y) and sub_key.verify_digest(d_y, sub_entry.own_sig)
    if not pub_authentic and not sub_authentic:
        return DisputeVerdict(
            blame=Blame.BOTH,
            explanation="neither entry carries a valid own-signature",
            publisher_proof_valid=False,
            subscriber_proof_valid=False,
            digests_agree=digests_agree,
        )
    if not pub_authentic:
        return DisputeVerdict(
            blame=Blame.PUBLISHER,
            explanation="publisher's own signature does not verify (eq. 3)",
            publisher_proof_valid=False,
            subscriber_proof_valid=sub_authentic,
            digests_agree=digests_agree,
        )
    if not sub_authentic:
        return DisputeVerdict(
            blame=Blame.SUBSCRIBER,
            explanation="subscriber's own signature does not verify (eq. 3)",
            publisher_proof_valid=pub_authentic,
            subscriber_proof_valid=False,
            digests_agree=digests_agree,
        )

    # The cross proofs of Lemma 3.
    sub_proof = bool(sub_entry.peer_sig) and pub_key.verify_digest(d_y, sub_entry.peer_sig)
    pub_proof = (
        bool(pub_entry.peer_sig)
        and sub_key.verify_digest(pub_entry.peer_hash, pub_entry.peer_sig)
        and pub_entry.peer_hash == d_x
    )

    if digests_agree and sub_proof and pub_proof:
        return DisputeVerdict(
            blame=Blame.NONE,
            explanation="entries agree and both counterpart signatures verify",
            publisher_proof_valid=True,
            subscriber_proof_valid=True,
            digests_agree=True,
        )
    if sub_proof and not pub_proof:
        return DisputeVerdict(
            blame=Blame.PUBLISHER,
            explanation=(
                "the subscriber holds the publisher's valid signature for the "
                "data it reports; the publisher's entry reports different data "
                "(Lemma 3 i: falsification by the publisher)"
            ),
            publisher_proof_valid=False,
            subscriber_proof_valid=True,
            digests_agree=digests_agree,
        )
    if pub_proof and not sub_proof:
        return DisputeVerdict(
            blame=Blame.SUBSCRIBER,
            explanation=(
                "the publisher holds the subscriber's valid acknowledgement for "
                "the data it reports; the subscriber cannot prove its differing "
                "claim (Lemma 3 ii: false accusation by the subscriber)"
            ),
            publisher_proof_valid=True,
            subscriber_proof_valid=False,
            digests_agree=digests_agree,
        )
    if not pub_proof and not sub_proof:
        return DisputeVerdict(
            blame=Blame.BOTH,
            explanation="neither entry's counterpart signature verifies",
            publisher_proof_valid=False,
            subscriber_proof_valid=False,
            digests_agree=digests_agree,
        )
    return DisputeVerdict(
        blame=Blame.UNRESOLVABLE,
        explanation=(
            "both counterpart proofs verify yet the digests disagree -- only "
            "possible if both components signed multiple payloads for one "
            "sequence number, i.e. they colluded"
        ),
        publisher_proof_valid=True,
        subscriber_proof_valid=True,
        digests_agree=digests_agree,
    )
