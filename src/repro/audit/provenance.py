"""Data-flow provenance from audited logs.

The point of collecting accountable logs (Section I/II): "a well-
constructed log of data flow among software components can help detect the
origin of a faulty operation by keeping track of dependencies between data
production (output) and consumption (input)".  This module reconstructs
those dependencies after the fact:

- every log entry contributes a **data item** node ``(topic, seq)`` and a
  produced/consumed edge to its component;
- inside each component, an output item is inferred to depend on the most
  recent input item of each subscribed topic whose consumption timestamp
  precedes the production timestamp (the paper notes components may keep
  more precise internal provenance; absent that, temporal order is the
  best the transmission log supports -- hence Lemma 4's insistence that
  timestamps be causally consistent).

Typical forensic query: the car braked wrongly at ``/control/steering``
seq 812 -- :meth:`ProvenanceGraph.lineage` returns every upstream data
item (e.g. the exact camera frame) and :meth:`ProvenanceGraph.suspects`
every component that touched the causal chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.entries import Direction, LogEntry


@dataclass(frozen=True)
class DataItem:
    """One published datum, identified by its topic and sequence number."""

    topic: str
    seq: int

    def __str__(self) -> str:
        return f"{self.topic}#{self.seq}"


def _item_node(item: DataItem) -> Tuple[str, str, int]:
    return ("item", item.topic, item.seq)


def _component_node(component_id: str) -> Tuple[str, str]:
    return ("component", component_id)


class ProvenanceGraph:
    """A dependency graph over data items and components.

    Edges point in the direction of data flow:
    ``producer -> item -> consumer`` and, within a component,
    ``input item -> output item``.
    """

    def __init__(self, entries: Sequence[LogEntry]):
        self.graph = nx.DiGraph()
        self._build(entries)

    # -- construction ---------------------------------------------------

    def _build(self, entries: Sequence[LogEntry]) -> None:
        productions: Dict[str, List[LogEntry]] = {}
        consumptions: Dict[str, List[LogEntry]] = {}
        for entry in entries:
            item = DataItem(entry.topic, entry.seq)
            item_node = _item_node(item)
            comp_node = _component_node(entry.component_id)
            self.graph.add_node(item_node, kind="item", item=item)
            self.graph.add_node(comp_node, kind="component")
            if entry.direction is Direction.OUT:
                self.graph.add_edge(comp_node, item_node, kind="produced",
                                    timestamp=entry.timestamp)
                productions.setdefault(entry.component_id, []).append(entry)
            elif entry.direction is Direction.IN:
                self.graph.add_edge(item_node, comp_node, kind="consumed",
                                    timestamp=entry.timestamp)
                consumptions.setdefault(entry.component_id, []).append(entry)

        # Intra-component inference: each output depends on the latest
        # prior input per topic.
        for component_id, outputs in productions.items():
            inputs = sorted(
                consumptions.get(component_id, []), key=lambda e: e.timestamp
            )
            for out_entry in outputs:
                latest_per_topic: Dict[str, LogEntry] = {}
                for in_entry in inputs:
                    if in_entry.timestamp > out_entry.timestamp:
                        break
                    latest_per_topic[in_entry.topic] = in_entry
                for in_entry in latest_per_topic.values():
                    self.graph.add_edge(
                        _item_node(DataItem(in_entry.topic, in_entry.seq)),
                        _item_node(DataItem(out_entry.topic, out_entry.seq)),
                        kind="derived",
                    )

    def _derived_only(self) -> "nx.DiGraph":
        """Item-to-item dependency subgraph (cross-hop flow + intra-
        component derivations); component nodes excluded so unrelated
        inputs/outputs of one component do not leak into each other's
        lineage."""
        view = nx.DiGraph()
        for n, data in self.graph.nodes(data=True):
            if data.get("kind") == "item":
                view.add_node(n, **data)
        for u, v, data in self.graph.edges(data=True):
            if data.get("kind") == "derived":
                view.add_edge(u, v)
        return view

    # -- queries ----------------------------------------------------------

    def has_item(self, topic: str, seq: int) -> bool:
        return _item_node(DataItem(topic, seq)) in self.graph

    def lineage(self, topic: str, seq: int) -> List[DataItem]:
        """All upstream data items the given item (transitively) depends on,
        oldest-first by topic/seq."""
        node = _item_node(DataItem(topic, seq))
        if node not in self.graph:
            raise KeyError(f"unknown data item {topic}#{seq}")
        view = self._derived_only()
        ancestors = nx.ancestors(view, node) if node in view else set()
        items = [view.nodes[n]["item"] for n in ancestors]
        return sorted(items, key=lambda i: (i.topic, i.seq))

    def descendants(self, topic: str, seq: int) -> List[DataItem]:
        """All downstream items (transitively) derived from the given item --
        the blast radius of a corrupted datum."""
        node = _item_node(DataItem(topic, seq))
        if node not in self.graph:
            raise KeyError(f"unknown data item {topic}#{seq}")
        view = self._derived_only()
        downstream = nx.descendants(view, node) if node in view else set()
        items = [view.nodes[n]["item"] for n in downstream]
        return sorted(items, key=lambda i: (i.topic, i.seq))

    def suspects(self, topic: str, seq: int) -> List[str]:
        """Components on the causal chain of an item: every producer or
        consumer of the item itself or anything in its lineage."""
        chain = self.lineage(topic, seq) + [DataItem(topic, seq)]
        involved: Set[str] = set()
        for item in chain:
            node = _item_node(item)
            for pred in self.graph.predecessors(node):
                if self.graph.nodes[pred].get("kind") == "component":
                    involved.add(pred[1])
            for succ in self.graph.successors(node):
                if self.graph.nodes[succ].get("kind") == "component":
                    involved.add(succ[1])
        return sorted(involved)

    def producer_of(self, topic: str, seq: int) -> Optional[str]:
        """The component whose log claims production of the item."""
        node = _item_node(DataItem(topic, seq))
        if node not in self.graph:
            return None
        for pred in self.graph.predecessors(node):
            if self.graph.nodes[pred].get("kind") == "component":
                return pred[1]
        return None
