"""Online (streaming) auditing.

The paper notes the logger choice depends on "the need for on-line
analysis" (Section II-A).  :class:`OnlineAuditor` consumes entries as they
are ingested and raises findings within a bounded delay, instead of
waiting for a post-incident batch audit:

- entries are verified (phase-1 obvious detection) immediately;
- each transmission's two entries are matched as they arrive; a pair is
  judged the moment both sides are present;
- a one-sided transmission is judged after ``grace_period`` seconds of
  waiting for the counterpart -- producing the hidden-entry inference of
  Lemma 2 *during operation*, e.g. to alert on a component that silently
  stopped logging.

Findings are delivered to a callback; the auditor also keeps an
accumulating :class:`~repro.audit.verdicts.AuditReport`-compatible view
via :meth:`snapshot`.

Time is taken from an injectable clock so tests drive it deterministically.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.audit.auditor import Auditor, Topology
from repro.audit.verdicts import AuditReport
from repro.core.entries import Direction, LogEntry
from repro.crypto.keystore import KeyStore
from repro.crypto.verifypool import VerifyPool
from repro.util.clock import Clock, SystemClock

#: key identifying one transmission: (topic, seq, subscriber)
_TransKey = Tuple[str, int, str]


@dataclass(frozen=True)
class OnlineFinding:
    """One incremental result pushed to the callback."""

    kind: str  # "invalid" | "hidden" | "anomaly"
    component_id: str
    topic: str
    seq: int
    detail: str


class OnlineAuditor:
    """Incremental wrapper around the batch :class:`Auditor`.

    Entries accumulate in per-transmission buckets; completed (or expired)
    buckets are audited in isolation, which is sound because the batch
    algorithm judges transmissions independently (phase-1 replay detection
    is handled by the online layer's own seen-set).
    """

    def __init__(
        self,
        keystore: KeyStore,
        topology: Optional[Topology] = None,
        grace_period: float = 1.0,
        on_finding: Optional[Callable[[OnlineFinding], None]] = None,
        clock: Optional[Clock] = None,
        verify_sample_rate: float = 1.0,
        sample_seed: Optional[int] = None,
    ):
        if not 0.0 <= verify_sample_rate <= 1.0:
            raise ValueError("verify_sample_rate must be within [0, 1]")
        self._keystore = keystore
        self._auditor = Auditor(keystore, topology)
        self._topology = topology
        self.grace_period = grace_period
        #: fraction of completed transmissions judged inline; the rest are
        #: deferred to :meth:`final_audit` (amortized verification)
        self.verify_sample_rate = verify_sample_rate
        self._sample_rng = random.Random(sample_seed)
        self._on_finding = on_finding or (lambda finding: None)
        self._clock = clock or SystemClock()
        self._pending: Dict[_TransKey, Tuple[float, List[LogEntry]]] = {}
        self._findings: List[OnlineFinding] = []
        self._judged_entries = 0
        self._seen_entries: List[LogEntry] = []
        self._sampled_transmissions = 0
        self._deferred_transmissions = 0
        self._lock = threading.Lock()

    # -- attachment ---------------------------------------------------------

    @classmethod
    def attach(
        cls,
        server,
        topology: Optional[Topology] = None,
        grace_period: float = 1.0,
        on_finding: Optional[Callable[[OnlineFinding], None]] = None,
        clock: Optional[Clock] = None,
        verify_sample_rate: float = 1.0,
        sample_seed: Optional[int] = None,
    ) -> "OnlineAuditor":
        """Create an auditor fed live by a
        :class:`~repro.core.log_server.LogServer`'s ingestion stream.

        Call :meth:`detach` (or keep polling) when done.
        """
        auditor = cls(
            server.keystore,
            topology,
            grace_period=grace_period,
            on_finding=on_finding,
            clock=clock,
            verify_sample_rate=verify_sample_rate,
            sample_seed=sample_seed,
        )
        server.add_observer(auditor.ingest)
        auditor._attached_server = server
        return auditor

    def detach(self) -> None:
        """Stop receiving entries from the attached server."""
        server = getattr(self, "_attached_server", None)
        if server is not None:
            server.remove_observer(self.ingest)
            self._attached_server = None

    # -- ingestion -------------------------------------------------------

    def _keys_for(self, entry: LogEntry) -> List[_TransKey]:
        if entry.direction is Direction.IN:
            return [(entry.topic, entry.seq, entry.component_id)]
        if entry.aggregated:
            return [
                (entry.topic, entry.seq, sid) for sid in entry.ack_peer_ids
            ]
        return [(entry.topic, entry.seq, entry.peer_id)]

    def ingest(self, entry: LogEntry) -> None:
        """Feed one entry; judges its transmission if now complete."""
        now = self._clock.now()
        ready: List[List[LogEntry]] = []
        with self._lock:
            self._seen_entries.append(entry)
            for key in self._keys_for(entry):
                deadline_entries = self._pending.get(key)
                if deadline_entries is None:
                    self._pending[key] = (now + self.grace_period, [entry])
                else:
                    _, entries = deadline_entries
                    entries.append(entry)
                    directions = {e.direction for e in entries}
                    if {Direction.OUT, Direction.IN} <= directions:
                        ready.append(entries)
                        del self._pending[key]
        for bucket in ready:
            self._judge(bucket)
        self.poll()

    def poll(self) -> None:
        """Judge transmissions whose grace period expired (call this
        periodically, or after advancing a simulated clock)."""
        now = self._clock.now()
        expired: List[List[LogEntry]] = []
        with self._lock:
            for key in list(self._pending):
                deadline, entries = self._pending[key]
                if now >= deadline:
                    expired.append(entries)
                    del self._pending[key]
        for bucket in expired:
            self._judge(bucket)

    def drain(self) -> None:
        """Judge everything still pending, grace period notwithstanding."""
        with self._lock:
            buckets = [entries for _, entries in self._pending.values()]
            self._pending.clear()
        for bucket in buckets:
            self._judge(bucket)

    # -- judging ----------------------------------------------------------

    @staticmethod
    def _findings_from(report: AuditReport) -> List[OnlineFinding]:
        findings: List[OnlineFinding] = []
        for classified in report.invalid_entries():
            findings.append(
                OnlineFinding(
                    kind="invalid",
                    component_id=classified.component_id,
                    topic=classified.entry.topic,
                    seq=classified.entry.seq,
                    detail=",".join(r.value for r in classified.reasons),
                )
            )
        for hidden in report.hidden:
            findings.append(
                OnlineFinding(
                    kind="hidden",
                    component_id=hidden.component_id,
                    topic=hidden.transmission.topic,
                    seq=hidden.transmission.seq,
                    detail=hidden.reason.value,
                )
            )
        for anomaly in report.anomalies:
            findings.append(
                OnlineFinding(
                    kind="anomaly",
                    component_id=anomaly.transmission.publisher,
                    topic=anomaly.transmission.topic,
                    seq=anomaly.transmission.seq,
                    detail="double_signing",
                )
            )
        return findings

    def _judge(self, entries: List[LogEntry]) -> None:
        if (
            self.verify_sample_rate < 1.0
            and self._sample_rng.random() >= self.verify_sample_rate
        ):
            # Amortized mode: skip the inline verification for this
            # transmission; :meth:`final_audit` still covers it, so
            # detection is delayed, never lost.
            with self._lock:
                self._deferred_transmissions += 1
            return
        report = self._auditor.audit(entries)
        emitted = self._findings_from(report)
        with self._lock:
            self._sampled_transmissions += 1
            self._findings.extend(emitted)
            self._judged_entries += len(entries)
        for finding in emitted:
            self._on_finding(finding)

    def final_audit(
        self, verify_pool: Optional[VerifyPool] = None
    ) -> AuditReport:
        """Batch-audit *everything* ingested so far (drains pending
        buckets first) and return the full report.

        This is the second half of amortized verification: transmissions
        the sampler skipped inline are verified here, optionally on a
        :class:`~repro.crypto.verifypool.VerifyPool`.  Findings the
        inline pass has not already reported are pushed to the callback.
        """
        self.drain()
        with self._lock:
            entries = list(self._seen_entries)
        auditor = Auditor(
            self._keystore, self._topology, verify_pool=verify_pool
        )
        report = auditor.audit(entries)
        candidates = self._findings_from(report)
        with self._lock:
            known = set(self._findings)
            fresh = [f for f in candidates if f not in known]
            self._findings.extend(fresh)
        for finding in fresh:
            self._on_finding(finding)
        return report

    # -- continuous verification (STH gossip) -----------------------------

    def watch_gossip(self, relay) -> None:
        """Continuously-verified mode: subscribe to a
        :class:`~repro.gossip.relay.GossipRelay` so proven logger
        equivocation surfaces through the same findings stream as
        entry-level misbehavior.

        The resulting findings use ``kind="equivocation"`` with the
        convicted *log id* in the ``component_id`` slot -- here the
        accountable party is the logger itself, not a pub/sub component.
        """
        relay.add_listener(self._on_equivocation)
        self._watched_relays = getattr(self, "_watched_relays", [])
        self._watched_relays.append(relay)
        # Evidence the relay accumulated before we subscribed still counts.
        for evidence in relay.evidence():
            self._on_equivocation(evidence)

    def _on_equivocation(self, evidence) -> None:
        finding = OnlineFinding(
            kind="equivocation",
            component_id=evidence.log_id,
            topic=f"sth-scope-{evidence.scope}",
            seq=evidence.second.entries,
            detail=evidence.describe(),
        )
        with self._lock:
            if any(
                f.kind == "equivocation" and f.detail == finding.detail
                for f in self._findings
            ):
                return  # already reported (e.g. pre-subscription replay)
            self._findings.append(finding)
        self._on_finding(finding)

    # -- inspection ---------------------------------------------------------

    @property
    def findings(self) -> List[OnlineFinding]:
        with self._lock:
            return list(self._findings)

    @property
    def pending_transmissions(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def judged_entries(self) -> int:
        with self._lock:
            return self._judged_entries

    @property
    def sampled_transmissions(self) -> int:
        """Completed transmissions the inline pass actually verified."""
        with self._lock:
            return self._sampled_transmissions

    @property
    def deferred_transmissions(self) -> int:
        """Completed transmissions deferred to :meth:`final_audit`."""
        with self._lock:
            return self._deferred_transmissions

    def flagged_components(self) -> List[str]:
        """Components with any finding so far."""
        with self._lock:
            return sorted({f.component_id for f in self._findings})
