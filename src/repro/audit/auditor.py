"""The main audit algorithm.

Implements the classification goal of Section III-C using the machinery the
lemmas of Section IV-B rely on:

1. **Obvious detection** (eq. 3): every entry's own signature must verify
   under the owner's registered public key, for the digest of the data the
   entry reports; OUT entries must come from the topic's unique publisher.

2. **Pairwise verification** (Lemmas 1-3): for every transmission
   ``D_{x->y}`` identified by ``(topic, seq, subscriber)``, the publisher's
   entry ``L_x`` and the subscriber's entry ``L_y`` are checked against each
   other via the *counterpart* signatures they embed: ``L_y`` is proven by
   the publisher's signature ``s''_x`` it reports, ``L_x`` by the
   subscriber's acknowledgement signature ``s'_y``.  Disagreeing digests
   convict the side whose proof fails (Lemma 3); a missing counterpart entry
   whose transmission is proven by the present side's embedded signature is
   inferred **hidden** (Lemma 2).

The guarantees match the paper: every faithful component's entries are
classified valid (Theorem 1), and in a collusion-free run every unfaithful
act is attributed (Theorem 2).  Colluding pairs can still manufacture
mutually consistent lies; those are classified valid, exactly as the paper
concedes (:math:`\\widehat{L_V} \\subseteq L_{V,f}` need not hold).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.audit.verdicts import (
    AuditReport,
    ClassifiedEntry,
    EntryClass,
    HiddenRecord,
    Reason,
    TransmissionId,
)
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.log_server import LogServer
from repro.crypto.keys import PublicKey
from repro.crypto.keystore import KeyStore
from repro.crypto.verifypool import VerifyPool


@dataclass
class Topology:
    """Deployment knowledge the auditor may be given a priori.

    The system model guarantees a topic's type uniquely identifies its
    publisher (Section II), so investigators know ``publisher_of``.  When a
    topology is not supplied, the auditor falls back to majority evidence
    from the log itself.
    """

    publisher_of: Dict[str, str] = field(default_factory=dict)
    subscribers_of: Dict[str, List[str]] = field(default_factory=dict)
    #: expected message type per topic; entries disagreeing with it are
    #: "obviously detectable" (Section IV-B)
    type_of: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_master(cls, master) -> "Topology":
        """Capture the live middleware graph (for online audits)."""
        topology = cls()
        for topic, type_name in master.topics().items():
            info = master.lookup_publisher(topic)
            if info is not None:
                topology.publisher_of[topic] = info.node_id
            topology.subscribers_of[topic] = master.subscriber_ids(topic)
            topology.type_of[topic] = type_name
        return topology

    @classmethod
    def from_entries(cls, entries: List[LogEntry]) -> "Topology":
        """Best-effort topology from the log: per topic, the component most
        often named as publisher (by subscribers' ``peer_id``) or claiming
        OUT entries."""
        votes: Dict[str, Dict[str, int]] = {}
        subscribers: Dict[str, Set[str]] = {}
        for entry in entries:
            if entry.direction is Direction.OUT:
                votes.setdefault(entry.topic, {})
                votes[entry.topic][entry.component_id] = (
                    votes[entry.topic].get(entry.component_id, 0) + 1
                )
            elif entry.direction is Direction.IN:
                subscribers.setdefault(entry.topic, set()).add(entry.component_id)
                if entry.peer_id:
                    votes.setdefault(entry.topic, {})
                    votes[entry.topic][entry.peer_id] = (
                        votes[entry.topic].get(entry.peer_id, 0) + 1
                    )
        topology = cls()
        for topic, counts in votes.items():
            topology.publisher_of[topic] = max(counts, key=counts.get)
        for topic, subs in subscribers.items():
            topology.subscribers_of[topic] = sorted(subs)
        return topology


@dataclass
class _PubView:
    """One publisher entry's claim toward one subscriber."""

    entry: LogEntry
    subscriber: str
    peer_hash: bytes
    peer_sig: bytes
    index: int  # index of the parent entry in the input list


class Auditor:
    """Classifies a log into valid / invalid / hidden (Figure 5).

    :param verify_pool: optional :class:`~repro.crypto.verifypool.VerifyPool`.
        When given, :meth:`audit` pre-verifies every signature the
        classification will need as one batch on the pool's worker
        processes and the phases read the cached booleans; any check the
        pre-pass did not anticipate falls back to inline verification, so
        pooled and unpooled audits return identical reports.
    """

    def __init__(
        self,
        keystore: KeyStore,
        topology: Optional[Topology] = None,
        verify_pool: Optional[VerifyPool] = None,
    ):
        self._keystore = keystore
        self._topology = topology
        self._verify_pool = verify_pool
        # (serialized key, digest, signature) -> verified?; filled per audit
        self._verify_cache: Dict[Tuple[bytes, bytes, bytes], bool] = {}
        # memoized PublicKey.to_bytes(), keyed by object identity (the
        # keystore hands out the same frozen instance per component)
        self._key_bytes: Dict[int, bytes] = {}

    @classmethod
    def for_server(
        cls,
        server: LogServer,
        topology: Optional[Topology] = None,
        verify_pool: Optional[VerifyPool] = None,
    ) -> "Auditor":
        return cls(server.keystore, topology, verify_pool=verify_pool)

    def audit_server(self, server: LogServer) -> AuditReport:
        """Verify store integrity, then audit all entries."""
        server.verify_integrity()
        return self.audit(server.entries())

    # ------------------------------------------------------------------

    def audit(self, entries: List[LogEntry]) -> AuditReport:
        """Run the full classification over ``entries``."""
        topology = self._topology or Topology.from_entries(entries)
        if self._verify_pool is not None:
            self._precompute_verifications(entries, topology)
        report = AuditReport()

        # verdict slot per input entry; filled in phases 1 and 2
        verdicts: List[Optional[Tuple[EntryClass, Tuple[Reason, ...]]]] = [
            None
        ] * len(entries)
        transmissions: List[Optional[TransmissionId]] = [None] * len(entries)

        usable = self._phase1_obvious(entries, topology, verdicts)
        self._phase2_pairwise(entries, topology, verdicts, transmissions, usable, report)

        for i, entry in enumerate(entries):
            verdict = verdicts[i]
            if verdict is None:
                # An ADLP entry that never matched any transmission pairing
                # (e.g. an OUT entry whose topic nobody audits); by Lemma 1
                # an unpaired entry proves nothing.
                verdict = (EntryClass.INVALID, (Reason.UNPROVEN_PUBLICATION,))
            report.classified.append(
                ClassifiedEntry(
                    entry=entry,
                    verdict=verdict[0],
                    reasons=verdict[1],
                    transmission=transmissions[i],
                )
            )
        report._account()
        return report

    # -- pooled verification -------------------------------------------

    def _serialized(self, key: PublicKey) -> bytes:
        cached = self._key_bytes.get(id(key))
        if cached is None:
            cached = key.to_bytes()
            self._key_bytes[id(key)] = cached
        return cached

    def _verify(self, key: PublicKey, digest: bytes, signature: bytes) -> bool:
        """One signature check, served from the pool's batch when it was
        anticipated by :meth:`_precompute_verifications`, inline otherwise
        -- so a pool can only speed an audit up, never change its report."""
        if self._verify_cache:
            hit = self._verify_cache.get(
                (self._serialized(key), digest, signature)
            )
            if hit is not None:
                return hit
        return key.verify_digest(digest, signature)

    def _precompute_verifications(
        self, entries: List[LogEntry], topology: Topology
    ) -> None:
        """Collect every (digest, sig, key) triple the two phases will
        check -- own signatures, the publisher signature each IN entry
        reports, the ACK signature behind each OUT view -- and verify the
        whole batch on the pool."""
        wanted: Dict[Tuple[bytes, bytes, bytes], None] = {}

        def want(key: Optional[PublicKey], digest: bytes, signature: bytes) -> None:
            if key is not None and digest and signature:
                wanted[(self._serialized(key), digest, signature)] = None

        for i, entry in enumerate(entries):
            if entry.scheme is not Scheme.ADLP:
                continue
            own_key = self._keystore.find(entry.component_id)
            digest = entry.reported_hash()
            want(own_key, digest, entry.own_sig)
            if entry.direction is Direction.IN:
                publisher = topology.publisher_of.get(entry.topic)
                pub_key = self._keystore.find(publisher) if publisher else None
                want(pub_key, digest, entry.peer_sig)
            else:
                for view in self._pub_views(entry, i):
                    if view.subscriber:
                        want(
                            self._keystore.find(view.subscriber),
                            view.peer_hash,
                            view.peer_sig,
                        )
        triples = [(digest, sig, kb) for kb, digest, sig in wanted]
        results = self._verify_pool.verify_batch(triples)
        self._verify_cache = {
            key: result for key, result in zip(wanted, results)
        }

    # -- phase 1: obvious detection ------------------------------------

    def _phase1_obvious(
        self,
        entries: List[LogEntry],
        topology: Topology,
        verdicts: List[Optional[Tuple[EntryClass, Tuple[Reason, ...]]]],
    ) -> List[int]:
        """Classify obviously invalid entries; return indices that survive."""
        usable: List[int] = []
        seen_in: Set[Tuple[str, str, int]] = set()
        seen_out: Set[Tuple[str, str, int, str]] = set()
        for i, entry in enumerate(entries):
            reasons: List[Reason] = []
            if entry.scheme is not Scheme.ADLP:
                # Naive/no-scheme entries carry no cryptographic commitment:
                # nothing about them is provable (the paper's motivation).
                verdicts[i] = (EntryClass.INVALID, (Reason.UNVERIFIABLE_SCHEME,))
                continue
            key = self._keystore.find(entry.component_id)
            if key is None:
                verdicts[i] = (EntryClass.INVALID, (Reason.UNKNOWN_COMPONENT,))
                continue
            digest = entry.reported_hash()
            if not digest or not entry.own_sig:
                verdicts[i] = (EntryClass.INVALID, (Reason.MISSING_COMMITMENT,))
                continue
            if not self._verify(key, digest, entry.own_sig):
                # eq. (3) fails: also covers impersonation -- an entry
                # written under someone else's id cannot carry their
                # signature (footnote on "Obvious Detection").
                verdicts[i] = (EntryClass.INVALID, (Reason.BAD_OWN_SIGNATURE,))
                continue
            expected_type = topology.type_of.get(entry.topic)
            if expected_type is not None and entry.type_name != expected_type:
                # "type(D_x) = type(D'_x) = ... always hold because
                # otherwise it is obviously detectable" (Section IV-B).
                verdicts[i] = (EntryClass.INVALID, (Reason.TYPE_MISMATCH,))
                continue
            if entry.direction is Direction.OUT:
                expected = topology.publisher_of.get(entry.topic)
                if expected is not None and expected != entry.component_id:
                    verdicts[i] = (EntryClass.INVALID, (Reason.NOT_TOPIC_PUBLISHER,))
                    continue
                for subscriber in self._entry_subscribers(entry):
                    out_key = (entry.component_id, entry.topic, entry.seq, subscriber)
                    if out_key in seen_out:
                        reasons.append(Reason.REPLAYED_SEQUENCE)
                        break
                    seen_out.add(out_key)
            else:
                in_key = (entry.component_id, entry.topic, entry.seq)
                if in_key in seen_in:
                    reasons.append(Reason.REPLAYED_SEQUENCE)
                seen_in.add(in_key)
            if Reason.REPLAYED_SEQUENCE in reasons:
                verdicts[i] = (EntryClass.INVALID, (Reason.REPLAYED_SEQUENCE,))
                continue
            usable.append(i)
        return usable

    @staticmethod
    def _entry_subscribers(entry: LogEntry) -> List[str]:
        """Subscribers an OUT entry claims ACKs from ('' for no-ACK)."""
        if entry.aggregated:
            return list(entry.ack_peer_ids)
        return [entry.peer_id]

    @staticmethod
    def _pub_views(entry: LogEntry, index: int) -> List[_PubView]:
        """Per-subscriber views of an OUT entry (aggregation-aware)."""
        if entry.aggregated:
            return [
                _PubView(entry, sid, shash, ssig, index)
                for sid, shash, ssig in zip(
                    entry.ack_peer_ids, entry.ack_peer_hashes, entry.ack_peer_sigs
                )
            ]
        return [_PubView(entry, entry.peer_id, entry.peer_hash, entry.peer_sig, index)]

    # -- phase 2: pairwise verification ----------------------------------

    def _phase2_pairwise(
        self,
        entries: List[LogEntry],
        topology: Topology,
        verdicts: List[Optional[Tuple[EntryClass, Tuple[Reason, ...]]]],
        transmissions: List[Optional[TransmissionId]],
        usable: List[int],
        report: AuditReport,
    ) -> None:
        # Index usable entries by transmission.
        pub_views: Dict[Tuple[str, int], Dict[str, _PubView]] = {}
        sub_entries: Dict[Tuple[str, int], Dict[str, int]] = {}
        for i in usable:
            entry = entries[i]
            key = (entry.topic, entry.seq)
            if entry.direction is Direction.OUT:
                views = pub_views.setdefault(key, {})
                for view in self._pub_views(entry, i):
                    views.setdefault(view.subscriber, view)
            else:
                subs = sub_entries.setdefault(key, {})
                subs.setdefault(entry.component_id, i)

        # Aggregated entries collect per-view verdicts and combine at the end.
        view_verdicts: Dict[int, List[Tuple[EntryClass, Tuple[Reason, ...]]]] = {}

        all_keys = set(pub_views) | set(sub_entries)
        for topic, seq in sorted(all_keys):
            views = pub_views.get((topic, seq), {})
            subs = sub_entries.get((topic, seq), {})
            publisher = topology.publisher_of.get(topic)
            if publisher is None and views:
                publisher = next(iter(views.values())).entry.component_id
            for subscriber in sorted(set(views) | set(subs)):
                if not subscriber:
                    # publisher view with no ACK: handled below via its entry
                    continue
                self._judge_pair(
                    topic,
                    seq,
                    publisher,
                    subscriber,
                    views.get(subscriber),
                    subs.get(subscriber),
                    entries,
                    verdicts,
                    transmissions,
                    view_verdicts,
                    report,
                )
            # OUT views with no acknowledged subscriber (ACK timeout)
            no_ack = views.get("")
            if no_ack is not None:
                self._record_view_verdict(
                    no_ack,
                    (EntryClass.INVALID, (Reason.UNPROVEN_PUBLICATION,)),
                    verdicts,
                    view_verdicts,
                )
                transmissions[no_ack.index] = TransmissionId(
                    topic=topic, seq=seq, publisher=publisher or "", subscriber=""
                )

        # combine per-view verdicts of aggregated entries
        for index, per_view in view_verdicts.items():
            if verdicts[index] is not None:
                continue
            if all(v[0] is EntryClass.VALID for v in per_view):
                reasons = tuple(sorted({r for v in per_view for r in v[1]}, key=str))
                verdicts[index] = (EntryClass.VALID, reasons)
            else:
                reasons = tuple(
                    sorted(
                        {
                            r
                            for v in per_view
                            if v[0] is EntryClass.INVALID
                            for r in v[1]
                        },
                        key=str,
                    )
                )
                verdicts[index] = (EntryClass.INVALID, reasons)

    def _record_view_verdict(
        self,
        view: _PubView,
        verdict: Tuple[EntryClass, Tuple[Reason, ...]],
        verdicts: List[Optional[Tuple[EntryClass, Tuple[Reason, ...]]]],
        view_verdicts: Dict[int, List[Tuple[EntryClass, Tuple[Reason, ...]]]],
    ) -> None:
        if view.entry.aggregated:
            view_verdicts.setdefault(view.index, []).append(verdict)
        else:
            verdicts[view.index] = verdict

    def _judge_pair(
        self,
        topic: str,
        seq: int,
        publisher: Optional[str],
        subscriber: str,
        pub_view: Optional[_PubView],
        sub_index: Optional[int],
        entries: List[LogEntry],
        verdicts: List[Optional[Tuple[EntryClass, Tuple[Reason, ...]]]],
        transmissions: List[Optional[TransmissionId]],
        view_verdicts: Dict[int, List[Tuple[EntryClass, Tuple[Reason, ...]]]],
        report: AuditReport,
    ) -> None:
        """Apply Lemmas 1-3 to one (topic, seq, subscriber) transmission."""
        transmission = TransmissionId(
            topic=topic, seq=seq, publisher=publisher or "", subscriber=subscriber
        )
        pub_key = self._keystore.find(publisher) if publisher else None
        sub_key = self._keystore.find(subscriber)

        sub_entry = entries[sub_index] if sub_index is not None else None
        if sub_index is not None:
            transmissions[sub_index] = transmission
        if pub_view is not None:
            transmissions[pub_view.index] = transmission

        # The subscriber's proof: the publisher's signature it reports must
        # verify (under the publisher's key) for the digest it reports.
        sub_proof = False
        if sub_entry is not None and pub_key is not None and sub_entry.peer_sig:
            sub_proof = self._verify(
                pub_key, sub_entry.reported_hash(), sub_entry.peer_sig
            )

        # The publisher's proof: the subscriber's ACK signature it reports
        # must verify for the acknowledged hash, and that hash must equal
        # the digest of the data the publisher claims to have sent.
        pub_proof = False
        pub_consistent = False
        if pub_view is not None and sub_key is not None and pub_view.peer_sig:
            pub_proof = self._verify(sub_key, pub_view.peer_hash, pub_view.peer_sig)
            pub_consistent = pub_view.peer_hash == pub_view.entry.reported_hash()

        if pub_view is not None and sub_entry is not None:
            digests_agree = (
                pub_view.entry.reported_hash() == sub_entry.reported_hash()
            )
            if sub_proof and pub_proof and pub_consistent and not digests_agree:
                # Both counterpart proofs verify for different digests:
                # each party signed two payloads for one seq -- provable
                # pairwise collusion (cf. DisputeVerdict UNRESOLVABLE).
                from repro.audit.verdicts import PairAnomaly

                report.anomalies.append(
                    PairAnomaly(
                        transmission=transmission,
                        publisher_digest=pub_view.entry.reported_hash(),
                        subscriber_digest=sub_entry.reported_hash(),
                    )
                )
            # subscriber side
            if sub_proof:
                reason = (
                    Reason.CONSISTENT_PAIR if digests_agree else Reason.COUNTERPART_ACK
                )
                verdicts[sub_index] = (EntryClass.VALID, (reason,))
            else:
                # By (4) a faithful publisher's M_x carried a valid pair, so
                # an unverifiable claimed s''_x means L_y lied (Lemma 3 ii /
                # Figure 8 (b)).
                verdicts[sub_index] = (
                    EntryClass.INVALID,
                    (Reason.FALSIFIED_DATA if not digests_agree else Reason.FABRICATED,),
                )
            # publisher side
            if pub_proof and pub_consistent:
                reason = (
                    Reason.CONSISTENT_PAIR if digests_agree else Reason.COUNTERPART_ACK
                )
                self._record_view_verdict(
                    pub_view, (EntryClass.VALID, (reason,)), verdicts, view_verdicts
                )
            elif pub_proof and not pub_consistent:
                # The subscriber acknowledged something other than what the
                # publisher claims to have sent: L_x falsified (Lemma 3 i).
                self._record_view_verdict(
                    pub_view,
                    (EntryClass.INVALID, (Reason.FALSIFIED_DATA,)),
                    verdicts,
                    view_verdicts,
                )
            else:
                reason = (
                    Reason.FALSIFIED_DATA if not digests_agree and sub_proof
                    else Reason.FABRICATED
                )
                self._record_view_verdict(
                    pub_view,
                    (EntryClass.INVALID, (reason,)),
                    verdicts,
                    view_verdicts,
                )
            return

        if pub_view is not None:
            # Only the publisher logged.  Its embedded ACK, if valid, proves
            # the subscriber received the data (Lemma 2) -> the subscriber's
            # missing entry is hidden.
            if not pub_view.peer_sig:
                self._record_view_verdict(
                    pub_view,
                    (EntryClass.INVALID, (Reason.UNPROVEN_PUBLICATION,)),
                    verdicts,
                    view_verdicts,
                )
                return
            if pub_proof and pub_consistent:
                self._record_view_verdict(
                    pub_view,
                    (EntryClass.VALID, (Reason.COUNTERPART_ACK,)),
                    verdicts,
                    view_verdicts,
                )
                report.hidden.append(
                    HiddenRecord(
                        component_id=subscriber,
                        direction=Direction.IN,
                        transmission=transmission,
                    )
                )
            elif pub_proof:
                self._record_view_verdict(
                    pub_view,
                    (EntryClass.INVALID, (Reason.FALSIFIED_DATA,)),
                    verdicts,
                    view_verdicts,
                )
            else:
                # An ACK signature nobody can verify: fabricated (Lemma 1).
                self._record_view_verdict(
                    pub_view,
                    (EntryClass.INVALID, (Reason.FABRICATED,)),
                    verdicts,
                    view_verdicts,
                )
            return

        if sub_entry is not None:
            # Only the subscriber logged.  Its embedded publisher signature,
            # if valid, proves the publication (Lemma 2) -> the publisher's
            # missing entry is hidden.
            if sub_proof:
                verdicts[sub_index] = (EntryClass.VALID, (Reason.COUNTERPART_ACK,))
                if publisher:
                    report.hidden.append(
                        HiddenRecord(
                            component_id=publisher,
                            direction=Direction.OUT,
                            transmission=transmission,
                        )
                    )
            else:
                # No publisher entry and no verifiable publisher signature:
                # the subscriber fabricated the receipt (Lemma 1).
                verdicts[sub_index] = (EntryClass.INVALID, (Reason.FABRICATED,))
