"""Audit result vocabulary.

Mirrors the paper's Figure 5 classification: the auditor sorts observed
entries into valid and invalid sets and infers hidden entries
(:math:`\\widehat{L_V}`, :math:`\\widehat{L_I}`, :math:`\\widehat{L_H}`).
Each classification carries machine-checkable *reasons* so tests can assert
not just that an entry was flagged but *why*.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.entries import Direction, LogEntry


class EntryClass(enum.Enum):
    """The auditor's verdict on one observed log entry."""

    VALID = "valid"
    INVALID = "invalid"


class Reason(enum.Enum):
    """Why an entry was classified as it was (or inferred hidden)."""

    # validity
    CONSISTENT_PAIR = "consistent_pair"  # both sides agree and verify
    COUNTERPART_ACK = "counterpart_ack"  # proven by the peer's signature alone

    # invalidity -- "obvious detection" (eq. 3)
    BAD_OWN_SIGNATURE = "bad_own_signature"  # s' does not verify for owner
    UNKNOWN_COMPONENT = "unknown_component"  # no registered public key
    NOT_TOPIC_PUBLISHER = "not_topic_publisher"  # OUT entry by a non-publisher
    MISSING_COMMITMENT = "missing_commitment"  # no data/hash/signature to check
    TYPE_MISMATCH = "type_mismatch"  # type(D) disagrees with the topic's type

    # invalidity -- protocol analysis (Lemmas 1-3)
    FALSIFIED_DATA = "falsified_data"  # D' != D proven via peer signature
    FABRICATED = "fabricated"  # no verifiable counterpart commitment
    UNPROVEN_PUBLICATION = "unproven_publication"  # L_x without any ACK
    REPLAYED_SEQUENCE = "replayed_sequence"  # duplicate (topic, seq, dir, id)

    # invalidity -- scheme limitations
    UNVERIFIABLE_SCHEME = "unverifiable_scheme"  # naive entries carry no proof

    # hidden inference
    PEER_PROVED_TRANSMISSION = "peer_proved_transmission"  # counterpart's valid
    # entry proves a transmission this component never logged


@dataclass(frozen=True)
class TransmissionId:
    """Identity of one data transmission D_{x->y}."""

    topic: str
    seq: int
    publisher: str
    subscriber: str

    def __str__(self) -> str:
        return f"{self.publisher} -[{self.topic}#{self.seq}]-> {self.subscriber}"


@dataclass
class ClassifiedEntry:
    """One observed entry with its verdict."""

    entry: LogEntry
    verdict: EntryClass
    reasons: Tuple[Reason, ...]
    transmission: Optional[TransmissionId] = None

    @property
    def component_id(self) -> str:
        return self.entry.component_id


@dataclass(frozen=True)
class HiddenRecord:
    """An entry the auditor proves *should* exist but was never entered."""

    component_id: str
    direction: Direction
    transmission: TransmissionId
    reason: Reason = Reason.PEER_PROVED_TRANSMISSION


@dataclass
class ComponentVerdict:
    """Aggregate judgement about one component."""

    component_id: str
    valid_entries: int = 0
    invalid_entries: int = 0
    hidden_entries: int = 0

    @property
    def flagged(self) -> bool:
        """Whether any unfaithful behavior was attributed to the component."""
        return self.invalid_entries > 0 or self.hidden_entries > 0


@dataclass(frozen=True)
class PairAnomaly:
    """Both sides of a transmission hold *valid* counterpart proofs for
    *different* digests.

    Each party demonstrably signed more than one payload for the same
    sequence number -- impossible for protocol-compliant components, and
    only achievable through cooperation.  Unlike the silent collusion the
    paper concedes is invisible, a clumsy colluding pair that leaves this
    trace is cryptographically exposed as a *pair* (though neither entry
    individually can be called the lie).
    """

    transmission: TransmissionId
    publisher_digest: bytes
    subscriber_digest: bytes

    @property
    def suspects(self) -> Tuple[str, str]:
        return (self.transmission.publisher, self.transmission.subscriber)


@dataclass
class AuditReport:
    """Everything the auditor concluded from one pass over the log."""

    classified: List[ClassifiedEntry] = field(default_factory=list)
    hidden: List[HiddenRecord] = field(default_factory=list)
    components: Dict[str, ComponentVerdict] = field(default_factory=dict)
    #: double-signing traces: provable (pairwise) collusion evidence
    anomalies: List[PairAnomaly] = field(default_factory=list)

    # -- convenience views ----------------------------------------------

    def valid_entries(self) -> List[ClassifiedEntry]:
        """:math:`\\widehat{L_V}`."""
        return [c for c in self.classified if c.verdict is EntryClass.VALID]

    def invalid_entries(self) -> List[ClassifiedEntry]:
        """:math:`\\widehat{L_I}`."""
        return [c for c in self.classified if c.verdict is EntryClass.INVALID]

    def flagged_components(self) -> List[str]:
        """Components with any invalid or hidden entry attributed."""
        return sorted(
            cid for cid, v in self.components.items() if v.flagged
        )

    def clean_components(self) -> List[str]:
        """Components with no unfaithful behavior attributed."""
        return sorted(
            cid for cid, v in self.components.items() if not v.flagged
        )

    def entries_for(self, component_id: str) -> List[ClassifiedEntry]:
        return [c for c in self.classified if c.component_id == component_id]

    def reasons_for(self, component_id: str) -> FrozenSet[Reason]:
        """All reasons attached to a component's invalid/hidden records."""
        reasons: set = set()
        for c in self.entries_for(component_id):
            if c.verdict is EntryClass.INVALID:
                reasons.update(c.reasons)
        for h in self.hidden:
            if h.component_id == component_id:
                reasons.add(h.reason)
        return frozenset(reasons)

    def _account(self) -> None:
        """(Re)build the per-component aggregates."""
        self.components = {}
        for c in self.classified:
            verdict = self.components.setdefault(
                c.component_id, ComponentVerdict(c.component_id)
            )
            if c.verdict is EntryClass.VALID:
                verdict.valid_entries += 1
            else:
                verdict.invalid_entries += 1
        for h in self.hidden:
            verdict = self.components.setdefault(
                h.component_id, ComponentVerdict(h.component_id)
            )
            verdict.hidden_entries += 1
