"""Auditing a *replicated* trusted logger.

With one logger, the auditor trusts the store it reads (tamper is caught
by the chain, but a logger that lies consistently is outside the threat
model).  With N replicas, the auditor can do better: fetch every
replica's records, check that a quorum agrees on the common prefix, and
audit the quorum-consistent view -- a minority of crashed, lagging, or
lying replicas can then neither suppress evidence nor inject a forged
history.

The comparison is prefix-based: replicas at different entry counts are
expected during normal operation (one may lag behind the fan-out), so
only the shortest common prefix must match; disagreement *within* that
prefix is divergence and is returned as evidence, while a quorum that
cannot agree at all fails the audit loudly (:class:`LogIntegrityError`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.audit.auditor import Auditor, Topology
from repro.audit.verdicts import AuditReport
from repro.core.log_server import LogServer
from repro.crypto.merkle import MerkleTree
from repro.crypto.verifypool import VerifyPool
from repro.errors import LogIntegrityError, LoggingError, TransportError

#: Records fetched per RPC while pulling a replica's full history.
AUDIT_FETCH_BATCH = 1024


@dataclass(frozen=True)
class ReplicaDivergence:
    """One replica whose common-prefix root disagrees with the quorum's."""

    replica: int
    entries: int
    prefix_root: bytes
    quorum_root: bytes


@dataclass
class ReplicaSetAudit:
    """Result of auditing a replica set as one logical logger."""

    #: The classification of the quorum-consistent view.
    report: AuditReport
    #: Index of the replica whose (longest) history was audited.
    audited_replica: int
    #: Entry count of the audited view.
    audited_entries: int
    #: Common-prefix length every reachable replica was compared at.
    common_prefix: int
    #: Replicas agreeing with the quorum prefix root.
    agreeing: List[int] = field(default_factory=list)
    #: Replicas contradicting the quorum prefix root, with evidence.
    divergent: List[ReplicaDivergence] = field(default_factory=list)
    #: Replicas that could not be reached (crashed or partitioned).
    unreachable: List[int] = field(default_factory=list)
    #: Replicas whose fetched records failed local re-verification.
    corrupt: List[int] = field(default_factory=list)


def _fetch_replica(client) -> Tuple[List[bytes], Dict[str, bytes]]:
    """Pull a replica's complete history and key registry."""
    health = client.health()
    records: List[bytes] = []
    while len(records) < health.entries:
        batch = client.fetch_records(
            len(records), min(AUDIT_FETCH_BATCH, health.entries - len(records))
        )
        if not batch:
            raise LoggingError(
                f"replica returned no records at index {len(records)}"
            )
        records.extend(batch)
    return records, client.fetch_keys()


def _rebuild(records: Sequence[bytes], keys: Dict[str, bytes]) -> LogServer:
    """Re-ingest a replica's records into a local LogServer.

    Re-running submission locally re-derives the chain and Merkle state
    from the raw bytes, so the audit never trusts a root the replica
    merely *claimed*."""
    server = LogServer()
    for component_id in sorted(keys):
        server.register_key(component_id, keys[component_id])
    for record in records:
        server.submit(record)
    return server


def audit_replica_set(
    clients: Sequence,
    topology: Optional[Topology] = None,
    quorum: Optional[int] = None,
    verify_pool: Optional[VerifyPool] = None,
) -> ReplicaSetAudit:
    """Audit a replica set as one logical trusted logger.

    :param clients: one :class:`~repro.core.remote.RemoteLogger` (or
        compatible ``health``/``fetch_records``/``fetch_keys`` stub) per
        replica.
    :param topology: optional known topology (else inferred from entries).
    :param quorum: replicas that must agree on the common prefix;
        defaults to a majority of the *whole* set (crashed replicas count
        against the quorum, as they must).
    :param verify_pool: optional :class:`~repro.crypto.verifypool.VerifyPool`
        the quorum view's signature checks are batched onto (the audited
        history is the biggest single-auditor workload in the system).
    :raises LogIntegrityError: when no quorum of replicas agrees on the
        common prefix -- there is no trustworthy view to audit.
    """
    if not clients:
        raise ValueError("audit_replica_set needs at least one replica client")
    quorum = quorum or (len(clients) // 2 + 1)

    unreachable: List[int] = []
    corrupt: List[int] = []
    replicas: Dict[int, Tuple[List[bytes], LogServer]] = {}
    for index, client in enumerate(clients):
        try:
            records, keys = _fetch_replica(client)
            replicas[index] = (records, _rebuild(records, keys))
        except (LoggingError, TransportError):
            unreachable.append(index)
        except Exception:
            # fetched fine but would not re-ingest: internally inconsistent
            corrupt.append(index)

    if len(replicas) < quorum:
        raise LogIntegrityError(
            f"only {len(replicas)}/{len(clients)} replicas answered the "
            f"audit; quorum of {quorum} unreachable"
        )

    common = min(len(records) for records, _ in replicas.values())
    prefix_roots = {
        index: MerkleTree(records[:common]).root()
        for index, (records, _) in replicas.items()
    }
    by_root: Dict[bytes, List[int]] = {}
    for index, root in sorted(prefix_roots.items()):
        by_root.setdefault(root, []).append(index)
    quorum_root, agreeing = max(
        by_root.items(), key=lambda item: (len(item[1]), item[1][0] * -1)
    )
    if len(agreeing) < quorum:
        raise LogIntegrityError(
            "replica set has no quorum-consistent view: prefix roots at "
            f"{common} entries split "
            + ", ".join(
                f"{root.hex()[:16]}x{len(members)}"
                for root, members in sorted(by_root.items())
            )
        )
    divergent = [
        ReplicaDivergence(
            replica=index,
            entries=common,
            prefix_root=root,
            quorum_root=quorum_root,
        )
        for index, root in sorted(prefix_roots.items())
        if root != quorum_root
    ]

    # Audit the longest agreeing history: most entries, most evidence.
    audited_replica = max(agreeing, key=lambda index: len(replicas[index][0]))
    _, server = replicas[audited_replica]
    report = Auditor.for_server(
        server, topology, verify_pool=verify_pool
    ).audit_server(server)
    return ReplicaSetAudit(
        report=report,
        audited_replica=audited_replica,
        audited_entries=len(replicas[audited_replica][0]),
        common_prefix=common,
        agreeing=agreeing,
        divergent=divergent,
        unreachable=unreachable,
        corrupt=corrupt,
    )
