"""Collusion groups (Definition 1).

A collusion group is a set of components that coordinate their lying; the
*maximal* collusion groups partition the component set (singletons for
everyone who colludes with nobody).  The paper's guarantees are phrased
against this structure: transmissions crossing a group boundary are always
auditable (Theorem 1), transmissions inside a group are not.

:class:`CollusionModel` is the *ground-truth* description used by the
adversary harness and the property tests; :func:`maximal_collusion_groups`
computes the partition with :mod:`networkx`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Set, Tuple

import networkx as nx


def maximal_collusion_groups(
    components: Iterable[str], colluding_pairs: Iterable[Tuple[str, str]]
) -> List[FrozenSet[str]]:
    """Partition ``components`` into maximal collusion groups.

    Collusion is symmetric; groups are the connected components of the
    collusion graph.  Components without any colluding partner form
    singleton groups (Definition 1 case ii).
    """
    graph = nx.Graph()
    graph.add_nodes_from(components)
    for a, b in colluding_pairs:
        if a == b:
            raise ValueError("a component cannot collude with itself")
        graph.add_edge(a, b)
    return sorted(
        (frozenset(group) for group in nx.connected_components(graph)),
        key=lambda g: sorted(g),
    )


class CollusionModel:
    """Ground-truth collusion structure of a system under test."""

    def __init__(
        self,
        components: Iterable[str],
        colluding_pairs: Iterable[Tuple[str, str]] = (),
    ):
        self.components: Tuple[str, ...] = tuple(components)
        self.pairs: Set[FrozenSet[str]] = {
            frozenset(pair) for pair in colluding_pairs
        }
        for pair in self.pairs:
            if len(pair) != 2:
                raise ValueError("colluding pairs must name two distinct components")
        self._groups = maximal_collusion_groups(
            self.components, [tuple(p) for p in self.pairs]
        )

    @property
    def groups(self) -> List[FrozenSet[str]]:
        """The maximal collusion groups C_mcg."""
        return list(self._groups)

    def group_of(self, component: str) -> FrozenSet[str]:
        """The maximal group containing ``component``."""
        for group in self._groups:
            if component in group:
                return group
        raise KeyError(component)

    def colludes(self, a: str, b: str) -> bool:
        """Whether ``a`` and ``b`` belong to the same maximal group.

        Note this is group membership, not direct pairing: collusion is
        effectively transitive through shared conspirators.
        """
        return a != b and self.group_of(a) == self.group_of(b)

    @property
    def is_collusion_free(self) -> bool:
        """True iff every maximal group is a singleton (Section II-A)."""
        return all(len(group) == 1 for group in self._groups)

    def non_colluding_pairs(
        self, transmissions: Iterable[Tuple[str, str]]
    ) -> List[Tuple[str, str]]:
        """Filter (publisher, subscriber) pairs to those crossing a group
        boundary -- the pairs Theorem 1 makes fully auditable."""
        return [
            (x, y) for x, y in transmissions if not self.colludes(x, y)
        ]

    def edge_components(self) -> Set[str]:
        """Components of non-singleton groups: the 'edge' members whose
        outside-facing transmissions remain auditable (Theorem 1 remark)."""
        return {
            component
            for group in self._groups
            if len(group) > 1
            for component in group
        }
