"""The auditor: turning logs into accountability.

Implements Section III-C's goal -- classify every observed log entry as
valid or invalid and infer hidden entries -- using the verification
machinery of Section IV-B:

- :mod:`repro.audit.verdicts` -- the result vocabulary (entry classes,
  reasons, component verdicts, the audit report).
- :mod:`repro.audit.auditor` -- the main classification algorithm over a
  log server's contents.
- :mod:`repro.audit.disputes` -- pairwise dispute resolution between a
  publisher's and a subscriber's conflicting entries (Lemma 3).
- :mod:`repro.audit.causality` -- temporal-causality checking (Lemma 4).
- :mod:`repro.audit.collusion` -- Definition 1's collusion groups.
- :mod:`repro.audit.report` -- human-readable rendering.
"""

from repro.audit.verdicts import (
    EntryClass,
    Reason,
    ClassifiedEntry,
    HiddenRecord,
    ComponentVerdict,
    PairAnomaly,
    AuditReport,
)
from repro.audit.auditor import Auditor, Topology
from repro.audit.disputes import resolve_dispute, DisputeVerdict
from repro.audit.causality import check_pair_precedence, check_chain_precedence, CausalityViolation
from repro.audit.collusion import CollusionModel, maximal_collusion_groups
from repro.audit.online import OnlineAuditor, OnlineFinding
from repro.audit.provenance import DataItem, ProvenanceGraph
from repro.audit.replica_audit import (
    ReplicaDivergence,
    ReplicaSetAudit,
    audit_replica_set,
)
from repro.audit.report import render_report

__all__ = [
    "EntryClass",
    "Reason",
    "ClassifiedEntry",
    "HiddenRecord",
    "ComponentVerdict",
    "AuditReport",
    "Auditor",
    "Topology",
    "resolve_dispute",
    "DisputeVerdict",
    "check_pair_precedence",
    "check_chain_precedence",
    "CausalityViolation",
    "CollusionModel",
    "maximal_collusion_groups",
    "DataItem",
    "ProvenanceGraph",
    "OnlineAuditor",
    "OnlineFinding",
    "ReplicaDivergence",
    "ReplicaSetAudit",
    "audit_replica_set",
    "render_report",
]
