"""Human-readable rendering of audit results."""

from __future__ import annotations

from collections import Counter
from typing import List

from repro.audit.verdicts import AuditReport, EntryClass


def render_report(report: AuditReport, max_findings: int = 20) -> str:
    """Render an :class:`AuditReport` as a plain-text summary.

    Shows the Figure 5 bucket sizes, per-component verdicts, and the first
    ``max_findings`` individual findings (invalid entries + hidden records).
    """
    lines: List[str] = []
    valid = report.valid_entries()
    invalid = report.invalid_entries()
    lines.append("=== ADLP audit report ===")
    lines.append(
        f"entries: {len(report.classified)} observed | "
        f"valid: {len(valid)} | invalid: {len(invalid)} | "
        f"hidden (inferred): {len(report.hidden)}"
    )
    lines.append("")
    lines.append("--- components ---")
    for component_id in sorted(report.components):
        verdict = report.components[component_id]
        status = "FLAGGED" if verdict.flagged else "clean"
        lines.append(
            f"  {component_id:<24} {status:<8} "
            f"valid={verdict.valid_entries} invalid={verdict.invalid_entries} "
            f"hidden={verdict.hidden_entries}"
        )
    findings = []
    for classified in invalid:
        reasons = ", ".join(r.value for r in classified.reasons)
        where = (
            str(classified.transmission)
            if classified.transmission
            else f"{classified.entry.topic}#{classified.entry.seq}"
        )
        findings.append(
            f"  INVALID {classified.component_id} "
            f"({classified.entry.direction.name.lower()}) {where}: {reasons}"
        )
    for hidden in report.hidden:
        findings.append(
            f"  HIDDEN  {hidden.component_id} "
            f"({hidden.direction.name.lower()}) {hidden.transmission}: "
            f"{hidden.reason.value}"
        )
    if findings:
        lines.append("")
        lines.append("--- findings ---")
        lines.extend(findings[:max_findings])
        if len(findings) > max_findings:
            lines.append(f"  ... and {len(findings) - max_findings} more")
    if report.anomalies:
        lines.append("")
        lines.append("--- double-signing anomalies (pairwise collusion) ---")
        for anomaly in report.anomalies[:max_findings]:
            lines.append(
                f"  {anomaly.transmission}: publisher committed to "
                f"{anomaly.publisher_digest.hex()[:12]}, subscriber to "
                f"{anomaly.subscriber_digest.hex()[:12]}"
            )
    lines.append("")
    lines.append("--- invalidity reasons ---")
    reason_counts = Counter(
        reason.value for c in invalid for reason in c.reasons
    )
    if reason_counts:
        for reason, count in reason_counts.most_common():
            lines.append(f"  {reason:<24} {count}")
    else:
        lines.append("  (none)")
    return "\n".join(lines)
