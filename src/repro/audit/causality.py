"""Temporal-causality analysis (Section IV-B2, Lemma 4).

Timestamps in log entries establish precedence between transmissions:
for a chain ``D_{x->y}`` then ``D_{y->z}``, faithful components yield
``t_x,out < t_y,in < t_y,out < t_z,in`` (Figure 10 (b)).  Lemma 4 shows one
unfaithful component cannot *reverse* the chain's precedence without
detection -- its disrupted timestamps create a locally visible
inconsistency instead.  These checks surface exactly those
inconsistencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.entries import Direction, LogEntry


class ViolationKind(enum.Enum):
    """The flavors of timestamp inconsistency the auditor can observe."""

    PAIR_ORDER = "pair_order"  # t_pub,out > t_sub,in for one transmission
    LOCAL_ORDER = "local_order"  # a component's t_out < t_in on a causal hop
    CHAIN_ORDER = "chain_order"  # the end-to-end chain order is broken


@dataclass(frozen=True)
class CausalityViolation:
    """One detected ordering inconsistency and its suspects.

    By Lemma 4, at least one of :attr:`suspects` disrupted its timestamps
    (or they collude); an auditor cannot generally narrow it to one
    component from timestamps alone.
    """

    kind: ViolationKind
    description: str
    suspects: Tuple[str, ...]


@dataclass(frozen=True)
class ChainHop:
    """One hop of a data-flow chain: ``publisher -topic#seq-> subscriber``."""

    publisher: str
    topic: str
    seq: int
    subscriber: str


def _find(
    entries: Sequence[LogEntry],
    component: str,
    topic: str,
    seq: int,
    direction: Direction,
) -> Optional[LogEntry]:
    for entry in entries:
        if (
            entry.component_id == component
            and entry.topic == topic
            and entry.seq == seq
            and entry.direction is direction
        ):
            return entry
    return None


def check_pair_precedence(
    entries: Sequence[LogEntry], hop: ChainHop
) -> List[CausalityViolation]:
    """Check one transmission's two timestamps: publication must not be
    logged after the corresponding receipt."""
    violations: List[CausalityViolation] = []
    out_entry = _find(entries, hop.publisher, hop.topic, hop.seq, Direction.OUT)
    in_entry = _find(entries, hop.subscriber, hop.topic, hop.seq, Direction.IN)
    if out_entry is None or in_entry is None:
        return violations
    if out_entry.timestamp > in_entry.timestamp:
        violations.append(
            CausalityViolation(
                kind=ViolationKind.PAIR_ORDER,
                description=(
                    f"{hop.publisher} logged publication of {hop.topic}#{hop.seq} "
                    f"at {out_entry.timestamp:.6f}, after {hop.subscriber} logged "
                    f"its receipt at {in_entry.timestamp:.6f}"
                ),
                suspects=(hop.publisher, hop.subscriber),
            )
        )
    return violations


def check_chain_precedence(
    entries: Sequence[LogEntry], chain: Sequence[ChainHop]
) -> List[CausalityViolation]:
    """Check a multi-hop causal chain, e.g. ``x -> y -> z`` (Figure 10).

    ``chain`` lists the hops in causal order (hop i's subscriber is hop
    i+1's publisher).  Detects:

    - per-hop inversions (:func:`check_pair_precedence`),
    - local inversions at each middle component (its IN entry stamped after
      its OUT entry -- the Figure 10 (c) signature of a lone disruptor),
    - end-to-end order reversal (only reachable if all involved components
      collude; Lemma 4).
    """
    violations: List[CausalityViolation] = []
    for hop in chain:
        violations.extend(check_pair_precedence(entries, hop))

    # local order at middle components
    for earlier, later in zip(chain, chain[1:]):
        if earlier.subscriber != later.publisher:
            raise ValueError(
                f"chain is not causal: hop into {earlier.subscriber!r} followed "
                f"by hop out of {later.publisher!r}"
            )
        middle = earlier.subscriber
        in_entry = _find(entries, middle, earlier.topic, earlier.seq, Direction.IN)
        out_entry = _find(entries, middle, later.topic, later.seq, Direction.OUT)
        if in_entry is None or out_entry is None:
            continue
        if in_entry.timestamp > out_entry.timestamp:
            violations.append(
                CausalityViolation(
                    kind=ViolationKind.LOCAL_ORDER,
                    description=(
                        f"{middle} logged consuming {earlier.topic}#{earlier.seq} at "
                        f"{in_entry.timestamp:.6f}, after producing "
                        f"{later.topic}#{later.seq} at {out_entry.timestamp:.6f}"
                    ),
                    suspects=(middle,),
                )
            )

    # end-to-end order
    first, last = chain[0], chain[-1]
    first_out = _find(entries, first.publisher, first.topic, first.seq, Direction.OUT)
    last_in = _find(entries, last.subscriber, last.topic, last.seq, Direction.IN)
    if first_out is not None and last_in is not None:
        if first_out.timestamp > last_in.timestamp:
            everyone: Set[str] = set()
            for hop in chain:
                everyone.update((hop.publisher, hop.subscriber))
            violations.append(
                CausalityViolation(
                    kind=ViolationKind.CHAIN_ORDER,
                    description=(
                        f"the chain's first publication "
                        f"({first.topic}#{first.seq}) is stamped after its final "
                        f"receipt ({last.topic}#{last.seq}); by Lemma 4 this "
                        f"requires every component on the chain to collude"
                    ),
                    suspects=tuple(sorted(everyone)),
                )
            )
    return violations


def precedence_holds(
    entries: Sequence[LogEntry], chain: Sequence[ChainHop]
) -> bool:
    """Whether the observable precedence of ``chain`` is unbroken.

    Lemma 4's claim, operationally: after any single-component timestamp
    disruption, either this still returns ``True`` with the true order
    recoverable, or a violation implicates the disruptor.
    """
    first, last = chain[0], chain[-1]
    first_out = _find(entries, first.publisher, first.topic, first.seq, Direction.OUT)
    last_in = _find(entries, last.subscriber, last.topic, last.seq, Direction.IN)
    if first_out is None or last_in is None:
        return False
    return first_out.timestamp <= last_in.timestamp
