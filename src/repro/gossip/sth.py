"""Signed tree heads (STH).

A signed tree head is the logger's own signature over its commitment
``(entries, chain_head, merkle_root, timestamp)``.  Publishing one is a
promise: *this is the one true history at this size*.  Two valid STHs from
the same log at the same size with different roots are therefore
self-incriminating -- no further trust assumptions are needed to convict
the logger of equivocation (see :mod:`repro.gossip.evidence`).

Wire format mirrors the rest of the protocol (protobuf-style framing via
:mod:`repro.serialization`); the signature covers a canonical
length-prefixed packing, independent of field ordering quirks.
"""

from __future__ import annotations

import struct
import time
from typing import Optional

from repro.crypto.keys import PrivateKey, PublicKey
from repro.errors import DecodingError, LogIntegrityError
from repro.serialization import WireMessage, bytes_, double, string, uint64

#: Domain separation for STH signatures; never signs anything else.
_STH_DOMAIN = b"repro.gossip.sth.v1"

#: Scope value meaning "the whole log" (or the shard-set head on a
#: sharded deployment).  A per-shard head carries ``shard index + 1``.
SCOPE_LOG = 0


def _packed(blob: bytes) -> bytes:
    return struct.pack(">I", len(blob)) + blob


class SignedTreeHead(WireMessage):
    """A logger-signed commitment to the log at a given size."""

    log_id = string(1)
    entries = uint64(2)
    chain_head = bytes_(3)
    merkle_root = bytes_(4)
    timestamp = double(5)
    scope = uint64(6)
    key_fingerprint = string(7)
    signature = bytes_(8)

    def signing_payload(self) -> bytes:
        """The canonical byte string the logger signs."""
        return b"".join(
            (
                _STH_DOMAIN,
                _packed(self.log_id.encode("utf-8")),
                struct.pack(">QQ", self.entries, self.scope),
                _packed(self.chain_head),
                _packed(self.merkle_root),
                struct.pack(">d", self.timestamp),
            )
        )

    def verify(self, public_key: PublicKey) -> bool:
        """True iff :attr:`signature` is the logger's signature over this head."""
        if not self.signature:
            return False
        return public_key.verify(self.signing_payload(), self.signature)

    def to_bytes(self) -> bytes:
        return self.encode()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "SignedTreeHead":
        try:
            sth = cls.decode(blob)
        except Exception as exc:  # noqa: BLE001 - normalize decode failures
            raise DecodingError(f"malformed signed tree head: {exc}") from exc
        if not sth.log_id or not sth.signature:
            raise DecodingError("signed tree head missing log id or signature")
        return sth

    def conflicts_with(self, other: "SignedTreeHead") -> bool:
        """Same log, same scope, same size -- different history."""
        return (
            self.log_id == other.log_id
            and self.scope == other.scope
            and self.entries == other.entries
            and (
                self.merkle_root != other.merkle_root
                or self.chain_head != other.chain_head
            )
        )

    def describe(self) -> str:
        where = "log" if self.scope == SCOPE_LOG else f"shard {self.scope - 1}"
        return (
            f"{self.log_id}[{where}] size={self.entries} "
            f"root={self.merkle_root.hex()[:16]} head={self.chain_head.hex()[:16]}"
        )


def issue_sth(
    signer: PrivateKey,
    log_id: str,
    entries: int,
    chain_head: bytes,
    merkle_root: bytes,
    scope: int = SCOPE_LOG,
    timestamp: Optional[float] = None,
) -> SignedTreeHead:
    """Sign a tree head with the logger's key."""
    sth = SignedTreeHead(
        log_id=log_id,
        entries=entries,
        chain_head=chain_head,
        merkle_root=merkle_root,
        timestamp=time.time() if timestamp is None else timestamp,
        scope=scope,
        key_fingerprint=signer.public_key.fingerprint(),
    )
    sth.signature = signer.sign(sth.signing_payload())
    return sth


def require_valid(sth: SignedTreeHead, public_key: PublicKey) -> SignedTreeHead:
    """Return ``sth`` if its signature verifies, else raise."""
    if not sth.verify(public_key):
        raise LogIntegrityError(
            f"signed tree head from {sth.log_id!r} failed signature verification"
        )
    return sth
