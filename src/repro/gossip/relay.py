"""STH gossip and split-view detection.

A single client can never catch an equivocating logger on its own: the
logger simply shows that client one internally consistent history.  The
countermeasure (the "Think Global, Act Local" design) is for observers --
replicas, auditors, other clients -- to *gossip* the signed tree heads
they have seen.  The moment two views of the same log meet in one place,
the conflict is mechanically checkable and the logger's own signatures
convict it.

:class:`GossipRelay` is that meeting place.  Each participant runs one,
feeds it every STH it fetches (:meth:`GossipRelay.observe`), and
periodically exchanges pools with a peer (:meth:`GossipRelay.exchange`).
Detection is therefore bounded by the gossip topology's diameter: once a
path of exchanges connects two observers of different forks, evidence
appears -- for the two-group split-view attack, a single round suffices.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.crypto.keys import PublicKey
from repro.gossip.evidence import (
    KIND_CONSISTENCY,
    KIND_FORK,
    EquivocationEvidence,
    make_evidence,
)
from repro.gossip.sth import SignedTreeHead

#: Heads retained per (log, scope); old sizes age out FIFO, like the
#: replication divergence detector's snapshot window.
HISTORY_LIMIT = 256

#: Optional callback producing a consistency proof between two observed
#: heads of the same log (typically wired to ``RemoteLogger.prove_consistency``).
#: Returning an invalid proof -- or raising -- convicts the logger.
ConsistencyProver = Callable[[SignedTreeHead, SignedTreeHead], object]


class GossipRelay:
    """A pool of observed STHs that cross-checks every new arrival.

    Signature policy: heads for a log with a registered public key are
    verified on arrival and dropped (counted) when invalid -- forged heads
    must not frame an honest logger.  Heads for unknown logs are kept but
    can only produce evidence once a key is registered, since unverifiable
    evidence convicts nobody.
    """

    def __init__(
        self,
        name: str = "relay",
        history_limit: int = HISTORY_LIMIT,
        consistency_prover: Optional[ConsistencyProver] = None,
    ):
        self.name = name
        self._history_limit = history_limit
        self._prover = consistency_prover
        self._keys: Dict[str, PublicKey] = {}
        # (log_id, scope) -> entries -> (sth, source)
        self._pools: Dict[
            Tuple[str, int], "OrderedDict[int, Tuple[SignedTreeHead, str]]"
        ] = {}
        self._flagged: set = set()
        self._evidence: List[EquivocationEvidence] = []
        self._listeners: List[Callable[[EquivocationEvidence], None]] = []
        self._lock = threading.RLock()
        #: Completed :meth:`exchange` rounds (observability: detection
        #: latency is measured in these).
        self.rounds = 0
        #: Heads dropped because their signature failed verification.
        self.rejected_heads = 0

    # -- configuration ------------------------------------------------------

    def register_key(self, log_id: str, public_key: PublicKey) -> None:
        """Trust anchor: the logger's public key, for STH verification."""
        with self._lock:
            self._keys[log_id] = public_key

    def set_consistency_prover(self, prover: Optional[ConsistencyProver]) -> None:
        with self._lock:
            self._prover = prover

    def add_listener(self, callback: Callable[[EquivocationEvidence], None]) -> None:
        """Invoke ``callback`` for every *new* piece of evidence."""
        with self._lock:
            self._listeners.append(callback)

    # -- observation --------------------------------------------------------

    def observe(
        self, sth: SignedTreeHead, source: str = "local"
    ) -> List[EquivocationEvidence]:
        """Deposit one signed tree head; returns any *new* evidence."""
        with self._lock:
            key = self._keys.get(sth.log_id)
            if key is not None and not sth.verify(key):
                self.rejected_heads += 1
                return []
            pool = self._pools.setdefault((sth.log_id, sth.scope), OrderedDict())
            fresh: List[EquivocationEvidence] = []
            existing = pool.get(sth.entries)
            if existing is not None:
                held, held_source = existing
                if held.conflicts_with(sth):
                    fresh.extend(
                        self._convict_locked(
                            KIND_FORK,
                            held,
                            sth,
                            detail="same size, different root",
                            sources=(held_source, source),
                        )
                    )
                # Keep the first-seen head for this size either way.
            else:
                fresh.extend(self._check_consistency_locked(pool, sth, source))
                pool[sth.entries] = (sth, source)
                while len(pool) > self._history_limit:
                    pool.popitem(last=False)
            for evidence in fresh:
                for listener in list(self._listeners):
                    listener(evidence)
            return fresh

    def _check_consistency_locked(
        self,
        pool: "OrderedDict[int, Tuple[SignedTreeHead, str]]",
        sth: SignedTreeHead,
        source: str,
    ) -> List[EquivocationEvidence]:
        """Challenge the newcomer against the nearest held head, if a
        consistency prover is wired up."""
        if self._prover is None or not pool:
            return []
        # Nearest held size below (preferred) or above the newcomer.
        sizes = sorted(pool)
        below = [s for s in sizes if s < sth.entries]
        above = [s for s in sizes if s > sth.entries]
        anchor_size = below[-1] if below else above[0]
        anchor, anchor_source = pool[anchor_size]
        old, new = (anchor, sth) if anchor_size < sth.entries else (sth, anchor)
        old_source, new_source = (
            (anchor_source, source) if anchor_size < sth.entries else (source, anchor_source)
        )
        try:
            proof = self._prover(old, new)
            ok = bool(
                proof is not None
                and proof.verify(old.merkle_root, new.merkle_root)  # type: ignore[attr-defined]
            )
            detail = "consistency proof does not verify" if not ok else ""
        except Exception as exc:  # noqa: BLE001 - refusal is also evidence
            ok = False
            detail = f"logger failed the consistency challenge: {exc}"
        if ok:
            return []
        return self._convict_locked(
            KIND_CONSISTENCY, old, new, detail=detail, sources=(old_source, new_source)
        )

    def _convict_locked(
        self,
        kind: str,
        a: SignedTreeHead,
        b: SignedTreeHead,
        detail: str,
        sources: Tuple[str, str],
    ) -> List[EquivocationEvidence]:
        key = self._keys.get(a.log_id)
        if key is None or not (a.verify(key) and b.verify(key)):
            # Unverifiable evidence convicts nobody: without the logger's
            # key this conflict cannot be attributed (anyone could have
            # forged one side to frame the logger).  The heads stay pooled,
            # so a later ``register_key`` plus re-gossip can still convict.
            return []
        dedup = (
            a.log_id,
            a.scope,
            kind,
            min(a.entries, b.entries),
            max(a.entries, b.entries),
            tuple(sorted((a.merkle_root, b.merkle_root))),
        )
        if dedup in self._flagged:
            return []
        self._flagged.add(dedup)
        evidence = make_evidence(kind, a, b, detail=detail, sources=sources)
        self._evidence.append(evidence)
        return [evidence]

    # -- gossip -------------------------------------------------------------

    def heads(self) -> List[SignedTreeHead]:
        """Snapshot of every head currently pooled (for gossip payloads)."""
        with self._lock:
            return [sth for pool in self._pools.values() for sth, _ in pool.values()]

    def latest(self, log_id: str, scope: int = 0) -> Optional[SignedTreeHead]:
        """The largest head seen for ``(log_id, scope)``, if any."""
        with self._lock:
            pool = self._pools.get((log_id, scope))
            if not pool:
                return None
            return pool[max(pool)][0]

    def exchange(self, peer: "GossipRelay") -> List[EquivocationEvidence]:
        """One bidirectional gossip round with ``peer``.

        Both relays end up holding the union of the two pools; any
        cross-pool conflict surfaces as evidence on the receiving side.
        Returns the union of new evidence from both directions.
        """
        mine = self.heads()
        theirs = peer.heads()
        fresh: List[EquivocationEvidence] = []
        for sth in mine:
            fresh.extend(peer.observe(sth, source=f"gossip:{self.name}"))
        for sth in theirs:
            fresh.extend(self.observe(sth, source=f"gossip:{peer.name}"))
        with self._lock:
            self.rounds += 1
        with peer._lock:
            peer.rounds += 1
        return fresh

    # -- reporting ----------------------------------------------------------

    def evidence(self) -> List[EquivocationEvidence]:
        """All evidence accumulated so far."""
        with self._lock:
            return list(self._evidence)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "pools": len(self._pools),
                "heads": sum(len(pool) for pool in self._pools.values()),
                "evidence": len(self._evidence),
                "rounds": self.rounds,
                "rejected_heads": self.rejected_heads,
            }


def gossip_round(relays: List[GossipRelay]) -> List[EquivocationEvidence]:
    """Run one ring-topology round over ``relays``; returns new evidence.

    A ring connects the whole population in ``ceil(n/2)`` rounds at worst,
    which keeps "detection within a bounded number of rounds" a concrete,
    testable statement.
    """
    if len(relays) < 2:
        return []
    fresh: List[EquivocationEvidence] = []
    for i, relay in enumerate(relays):
        fresh.extend(relay.exchange(relays[(i + 1) % len(relays)]))
    return fresh
