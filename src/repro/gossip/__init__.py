"""Gossiped signed tree heads and split-view detection.

Closes the last trust gap in the reproduction: every robustness layer so
far assumes the trusted logger is *honest*, and a compromised logger can
serve different, internally consistent histories to different observers
(a split view).  This package makes that attack detectable with
cryptographic evidence:

- :mod:`repro.gossip.sth` -- signed tree heads, the logger's signature
  over its own ``(entries, chain_head, merkle_root, timestamp)``.
- :mod:`repro.gossip.monitor` -- a client's verified-head cache with
  append-only (consistency proof) checking.
- :mod:`repro.gossip.relay` -- STH gossip between observers; conflicting
  heads meet and convict the logger.
- :mod:`repro.gossip.evidence` -- the self-contained
  :class:`EquivocationEvidence` pair anyone can re-verify.
"""

from repro.gossip.evidence import (
    KIND_CONSISTENCY,
    KIND_FORK,
    EquivocationEvidence,
    make_evidence,
)
from repro.gossip.monitor import TreeHeadMonitor
from repro.gossip.relay import GossipRelay, gossip_round
from repro.gossip.sth import (
    SCOPE_LOG,
    SignedTreeHead,
    issue_sth,
    require_valid,
)

__all__ = [
    "EquivocationEvidence",
    "GossipRelay",
    "KIND_CONSISTENCY",
    "KIND_FORK",
    "SCOPE_LOG",
    "SignedTreeHead",
    "TreeHeadMonitor",
    "gossip_round",
    "issue_sth",
    "make_evidence",
    "require_valid",
]
