"""Self-contained equivocation evidence.

When two signed tree heads from the same log conflict, the pair *is* the
proof of misbehavior: anyone holding the logger's public key can re-verify
both signatures and observe the contradiction, with no trust in whoever
assembled the evidence.  Two conflict shapes exist:

- ``fork``: equal size, different root or chain head -- the logger showed
  two different histories of the same length (a split view).
- ``consistency``: different sizes, but the logger could not (or refused
  to) produce a valid RFC 6962 consistency proof from the smaller head to
  the larger -- the "extension" rewrote history instead of appending.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.crypto.keys import PublicKey
from repro.errors import DecodingError
from repro.gossip.sth import SignedTreeHead
from repro.serialization import WireMessage, bytes_, string

#: Evidence kinds.
KIND_FORK = "fork"
KIND_CONSISTENCY = "consistency"


class _EvidenceWire(WireMessage):
    kind = string(1)
    detail = string(2)
    first_source = string(3)
    second_source = string(4)
    first_sth = bytes_(5)
    second_sth = bytes_(6)


@dataclass(frozen=True)
class EquivocationEvidence:
    """A convicting pair of signed tree heads plus discovery metadata.

    ``first``/``second`` are ordered by ``entries`` (ascending; ties keep
    observation order) so fork evidence always has equal sizes and
    consistency evidence always runs small -> large.
    """

    kind: str
    first: SignedTreeHead
    second: SignedTreeHead
    detail: str = ""
    sources: Tuple[str, str] = field(default=("", ""))

    @property
    def log_id(self) -> str:
        return self.first.log_id

    @property
    def scope(self) -> int:
        return self.first.scope

    def verify(self, public_key: PublicKey) -> bool:
        """Re-derive the conviction from scratch: both signatures must be
        the logger's, and the pair must actually contradict append-only
        growth of a single history."""
        if not self.first.verify(public_key) or not self.second.verify(public_key):
            return False
        if self.first.log_id != self.second.log_id:
            return False
        if self.first.scope != self.second.scope:
            return False
        if self.kind == KIND_FORK:
            return self.first.conflicts_with(self.second)
        if self.kind == KIND_CONSISTENCY:
            # The heads differ in size; the conviction rests on the logger
            # having failed the consistency challenge recorded in `detail`.
            # The pair is still checked for the minimal contradiction shape.
            return self.first.entries != self.second.entries
        return False

    def describe(self) -> str:
        return (
            f"equivocation[{self.kind}] {self.first.describe()} "
            f"vs {self.second.describe()}"
            + (f" ({self.detail})" if self.detail else "")
        )

    # -- serialization (reports, CI artifacts) ------------------------------

    def to_bytes(self) -> bytes:
        return _EvidenceWire(
            kind=self.kind,
            detail=self.detail,
            first_source=self.sources[0],
            second_source=self.sources[1],
            first_sth=self.first.to_bytes(),
            second_sth=self.second.to_bytes(),
        ).encode()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "EquivocationEvidence":
        try:
            wire = _EvidenceWire.decode(blob)
        except Exception as exc:  # noqa: BLE001 - normalize decode failures
            raise DecodingError(f"malformed equivocation evidence: {exc}") from exc
        return cls(
            kind=wire.kind,
            first=SignedTreeHead.from_bytes(wire.first_sth),
            second=SignedTreeHead.from_bytes(wire.second_sth),
            detail=wire.detail,
            sources=(wire.first_source, wire.second_source),
        )


def make_evidence(
    kind: str,
    a: SignedTreeHead,
    b: SignedTreeHead,
    detail: str = "",
    sources: Tuple[str, str] = ("", ""),
) -> EquivocationEvidence:
    """Order the pair canonically (ascending size) and build evidence."""
    if b.entries < a.entries:
        a, b = b, a
        sources = (sources[1], sources[0])
    return EquivocationEvidence(
        kind=kind, first=a, second=b, detail=detail, sources=sources
    )
