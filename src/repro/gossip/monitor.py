"""Client-side verified-head cache (the "act local" half).

A :class:`TreeHeadMonitor` is what a single client keeps: the latest
signed tree head it has *verified* -- signature checked against the
logger's public key, and append-only growth from the previously verified
head checked via a consistency proof.  A head that fails either check
never enters the cache; a head that contradicts a cached one produces
:class:`~repro.gossip.evidence.EquivocationEvidence` on the spot.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional

from repro.crypto.keys import PublicKey
from repro.errors import LogIntegrityError
from repro.gossip.evidence import (
    KIND_CONSISTENCY,
    KIND_FORK,
    EquivocationEvidence,
    make_evidence,
)
from repro.gossip.sth import SignedTreeHead

#: ``prove_consistency(old_size, new_size) -> MerkleConsistencyProof``,
#: typically a bound ``RemoteLogger.prove_consistency``.
ConsistencyFetcher = Callable[[int, int], object]


class TreeHeadMonitor:
    """Append-only verification of one log's tree heads, scope by scope."""

    def __init__(self, public_key: Optional[PublicKey] = None):
        self._key = public_key
        # scope -> latest verified head
        self._verified: Dict[int, SignedTreeHead] = {}
        self._evidence: List[EquivocationEvidence] = []
        self._lock = threading.Lock()

    def set_key(self, public_key: PublicKey) -> None:
        with self._lock:
            self._key = public_key

    def verified_head(self, scope: int = 0) -> Optional[SignedTreeHead]:
        with self._lock:
            return self._verified.get(scope)

    def evidence(self) -> List[EquivocationEvidence]:
        with self._lock:
            return list(self._evidence)

    def observe(
        self,
        sth: SignedTreeHead,
        prove_consistency: Optional[ConsistencyFetcher] = None,
    ) -> SignedTreeHead:
        """Verify ``sth`` and fold it into the cache.

        Raises :class:`LogIntegrityError` on a bad signature, on a fork
        against the cached head, or on a failed/refused consistency proof;
        fork and consistency failures also record evidence first, so the
        caller can retrieve the convicting pair after catching the error.
        """
        with self._lock:
            key = self._key
        if key is not None and not sth.verify(key):
            raise LogIntegrityError(
                f"tree head from {sth.log_id!r} failed signature verification"
            )
        with self._lock:
            held = self._verified.get(sth.scope)
        if held is not None and held.log_id == sth.log_id:
            if held.conflicts_with(sth):
                self._record(
                    make_evidence(
                        KIND_FORK, held, sth, detail="same size, different root"
                    )
                )
                raise LogIntegrityError(
                    f"log {sth.log_id!r} equivocated: two size-{sth.entries} "
                    "heads with different roots"
                )
            if sth.entries == held.entries:
                return held  # identical head re-observed; nothing to do
            old, new = (held, sth) if held.entries < sth.entries else (sth, held)
            if prove_consistency is not None:
                self._challenge(old, new, prove_consistency)
            if sth.entries < held.entries:
                return held  # verified, but the cache already holds newer
        with self._lock:
            self._verified[sth.scope] = sth
        return sth

    def _challenge(
        self,
        old: SignedTreeHead,
        new: SignedTreeHead,
        prove_consistency: ConsistencyFetcher,
    ) -> None:
        try:
            proof = prove_consistency(old.entries, new.entries)
            ok = bool(
                proof is not None
                and proof.verify(old.merkle_root, new.merkle_root)  # type: ignore[attr-defined]
            )
            detail = "" if ok else "consistency proof does not verify"
        except Exception as exc:  # noqa: BLE001 - refusal is also evidence
            ok = False
            detail = f"logger failed the consistency challenge: {exc}"
        if not ok:
            self._record(
                make_evidence(KIND_CONSISTENCY, old, new, detail=detail)
            )
            raise LogIntegrityError(
                f"log {old.log_id!r} is not append-only between sizes "
                f"{old.entries} and {new.entries}: {detail}"
            )

    def _record(self, evidence: EquivocationEvidence) -> None:
        with self._lock:
            self._evidence.append(evidence)
