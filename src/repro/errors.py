"""Exception hierarchy for the ADLP reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CryptoError(ReproError):
    """Base class for failures in the cryptographic substrate."""


class KeyGenerationError(CryptoError):
    """Raised when RSA key generation fails (e.g. bad parameters)."""


class SignatureError(CryptoError):
    """Raised when signing fails or a signature is structurally unusable.

    Note that a signature that simply does not verify is *not* an error:
    verification functions return ``False`` in that case.  This exception is
    reserved for misuse, e.g. a message too large for the key modulus.
    """


class EncodingError(ReproError):
    """Base class for serialization failures."""


class DecodingError(EncodingError):
    """Raised when a byte stream cannot be decoded into a message."""


class SchemaError(EncodingError):
    """Raised when a message schema is declared or used inconsistently."""


class MiddlewareError(ReproError):
    """Base class for publish-subscribe middleware failures."""


class NameError_(MiddlewareError):
    """Raised for invalid node or topic names.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`NameError`.
    """


class TopicTypeError(MiddlewareError):
    """Raised when publishers/subscribers disagree about a topic's type."""


class DuplicatePublisherError(MiddlewareError):
    """Raised when a second publisher registers for an existing topic.

    The paper's system model (Section II) requires that *no two components
    publish the same data type*; the master enforces this invariant.
    """


class TransportError(MiddlewareError):
    """Raised for transport-level failures (framing, connection loss)."""


class NodeShutdownError(MiddlewareError):
    """Raised when an operation is attempted on a node that was shut down."""


class ProtocolError(ReproError):
    """Base class for ADLP protocol violations."""


class AckTimeoutError(ProtocolError):
    """Raised when a publisher gives up waiting for a subscriber's ACK."""


class StaleSequenceError(ProtocolError):
    """Raised when a message or ACK carries an out-of-window sequence number."""


class LoggingError(ReproError):
    """Base class for failures in log generation or ingestion."""


class LogIntegrityError(LoggingError):
    """Raised when the tamper-evident structure of a log store is violated."""


class ServerBusy(LoggingError):
    """The log server answered but refused the work because it is
    overloaded (admission control tripped its high watermark).

    Distinct from :class:`LoggingError` rejections (the request was fine,
    retry later) and from transport trouble (the server *did* answer).
    Carries the server's hints so callers can back off intelligently
    instead of hammering a saturated ingest path.
    """

    def __init__(
        self,
        message: str = "log server is overloaded",
        retry_after: float = 0.0,
        queue_depth: int = 0,
    ):
        super().__init__(message)
        #: Server-suggested seconds to wait before retrying (0 = no hint).
        self.retry_after = retry_after
        #: The server's ingest queue depth when it refused (observability).
        self.queue_depth = queue_depth


class DeadlineExceeded(LoggingError):
    """A request's client-stamped deadline budget expired before the
    server performed the expensive work (the entry was NOT ingested)."""


class UnknownComponentError(LoggingError):
    """Raised when a log entry references a component with no registered key."""


class ProofError(LoggingError, IndexError):
    """Raised when a Merkle proof request is malformed or unsatisfiable.

    Covers out-of-range or negative leaf indexes, tree sizes beyond the
    current log, and inverted consistency ranges.  Deliberately *not* a
    :class:`LogIntegrityError`: the log is fine, the request is not, and
    remote servers answer it with a clean typed error rather than a
    traceback.  Also derives from :class:`IndexError` so callers that
    treated proof requests as plain sequence lookups keep working.
    """


class AuditError(ReproError):
    """Base class for auditor failures (not detections -- real errors)."""
