"""Example applications built on the middleware + ADLP stack."""
