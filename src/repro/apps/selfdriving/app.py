"""Application wiring: the full Figure 11(b) system under one roof.

:class:`SelfDrivingApp` instantiates the world, all eight nodes, and -- per
the chosen scheme -- a logging protocol for each node:

- ``scheme="none"``  -> plain transport, no logging (Table II "No Logging");
- ``scheme="naive"`` -> Definition 2's base logging (Table II "Base");
- ``scheme="adlp"``  -> the full protocol (Table II "ADLP").

All nodes share one process (the paper's nodes share one NUC) and one
master; data still crosses the configured transport per link.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.selfdriving import nodes as app_nodes
from repro.apps.selfdriving.track import Track, World
from repro.core.adlp_protocol import AdlpProtocol
from repro.core.log_server import LogServer
from repro.core.naive_protocol import NaiveProtocol
from repro.core.policy import AdlpConfig
from repro.crypto.keys import KeyPair, generate_keypair
from repro.middleware.master import Master
from repro.middleware.transport.base import Transport, TransportProtocol

SCHEMES = ("none", "naive", "adlp")


@dataclass
class AppMetrics:
    """What a run of the application produced."""

    duration_s: float
    distance_m: float
    laps: float
    final_offset_m: float
    messages_by_node: Dict[str, int]
    log_entries: int
    log_bytes: int


class SelfDrivingApp:
    """Builds, runs, and tears down the self-driving application.

    :param scheme: logging scheme, one of :data:`SCHEMES`.
    :param log_server: required for ``naive``/``adlp`` schemes; created
        automatically when omitted.
    :param transport: middleware transport (in-process by default).
    :param adlp_config: protocol knobs for the ``adlp`` scheme.
    :param keypairs: optional pre-generated keys per node name (tests use
        seeded keys to avoid ~1 s of RSA generation per node).
    :param camera_hz: camera rate; the paper runs 20 Hz.
    """

    def __init__(
        self,
        scheme: str = "adlp",
        log_server: Optional[LogServer] = None,
        transport: Optional[Transport] = None,
        adlp_config: Optional[AdlpConfig] = None,
        keypairs: Optional[Dict[str, KeyPair]] = None,
        track: Optional[Track] = None,
        camera_hz: float = 20.0,
        naive_stores_hash: bool = False,
        protocol_overrides: Optional[Dict[str, TransportProtocol]] = None,
    ):
        if scheme not in SCHEMES:
            raise ValueError(f"scheme must be one of {SCHEMES}, got {scheme!r}")
        self.scheme = scheme
        # note: `or` would discard an *empty* LogServer (it is falsy via
        # __len__), so test identity explicitly
        if log_server is not None:
            self.log_server = log_server
        else:
            self.log_server = LogServer() if scheme != "none" else None
        self.master = Master(transport=transport)
        self.world = World(track=track)
        self.adlp_config = adlp_config or AdlpConfig()
        self.naive_stores_hash = naive_stores_hash
        #: per-node replacement protocols, e.g. an adversarial
        #: :class:`~repro.adversary.harness.UnfaithfulAdlpProtocol` for one
        #: node while the rest run plain ADLP
        self._protocol_overrides = protocol_overrides or {}
        self._keypairs = keypairs or {}
        self._protocols: Dict[str, TransportProtocol] = {}

        factory = self._protocol_for
        self.nodes: List[app_nodes.AppNode] = [
            app_nodes.VehicleNode(self.master, factory, self.world),
            app_nodes.ControllerNode(self.master, factory),
            app_nodes.PlannerNode(self.master, factory),
            app_nodes.ObstacleDetectorNode(self.master, factory),
            app_nodes.LaneDetectorNode(self.master, factory),
            app_nodes.SignRecognizerNode(self.master, factory),
            app_nodes.LidarNode(self.master, factory, self.world),
            app_nodes.ImageFeederNode(
                self.master, factory, self.world, hz=camera_hz
            ),
        ]
        self._started = False

    def _protocol_for(self, node_name: str) -> Optional[TransportProtocol]:
        override = self._protocol_overrides.get(node_name)
        if override is not None:
            self._protocols[node_name] = override
            return override
        if self.scheme == "none":
            return None
        assert self.log_server is not None
        if self.scheme == "naive":
            protocol: TransportProtocol = NaiveProtocol(
                node_name,
                self.log_server.submit,
                subscriber_stores_hash=self.naive_stores_hash,
            )
        else:
            protocol = AdlpProtocol(
                node_name,
                self.log_server,
                config=self.adlp_config,
                keypair=self._keypairs.get(node_name),
            )
        self._protocols[node_name] = protocol
        return protocol

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start all periodic node activity (sensors, vehicle physics)."""
        if self._started:
            return
        self._started = True
        for node in self.nodes:
            node.start()

    def run_for(self, seconds: float) -> AppMetrics:
        """Start (if needed), run for ``seconds``, and report metrics.

        The application keeps running afterwards; call :meth:`shutdown` to
        stop it.
        """
        self.start()
        t0 = time.monotonic()
        time.sleep(seconds)
        duration = time.monotonic() - t0
        return self.metrics(duration)

    def metrics(self, duration_s: float) -> AppMetrics:
        """Snapshot of application-level and logging-level counters."""
        messages = {}
        for node in self.nodes:
            published = sum(p.stats.published for p in node.node._publishers)
            messages[node.NAME] = published
        return AppMetrics(
            duration_s=duration_s,
            distance_m=self.world.distance_traveled,
            laps=self.world.laps,
            final_offset_m=self.world.lateral_offset(),
            messages_by_node=messages,
            log_entries=len(self.log_server) if self.log_server else 0,
            log_bytes=self.log_server.total_bytes if self.log_server else 0,
        )

    def flush_logs(self, timeout: float = 5.0) -> None:
        """Wait for every node's logging thread to drain."""
        for protocol in self._protocols.values():
            flush = getattr(protocol, "flush", None)
            if callable(flush):
                flush(timeout)

    def shutdown(self, drain_s: float = 0.5) -> None:
        """Quiesce, then tear down.

        Stopping the sensor/vehicle timers first lets in-flight messages and
        their ADLP acknowledgements complete, so a faithful run's log audits
        clean: abrupt teardown would leave one-sided entries that look like
        hiding (the 'connection permanently lost' case the paper excludes).
        """
        if self._started:
            for node in self.nodes:
                node.node.stop_timers()
            time.sleep(drain_s)
        for node in self.nodes:
            node.shutdown()

    def __enter__(self) -> "SelfDrivingApp":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def seeded_keypairs(bits: int = 1024, base_seed: int = 7000) -> Dict[str, KeyPair]:
    """Deterministic keys for every app node (test/benchmark convenience)."""
    return {
        name: generate_keypair(bits, seed=base_seed + i)
        for i, name in enumerate(sorted(app_nodes.GRAPH))
    }
