"""Synthetic camera and LIDAR.

The camera renders a 640x480 RGB frame (921600 payload bytes, matching the
paper's ~900 KB/image at 20 Hz) in which the perception nodes can *really*
find what they need:

- a bright lane marking whose column position encodes the car's view of the
  lane center (the lane detector recovers lateral offset from it);
- a horizon tilt band encoding heading error;
- a sign blob whose color identifies the sign type and whose size encodes
  distance (the recognizer inverts both).

The LIDAR casts 1080 beams against the track's obstacles, producing packed
float32 ranges + intensities (~8.7 KB, matching the paper's Scan).

Rendering is deliberately cheap (vectorized numpy) so a 20 Hz camera loop
leaves CPU headroom for the crypto under test.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.apps.selfdriving.track import Track, VehicleModel

# Camera geometry
IMAGE_WIDTH = 640
IMAGE_HEIGHT = 480
#: pixels of lane-marking shift per meter of lateral offset
PIXELS_PER_METER = 120.0
#: rows of horizon shift per radian of heading error
ROWS_PER_RADIAN = 60.0

# Render colors (R, G, B)
_ROAD = (60, 60, 60)
_SKY = (120, 160, 220)
_LANE = (250, 240, 80)
_SIGN_COLORS = {
    "stop": (220, 30, 30),
    "speed_1": (30, 60, 220),
    "speed_2": (30, 160, 220),
}
#: sign blob edge in pixels when the sign is 1 m away
_SIGN_BASE_SIZE = 120.0

# LIDAR geometry
LIDAR_BEAMS = 1080
LIDAR_RANGE_MAX = 12.0
LIDAR_RANGE_MIN = 0.05


class Camera:
    """Renders what the car sees, with perception-recoverable encodings."""

    def __init__(self, track: Track, rng_seed: int = 0):
        self.track = track
        self._rng = np.random.default_rng(rng_seed)
        # static base frame: sky over road, plus mild static texture
        frame = np.empty((IMAGE_HEIGHT, IMAGE_WIDTH, 3), dtype=np.uint8)
        frame[: IMAGE_HEIGHT // 2] = _SKY
        frame[IMAGE_HEIGHT // 2 :] = _ROAD
        noise = self._rng.integers(0, 12, size=frame.shape, dtype=np.uint8)
        self._base = frame + noise

    def render(self, vehicle: VehicleModel) -> bytes:
        """Render one RGB frame for the given vehicle pose.

        Returns ``IMAGE_HEIGHT * IMAGE_WIDTH * 3`` raw bytes (row-major).
        """
        frame = self._base.copy()
        offset = self.track.lateral_offset(vehicle.x, vehicle.y)
        heading_err = self.track.heading_error(vehicle.x, vehicle.y, vehicle.heading)

        # horizon band encodes heading error
        horizon = int(IMAGE_HEIGHT // 2 + ROWS_PER_RADIAN * heading_err)
        horizon = max(4, min(IMAGE_HEIGHT - 5, horizon))
        frame[horizon - 2 : horizon + 2] = (255, 255, 255)

        # lane marking column encodes lateral offset (car drifting outside
        # -> marking appears shifted inside, i.e. to the left)
        lane_col = int(IMAGE_WIDTH // 2 - PIXELS_PER_METER * offset)
        lane_col = max(4, min(IMAGE_WIDTH - 5, lane_col))
        frame[IMAGE_HEIGHT // 2 :, lane_col - 3 : lane_col + 3] = _LANE

        # nearest visible sign, rendered as a colored square whose size
        # shrinks with distance
        sign_info = self.track.sign_ahead(vehicle.x, vehicle.y)
        if sign_info is not None:
            sign, distance = sign_info
            color = _SIGN_COLORS.get(sign.kind)
            if color is not None:
                size = int(_SIGN_BASE_SIZE / max(distance, 1.0))
                size = max(6, min(120, size))
                top = IMAGE_HEIGHT // 4
                left = 3 * IMAGE_WIDTH // 4
                frame[top : top + size, left : left + size] = color

        return frame.tobytes()


def decode_lane(frame: bytes) -> Tuple[float, float]:
    """Inverse of the camera's lane/horizon encoding.

    Returns ``(lateral_offset_m, heading_error_rad)`` as the lane detector
    perceives them.  Raises :class:`ValueError` when no lane marking is
    found (e.g. the frame is not a camera frame).
    """
    image = np.frombuffer(frame, dtype=np.uint8)
    if image.size != IMAGE_HEIGHT * IMAGE_WIDTH * 3:
        raise ValueError("not a camera frame")
    image = image.reshape(IMAGE_HEIGHT, IMAGE_WIDTH, 3)

    # lane marking: bright yellow pixels in the road half
    road = image[IMAGE_HEIGHT // 2 :]
    lane_mask = (
        (road[:, :, 0] > 200) & (road[:, :, 1] > 200) & (road[:, :, 2] < 160)
    )
    columns = np.nonzero(lane_mask.any(axis=0))[0]
    if columns.size == 0:
        raise ValueError("no lane marking visible")
    lane_col = float(columns.mean())
    offset = (IMAGE_WIDTH // 2 - lane_col) / PIXELS_PER_METER

    # horizon: pure-white rows
    white = (image > 250).all(axis=2)
    rows = np.nonzero(white.all(axis=1) | (white.sum(axis=1) > IMAGE_WIDTH * 0.9))[0]
    if rows.size == 0:
        heading_err = 0.0
    else:
        heading_err = (float(rows.mean()) - IMAGE_HEIGHT // 2) / ROWS_PER_RADIAN
    return offset, heading_err


def decode_sign(frame: bytes) -> Optional[Tuple[str, float]]:
    """Inverse of the camera's sign encoding.

    Returns ``(kind, estimated_distance_m)`` or ``None`` when no sign blob
    is visible.
    """
    image = np.frombuffer(frame, dtype=np.uint8)
    if image.size != IMAGE_HEIGHT * IMAGE_WIDTH * 3:
        raise ValueError("not a camera frame")
    image = image.reshape(IMAGE_HEIGHT, IMAGE_WIDTH, 3)
    region = image[
        IMAGE_HEIGHT // 4 : IMAGE_HEIGHT // 4 + 130,
        3 * IMAGE_WIDTH // 4 : 3 * IMAGE_WIDTH // 4 + 130,
    ]
    for kind, (r, g, b) in _SIGN_COLORS.items():
        mask = (
            (np.abs(region[:, :, 0].astype(int) - r) < 30)
            & (np.abs(region[:, :, 1].astype(int) - g) < 30)
            & (np.abs(region[:, :, 2].astype(int) - b) < 30)
        )
        count = int(mask.sum())
        if count >= 36:  # at least a 6x6 blob
            size = math.sqrt(count)
            distance = _SIGN_BASE_SIZE / size
            return kind, distance
    return None


class Lidar:
    """Casts beams against the track's obstacles."""

    def __init__(self, track: Track, beams: int = LIDAR_BEAMS):
        self.track = track
        self.beams = beams
        self._angles = np.linspace(-math.pi, math.pi, beams, endpoint=False)

    def scan(self, vehicle: VehicleModel) -> Tuple[bytes, bytes]:
        """Return packed float32 ``(ranges, intensities)`` for one sweep.

        Beam angles are relative to the vehicle heading.  Ranges clip to
        :data:`LIDAR_RANGE_MAX` when nothing is hit.
        """
        angles = self._angles + vehicle.heading
        ranges = np.full(self.beams, LIDAR_RANGE_MAX, dtype=np.float64)
        dx = np.cos(angles)
        dy = np.sin(angles)
        for obstacle in self.track.obstacles:
            # ray-circle intersection per beam, vectorized
            ox = obstacle.x - vehicle.x
            oy = obstacle.y - vehicle.y
            proj = ox * dx + oy * dy  # distance along beam to closest point
            closest_sq = (ox * ox + oy * oy) - proj * proj
            hit = (closest_sq <= obstacle.radius_m**2) & (proj > 0)
            depth = np.sqrt(
                np.maximum(obstacle.radius_m**2 - closest_sq, 0.0)
            )
            candidate = proj - depth
            valid = hit & (candidate >= LIDAR_RANGE_MIN)
            ranges = np.where(valid, np.minimum(ranges, candidate), ranges)
        intensities = np.where(ranges < LIDAR_RANGE_MAX, 1.0, 0.0)
        return (
            ranges.astype(np.float32).tobytes(),
            intensities.astype(np.float32).tobytes(),
        )


def decode_obstacles(
    ranges_packed: bytes, vehicle_heading: float = 0.0, max_range: float = LIDAR_RANGE_MAX
) -> Tuple[np.ndarray, np.ndarray]:
    """Extract (relative angles, distances) of beams that hit something."""
    ranges = np.frombuffer(ranges_packed, dtype=np.float32)
    angles = np.linspace(-math.pi, math.pi, ranges.size, endpoint=False)
    mask = ranges < max_range
    return angles[mask], ranges[mask].astype(np.float64)
