"""The miniaturized self-driving application (paper Section V-A).

The paper demonstrates ADLP on a 1/10-scale car navigating an indoor track
with a camera and a LIDAR.  Hardware being unavailable, this package
recreates the *software* system end to end:

- :mod:`repro.apps.selfdriving.track` -- a circular track, kinematic
  vehicle model, traffic signs, and obstacles (the physical world).
- :mod:`repro.apps.selfdriving.sensors` -- a synthetic camera rendering
  ~921 KB RGB frames and a 1080-beam LIDAR producing ~8.7 KB scans --
  matching the paper's Image and Scan payload sizes (Table I).
- :mod:`repro.apps.selfdriving.nodes` -- the ROS-node graph of
  Figure 11(b): image feeder, LIDAR, lane detector, traffic-sign
  recognizer, obstacle detector, planner, controller, vehicle.
- :mod:`repro.apps.selfdriving.app` -- wiring: build the whole application
  under a chosen logging scheme (none / naive / ADLP) and drive it.

The control loop is genuinely closed: the lane detector reads lane markings
out of the rendered camera frames, the planner steers from its output, and
the vehicle model integrates the commands -- so data flowing through ADLP
is what actually keeps the car on the track.
"""

from repro.apps.selfdriving.track import Track, VehicleModel, World, TrafficSignPost, Obstacle
from repro.apps.selfdriving.sensors import Camera, Lidar
from repro.apps.selfdriving.app import SelfDrivingApp, AppMetrics

__all__ = [
    "Track",
    "VehicleModel",
    "World",
    "TrafficSignPost",
    "Obstacle",
    "Camera",
    "Lidar",
    "SelfDrivingApp",
    "AppMetrics",
]
