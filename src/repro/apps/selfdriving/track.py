"""The physical world: track geometry, vehicle kinematics, signs, obstacles.

The track is a circle of radius :attr:`Track.radius`; the car should drive
its centerline counter-clockwise.  A circular track keeps the geometry exact
(lateral offset is simply the radial distance error) while still exercising
a real feedback loop -- with zero steering the car drives straight and
leaves the lane, so staying on track requires the full
camera -> lane detector -> planner -> controller -> vehicle pipeline to
work.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class TrafficSignPost:
    """A sign placed beside the track at a given arc angle."""

    kind: str  # "stop" or "speed_<n>"
    angle_rad: float  # position along the track circle
    visible_range_m: float = 6.0  # how far away the camera can resolve it


@dataclass(frozen=True)
class Obstacle:
    """A static circular obstacle on or near the track."""

    x: float
    y: float
    radius_m: float = 0.25


@dataclass(frozen=True)
class Track:
    """A circular track with optional signs and obstacles."""

    radius: float = 10.0
    lane_width: float = 1.0
    signs: Tuple[TrafficSignPost, ...] = ()
    obstacles: Tuple[Obstacle, ...] = ()

    def centerline_point(self, angle_rad: float) -> Tuple[float, float]:
        """World coordinates of the centerline at ``angle_rad``."""
        return (
            self.radius * math.cos(angle_rad),
            self.radius * math.sin(angle_rad),
        )

    def lateral_offset(self, x: float, y: float) -> float:
        """Signed distance from the centerline (positive = outside)."""
        return math.hypot(x, y) - self.radius

    def track_angle(self, x: float, y: float) -> float:
        """Arc angle of the point's radial projection onto the circle."""
        return math.atan2(y, x)

    def heading_error(self, x: float, y: float, heading: float) -> float:
        """Angle between the car's heading and the (CCW) tangent direction,
        normalized to (-pi, pi]."""
        tangent = self.track_angle(x, y) + math.pi / 2.0
        err = heading - tangent
        while err <= -math.pi:
            err += 2.0 * math.pi
        while err > math.pi:
            err -= 2.0 * math.pi
        return err

    def sign_ahead(
        self, x: float, y: float
    ) -> Optional[Tuple[TrafficSignPost, float]]:
        """The nearest visible sign ahead of the car, with its distance.

        "Ahead" means at a greater arc angle (CCW travel), within the sign's
        visible range measured along the arc.
        """
        angle = self.track_angle(x, y)
        best: Optional[Tuple[TrafficSignPost, float]] = None
        for sign in self.signs:
            delta = (sign.angle_rad - angle) % (2.0 * math.pi)
            distance = delta * self.radius
            if 0.0 < distance <= sign.visible_range_m:
                if best is None or distance < best[1]:
                    best = (sign, distance)
        return best


@dataclass
class VehicleModel:
    """Kinematic bicycle model driving on the world plane."""

    x: float = 0.0
    y: float = 0.0
    heading: float = 0.0
    speed: float = 0.0
    wheelbase: float = 0.3  # meters, 1/10-scale car

    #: commanded inputs, applied by :meth:`step`
    steering_angle: float = 0.0  # radians at the front axle
    target_speed: float = 0.0  # m/s

    #: simple first-order speed response
    accel_limit: float = 4.0  # m/s^2

    def step(self, dt: float) -> None:
        """Advance the model by ``dt`` seconds."""
        speed_error = self.target_speed - self.speed
        max_delta = self.accel_limit * dt
        self.speed += max(-max_delta, min(max_delta, speed_error))
        self.x += self.speed * math.cos(self.heading) * dt
        self.y += self.speed * math.sin(self.heading) * dt
        self.heading += self.speed * math.tan(self.steering_angle) / self.wheelbase * dt
        self.heading = math.atan2(math.sin(self.heading), math.cos(self.heading))


def default_track() -> Track:
    """The track used by the demo: one stop sign and one slow zone."""
    return Track(
        radius=10.0,
        lane_width=1.0,
        signs=(
            TrafficSignPost(kind="stop", angle_rad=math.pi / 2),
            TrafficSignPost(kind="speed_1", angle_rad=3 * math.pi / 2),
        ),
        obstacles=(Obstacle(x=0.0, y=-11.5, radius_m=0.3),),
    )


class World:
    """Thread-safe shared state between the vehicle node and the sensors.

    The vehicle node owns stepping; sensor nodes only read.  Mirrors the
    real system where sensors observe the physical car's pose.
    """

    def __init__(self, track: Optional[Track] = None, start_angle: float = 0.0):
        self.track = track or default_track()
        px, py = self.track.centerline_point(start_angle)
        self._vehicle = VehicleModel(
            x=px, y=py, heading=start_angle + math.pi / 2.0
        )
        self._lock = threading.Lock()
        self._distance = 0.0
        self._last_angle = start_angle
        self._laps = 0.0

    def apply_command(self, steering_angle: float, target_speed: float) -> None:
        """Actuate: set the commanded steering and speed."""
        with self._lock:
            self._vehicle.steering_angle = steering_angle
            self._vehicle.target_speed = target_speed

    def step(self, dt: float) -> None:
        """Advance physics by ``dt`` (called by the vehicle node's loop)."""
        with self._lock:
            before = self.track.track_angle(self._vehicle.x, self._vehicle.y)
            self._vehicle.step(dt)
            after = self.track.track_angle(self._vehicle.x, self._vehicle.y)
            self._distance += self._vehicle.speed * dt
            delta = (after - before) % (2.0 * math.pi)
            if delta < math.pi:  # forward progress only
                self._laps += delta / (2.0 * math.pi)

    def snapshot(self) -> VehicleModel:
        """A copy of the current vehicle state (for sensors and metrics)."""
        with self._lock:
            v = self._vehicle
            return VehicleModel(
                x=v.x,
                y=v.y,
                heading=v.heading,
                speed=v.speed,
                wheelbase=v.wheelbase,
                steering_angle=v.steering_angle,
                target_speed=v.target_speed,
            )

    @property
    def distance_traveled(self) -> float:
        with self._lock:
            return self._distance

    @property
    def laps(self) -> float:
        with self._lock:
            return self._laps

    def lateral_offset(self) -> float:
        """Current signed offset from the lane centerline."""
        state = self.snapshot()
        return self.track.lateral_offset(state.x, state.y)
