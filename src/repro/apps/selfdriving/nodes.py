"""The ROS-node graph of the self-driving application (Figure 11(b)).

Topics and rates:

- ``/camera/image_raw`` (sensors/Image, 20 Hz) <- image_feeder
- ``/scan``             (sensors/LaserScan, 10 Hz) <- lidar
- ``/perception/lane``  (perception/LaneOffset) <- lane_detector
- ``/perception/sign``  (perception/TrafficSign) <- sign_recognizer
- ``/perception/obstacles`` (perception/ObstacleArray) <- obstacle_detector
- ``/planning/path``    (planning/PlannedPath) <- planner
- ``/control/steering`` (control/Steering) <- controller
- ``/vehicle/state``    (vehicle/State) <- vehicle

Every node is plain application code over the middleware API: none of them
mention ADLP, which is the transparency property the paper claims ("no
modification at the application level is required").
"""

from __future__ import annotations

import math
import threading
from typing import Callable, Optional

from repro.apps.selfdriving import sensors
from repro.apps.selfdriving.track import World
from repro.middleware.master import Master
from repro.middleware.msgtypes import (
    Image,
    LaneOffset,
    LaserScan,
    ObstacleArray,
    PlannedPath,
    Steering,
    TrafficSign,
    VehicleState,
)
from repro.middleware.node import Node
from repro.middleware.transport.base import TransportProtocol

#: Topic names, shared with the benchmarks and the audit examples.
TOPIC_IMAGE = "/camera/image_raw"
TOPIC_SCAN = "/scan"
TOPIC_LANE = "/perception/lane"
TOPIC_SIGN = "/perception/sign"
TOPIC_OBSTACLES = "/perception/obstacles"
TOPIC_PATH = "/planning/path"
TOPIC_STEERING = "/control/steering"
TOPIC_STATE = "/vehicle/state"

#: node name -> topics it publishes (the Figure 11(b) structure)
GRAPH = {
    "/image_feeder": [TOPIC_IMAGE],
    "/lidar": [TOPIC_SCAN],
    "/lane_detector": [TOPIC_LANE],
    "/sign_recognizer": [TOPIC_SIGN],
    "/obstacle_detector": [TOPIC_OBSTACLES],
    "/planner": [TOPIC_PATH],
    "/controller": [TOPIC_STEERING],
    "/vehicle": [TOPIC_STATE],
}

ProtocolFactory = Callable[[str], Optional[TransportProtocol]]


class AppNode:
    """Base: owns a middleware node created from the app's factory."""

    NAME = "/node"

    def __init__(self, master: Master, protocol_factory: ProtocolFactory):
        self.node = Node(self.NAME, master, protocol=protocol_factory(self.NAME))

    def start(self) -> None:
        """Begin periodic work (timers); default none."""

    def shutdown(self) -> None:
        self.node.shutdown()


class ImageFeederNode(AppNode):
    """Publishes camera frames at 20 Hz (the paper's image rate)."""

    NAME = "/image_feeder"

    def __init__(self, master, protocol_factory, world: World, hz: float = 20.0):
        super().__init__(master, protocol_factory)
        self._camera = sensors.Camera(world.track)
        self._world = world
        self._hz = hz
        self._pub = self.node.advertise(TOPIC_IMAGE, Image, queue_size=4)

    def start(self) -> None:
        self.node.create_timer(self._hz, self._tick)

    def _tick(self) -> None:
        frame = self._camera.render(self._world.snapshot())
        self._pub.publish(
            Image(
                height=sensors.IMAGE_HEIGHT,
                width=sensors.IMAGE_WIDTH,
                encoding="rgb8",
                step=sensors.IMAGE_WIDTH * 3,
                data=frame,
            )
        )


class LidarNode(AppNode):
    """Publishes LIDAR sweeps at 10 Hz."""

    NAME = "/lidar"

    def __init__(self, master, protocol_factory, world: World, hz: float = 10.0):
        super().__init__(master, protocol_factory)
        self._lidar = sensors.Lidar(world.track)
        self._world = world
        self._hz = hz
        self._pub = self.node.advertise(TOPIC_SCAN, LaserScan, queue_size=4)

    def start(self) -> None:
        self.node.create_timer(self._hz, self._tick)

    def _tick(self) -> None:
        ranges, intensities = self._lidar.scan(self._world.snapshot())
        self._pub.publish(
            LaserScan(
                angle_min=-math.pi,
                angle_max=math.pi,
                angle_increment=2 * math.pi / sensors.LIDAR_BEAMS,
                range_min=sensors.LIDAR_RANGE_MIN,
                range_max=sensors.LIDAR_RANGE_MAX,
                ranges=ranges,
                intensities=intensities,
            )
        )


class LaneDetectorNode(AppNode):
    """Extracts lateral offset + heading error from camera frames."""

    NAME = "/lane_detector"

    def __init__(self, master, protocol_factory):
        super().__init__(master, protocol_factory)
        self._pub = self.node.advertise(TOPIC_LANE, LaneOffset, queue_size=4)
        self.node.subscribe(TOPIC_IMAGE, Image, self._on_image)

    def _on_image(self, msg: Image) -> None:
        try:
            offset, heading_err = sensors.decode_lane(msg.data)
        except ValueError:
            return
        self._pub.publish(
            LaneOffset(offset_m=offset, heading_error_rad=heading_err, confidence=1.0)
        )


class SignRecognizerNode(AppNode):
    """Classifies traffic signs from camera frames."""

    NAME = "/sign_recognizer"

    def __init__(self, master, protocol_factory):
        super().__init__(master, protocol_factory)
        self._pub = self.node.advertise(TOPIC_SIGN, TrafficSign, queue_size=4)
        self.node.subscribe(TOPIC_IMAGE, Image, self._on_image)

    def _on_image(self, msg: Image) -> None:
        found = sensors.decode_sign(msg.data)
        if found is None:
            self._pub.publish(TrafficSign(sign="", confidence=1.0))
        else:
            kind, distance = found
            self._pub.publish(
                TrafficSign(sign=kind, confidence=1.0, distance_m=distance)
            )


class ObstacleDetectorNode(AppNode):
    """Extracts obstacle hits from LIDAR sweeps."""

    NAME = "/obstacle_detector"

    def __init__(self, master, protocol_factory):
        super().__init__(master, protocol_factory)
        self._pub = self.node.advertise(TOPIC_OBSTACLES, ObstacleArray, queue_size=4)
        self.node.subscribe(TOPIC_SCAN, LaserScan, self._on_scan)

    def _on_scan(self, msg: LaserScan) -> None:
        angles, distances = sensors.decode_obstacles(msg.ranges)
        self._pub.publish(
            ObstacleArray(
                angles_rad=[float(a) for a in angles],
                distances_m=[float(d) for d in distances],
            )
        )


class PlannerNode(AppNode):
    """Fuses lane, sign, and obstacle inputs into a planned path."""

    NAME = "/planner"

    #: steering gains (tuned for the circular track)
    K_OFFSET = 1.2
    K_HEADING = 1.8
    CRUISE_SPEED = 2.0
    STOP_DISTANCE = 2.0  # brake when a stop sign is this close
    OBSTACLE_STOP = 1.0  # brake when anything is this close dead ahead
    STOP_WAIT_S = 1.0  # dwell time at a stop sign
    STOP_CLEAR_S = 6.0  # how long to ignore the sign while passing it

    def __init__(self, master, protocol_factory):
        super().__init__(master, protocol_factory)
        self._pub = self.node.advertise(TOPIC_PATH, PlannedPath, queue_size=4)
        self._lock = threading.Lock()
        self._sign: Optional[TrafficSign] = None
        self._obstacles: Optional[ObstacleArray] = None
        self._stopped_since: Optional[float] = None
        self._stop_cleared_at: Optional[float] = None
        self.node.subscribe(TOPIC_LANE, LaneOffset, self._on_lane)
        self.node.subscribe(TOPIC_SIGN, TrafficSign, self._on_sign)
        self.node.subscribe(TOPIC_OBSTACLES, ObstacleArray, self._on_obstacles)

    def _stop_sign_applies(self, sign: Optional[TrafficSign]) -> bool:
        """Stop-and-go: brake for STOP_WAIT_S, then proceed and ignore the
        sign while driving past it."""
        import time as _time

        now = _time.monotonic()
        if (
            self._stop_cleared_at is not None
            and now - self._stop_cleared_at < self.STOP_CLEAR_S
        ):
            return False
        self._stop_cleared_at = None
        applies = (
            sign is not None
            and sign.sign == "stop"
            and sign.distance_m <= self.STOP_DISTANCE
        )
        if applies:
            if self._stopped_since is None:
                self._stopped_since = now
            elif now - self._stopped_since >= self.STOP_WAIT_S:
                self._stopped_since = None
                self._stop_cleared_at = now
                return False
        else:
            self._stopped_since = None
        return applies

    def _on_sign(self, msg: TrafficSign) -> None:
        with self._lock:
            self._sign = msg

    def _on_obstacles(self, msg: ObstacleArray) -> None:
        with self._lock:
            self._obstacles = msg

    def _on_lane(self, msg: LaneOffset) -> None:
        # Plan on every lane update (the highest-value feedback signal).
        # Stable law for CCW travel: steer left (+) when outside the lane
        # (+offset), steer right (-) when heading points inside (+error).
        curvature = self.K_OFFSET * msg.offset_m - self.K_HEADING * msg.heading_error_rad
        speed = self.CRUISE_SPEED
        braking = False
        reason = "cruise"
        with self._lock:
            sign = self._sign
            obstacles = self._obstacles
            stop_now = self._stop_sign_applies(sign)
        if stop_now:
            speed, braking, reason = 0.0, True, "stop_sign"
        elif sign is not None and sign.sign.startswith("speed_"):
            try:
                speed = min(speed, float(sign.sign.split("_", 1)[1]))
                reason = "speed_limit"
            except ValueError:
                pass
        if obstacles is not None and obstacles.distances_m:
            ahead = [
                d
                for a, d in zip(obstacles.angles_rad, obstacles.distances_m)
                if abs(a) < 0.4
            ]
            if ahead and min(ahead) <= self.OBSTACLE_STOP:
                speed, braking, reason = 0.0, True, "obstacle"
        self._pub.publish(
            PlannedPath(
                curvature=curvature, target_speed=speed, braking=braking, reason=reason
            )
        )


class ControllerNode(AppNode):
    """Turns planned paths into steering commands."""

    NAME = "/controller"

    MAX_STEER = 0.6  # radians

    def __init__(self, master, protocol_factory):
        super().__init__(master, protocol_factory)
        self._pub = self.node.advertise(TOPIC_STEERING, Steering, queue_size=4)
        self.node.subscribe(TOPIC_PATH, PlannedPath, self._on_path)

    def _on_path(self, msg: PlannedPath) -> None:
        angle = max(-self.MAX_STEER, min(self.MAX_STEER, msg.curvature))
        self._pub.publish(Steering(angle=angle, speed=msg.target_speed))


class VehicleNode(AppNode):
    """Applies steering commands to the world and publishes odometry."""

    NAME = "/vehicle"

    def __init__(self, master, protocol_factory, world: World, hz: float = 50.0):
        super().__init__(master, protocol_factory)
        self._world = world
        self._hz = hz
        self._pub = self.node.advertise(TOPIC_STATE, VehicleState, queue_size=4)
        self.node.subscribe(TOPIC_STEERING, Steering, self._on_steering)

    def start(self) -> None:
        self.node.create_timer(self._hz, self._tick)

    def _on_steering(self, msg: Steering) -> None:
        self._world.apply_command(msg.angle, msg.speed)

    def _tick(self) -> None:
        self._world.step(1.0 / self._hz)
        state = self._world.snapshot()
        self._pub.publish(
            VehicleState(
                x=state.x,
                y=state.y,
                heading_rad=state.heading,
                speed=state.speed,
                lap=int(self._world.laps),
            )
        )
