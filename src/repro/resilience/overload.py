"""Overload injection: make a healthy server act saturated.

The PR 1 transport faults (drop/delay/disconnect/truncate) model a bad
*network*; overload is a different failure mode -- the server answers,
slowly, and eventually starts refusing.  :class:`OverloadInjector` wraps
any :class:`~repro.core.log_server.LogServer`-shaped object and slows its
ingest surface down by a configurable per-entry delay, optionally only
during a window of submissions, so tests and benchmarks can drive a real
endpoint into its admission-control regime deterministically instead of
depending on the host being slow.

It is a transparent proxy: everything except the ingest methods (and
``__len__``, which proxies explicitly because ``__getattr__`` never sees
dunder lookups) passes straight through, so the wrapped server's audit /
commitment / stats surfaces keep working unchanged.
"""

from __future__ import annotations

import threading
import time
from typing import Any, List, Optional, Union


class OverloadInjector:
    """Per-entry ingest slowdown around a wrapped log server.

    ``delay`` seconds are slept per entry submitted (batches sleep
    ``delay * len(batch)``, mirroring the real cost model: signature
    verification and chain extension are per-entry).  ``burst_after`` /
    ``burst_length`` scope the slowdown to a window of submissions, so a
    scenario can model "the server degrades mid-run and then recovers".
    """

    def __init__(
        self,
        server: Any,
        delay: float = 0.0,
        burst_after: int = 0,
        burst_length: Optional[int] = None,
    ):
        if delay < 0:
            raise ValueError("delay must be >= 0")
        self._server = server
        self.delay = delay
        self.burst_after = burst_after
        self.burst_length = burst_length
        self._lock = threading.Lock()
        self._seen = 0
        self.delayed_entries = 0

    # -- slowdown ---------------------------------------------------------

    def _throttle(self, n: int) -> None:
        if self.delay <= 0 or n <= 0:
            return
        with self._lock:
            start = self._seen
            self._seen += n
        if start < self.burst_after:
            return
        if (
            self.burst_length is not None
            and start >= self.burst_after + self.burst_length
        ):
            return
        with self._lock:
            self.delayed_entries += n
        time.sleep(self.delay * n)

    # -- ingest surface (throttled) ---------------------------------------

    def submit(self, entry: Union[Any, bytes]) -> int:
        self._throttle(1)
        return self._server.submit(entry)

    def submit_batch(self, entries: List[Any]) -> List[int]:
        self._throttle(len(entries))
        return self._server.submit_batch(entries)

    def submit_to_shard(self, shard: int, entry: Any) -> int:
        self._throttle(1)
        return self._server.submit_to_shard(shard, entry)

    def submit_batch_to_shard(self, shard: int, entries: List[Any]) -> Any:
        self._throttle(len(entries))
        return self._server.submit_batch_to_shard(shard, entries)

    # -- transparent proxy ------------------------------------------------

    def __len__(self) -> int:
        return len(self._server)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._server, name)
