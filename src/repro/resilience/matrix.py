"""The churn x fault x overload scenario matrix.

Every overload-protection mechanism in this package -- admission control,
credit windows, retry budgets, shedding -- exists to keep one invariant
under stress: **no acknowledged evidence is ever lost, and the audit
never produces a false verdict**.  This module turns that sentence into
an executable grid.  A :class:`ScenarioCell` names one combination of

- **backend**: ``plain`` (one in-memory ``LogServer`` behind an
  endpoint), ``sharded`` (the threaded shard set behind one endpoint),
  ``process`` (worker subprocesses over unix sockets), ``replicated``
  (fan-out over two endpoints with spill + catch-up);
- **fault**: a transport fault profile from the PR-1 fault injector
  (``drop`` / ``delay`` / ``disconnect`` / ``truncate``), ``none``,
  ``overload`` -- a slowed ingest path plus a concurrent fire-and-forget
  flood that drives the server's admission controller into its BUSY
  regime -- or ``equivocation``: a *compromised logger*
  (:class:`~repro.adversary.forking.ForkingLogServer`) serving a forked
  view to a second client group, which STH gossip must detect within
  :data:`EQUIVOCATION_ROUND_BOUND` rounds while every honest plain cell
  (which runs the same gossip machinery against its honest logger)
  reports zero evidence;
- **churn**: ``none`` or ``restart`` (endpoint bounce, worker SIGKILL,
  or replica bounce + catch-up, whichever the backend calls a restart);
- **load**: ``light`` or ``flood`` (transmission count scales, and the
  overload cells' noise flood scales with it).

and :func:`run_cell` executes it: an honest publisher/subscriber
workload is pushed through the backend while the cell's fault, churn and
overload run, then the cell asserts (1) every acknowledged entry is
present in the final log exactly once (duplicates are tolerated -- and
counted -- only on the fire-and-forget replicated path, where a
disconnect mid-frame makes at-least-once the contract), (2) the store
passes tamper-evidence verification, (3) a full audit classifies zero
entries invalid and finds zero hidden transmissions, and (4) the
retransmit ratio stays under the configured budget.

Not every fault crosses every backend.  ``dup`` and ``reorder`` are
excluded everywhere *by design*: a duplicated submission frame is an
auditable replay (the protocol's own tamper signal, tested in the
adversary suite), and reorder breaks the FIFO count-reconcile contract
the acknowledged submitters depend on.  Transport faults do not cross
the process backend (its unix-socket hop has no injector seam) and the
fire-and-forget replicated path excludes silent frame loss (``drop`` /
``truncate``): an unacked dropped frame is invisible to the client, so
"no acked loss" would hold vacuously while evidence leaked.  Overload
cells pin ``churn=none``: their concurrent noise flood breaks the
single-writer count arithmetic that restart reconciliation leans on.

Sits in its own module (NOT re-exported from ``repro.resilience``) so
that ``repro.core`` can import the package without a cycle.
"""

from __future__ import annotations

import os
import random
import signal
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.adversary.forking import ForkingLogServer
from repro.audit import Topology
from repro.audit.auditor import Auditor
from repro.audit.verdicts import EntryClass
from repro.core.entries import Direction, LogEntry, Scheme
from repro.core.log_server import LogServer
from repro.core.protocol import message_digest
from repro.core.remote import LogServerEndpoint, RemoteLogger
from repro.crypto.keys import KeyPair, generate_keypair
from repro.errors import LoggingError, ServerBusy
from repro.gossip import GossipRelay, gossip_round
from repro.middleware.transport.faulty import FaultyTransport
from repro.middleware.transport.inproc import InprocTransport
from repro.middleware.transport.unix import UnixTransport, unix_sockets_supported
from repro.replication import ReplicatedLogger
from repro.core.policy import ReplicationConfig
from repro.resilience.admission import AdmissionConfig, AdmissionController
from repro.resilience.flow import FlowControlConfig
from repro.resilience.overload import OverloadInjector
from repro.sharding.factory import make_sharded_server
from repro.sharding.router import ShardRouter

BACKENDS = ("plain", "sharded", "process", "replicated")
FAULTS = (
    "none", "drop", "delay", "disconnect", "truncate", "overload",
    "equivocation",
)
CHURNS = ("none", "restart")
LOADS = ("light", "flood")

#: Which fault kinds are sound per backend (see the module docstring for
#: why the exclusions are exclusions).  ``equivocation`` -- a compromised
#: *logger* serving a forked view to a second client group -- runs on the
#: plain backend only: the fork adversary is a pair of in-process
#: ``LogServer`` views behind two endpoints, and one backend suffices to
#: exercise the gossip detection path the fault exists to test.
FAULTS_BY_BACKEND: Dict[str, Tuple[str, ...]] = {
    "plain": FAULTS,
    "sharded": ("none", "drop", "delay", "disconnect", "truncate", "overload"),
    "process": ("none", "overload"),
    "replicated": ("none", "delay", "disconnect", "overload"),
}

#: Transport fault probabilities per named fault kind.
FAULT_PROFILES: Dict[str, Dict[str, float]] = {
    "none": {},
    "overload": {},  # server-side injection, not a transport fault
    "equivocation": {},  # logger-side fork, not a transport fault
    "drop": {"drop": 0.05},
    "delay": {"delay": 0.25, "delay_by": 0.002},
    "disconnect": {"disconnect": 0.02},
    "truncate": {"truncate": 0.03},
}

#: Gossip rounds within which a split view must surface as evidence (the
#: ring topology over two client groups connects them in one round; two
#: is the asserted bound, leaving slack for a late second fetch).
EQUIVOCATION_ROUND_BOUND = 2

#: Honest transmissions per load level (each is one pub + one sub entry).
TRANSMISSIONS = {"light": 12, "flood": 48}
#: Fire-and-forget noise entries the overload cells flood with.
NOISE_ENTRIES = {"light": 64, "flood": 160}

#: Wall-clock bound per cell; a cell that cannot converge inside this is
#: reported as a failure, never a hang.
CELL_TIMEOUT = 45.0
#: Retransmitted-entries / acked-entries ceiling (the retry-budget bar).
RETRANSMIT_BUDGET = 1.5

_TOPICS = ["/m/a", "/m/b", "/m/c", "/m/d", "/m/e", "/m/f", "/m/g", "/m/h"]

_ADMISSION = AdmissionConfig(
    high_watermark=24, low_watermark=8, retry_after=0.01, max_retry_after=0.25
)
_INGEST_DELAY = 0.001

_NOISE_FLOW = FlowControlConfig(
    window_bytes=4096,
    credit_timeout=2.0,
    retry_budget=64.0,
    retry_token_ratio=0.5,
    retry_time_refill=50.0,
    shed_min_pause=0.01,
    shed_max_pause=0.1,
)


@dataclass(frozen=True)
class ScenarioCell:
    """One point of the matrix."""

    backend: str
    fault: str
    churn: str
    load: str

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.fault not in FAULTS_BY_BACKEND[self.backend]:
            raise ValueError(
                f"fault {self.fault!r} is not sound on the "
                f"{self.backend} backend"
            )
        if self.churn not in CHURNS:
            raise ValueError(f"unknown churn {self.churn!r}")
        if self.fault == "overload" and self.churn != "none":
            raise ValueError(
                "overload cells pin churn=none (the noise flood breaks "
                "restart count-reconciliation)"
            )
        if self.fault == "equivocation" and self.churn != "none":
            raise ValueError(
                "equivocation cells pin churn=none (the fault under test "
                "is the logger's, and churning the endpoints would only "
                "blur the bounded-round detection claim)"
            )
        if self.load not in LOADS:
            raise ValueError(f"unknown load {self.load!r}")

    @property
    def name(self) -> str:
        return f"{self.backend}/{self.fault}/{self.churn}/{self.load}"


@dataclass
class CellResult:
    """What one executed cell observed and whether it held the bar."""

    cell: ScenarioCell
    submitted: int = 0
    acked: int = 0
    delivered: int = 0
    duplicates: int = 0
    retransmits: int = 0
    busy_responses: int = 0
    shed_entries: int = 0
    credit_syncs: int = 0
    valid: int = 0
    invalid: int = 0
    hidden: int = 0
    equivocation_evidence: int = 0
    gossip_rounds: int = 0
    elapsed: float = 0.0
    failures: List[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.failures is None:
            self.failures = []

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def retransmit_ratio(self) -> float:
        return self.retransmits / float(max(1, self.submitted))

    @property
    def throughput(self) -> float:
        return self.acked / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed_entries / float(max(1, self.submitted))

    def row(self) -> Dict[str, object]:
        """One bench-results row."""
        return {
            "cell": self.cell.name,
            "ok": self.ok,
            "submitted": self.submitted,
            "acked": self.acked,
            "delivered": self.delivered,
            "duplicates": self.duplicates,
            "retransmits": self.retransmits,
            "retransmit_ratio": round(self.retransmit_ratio, 4),
            "busy_responses": self.busy_responses,
            "shed_entries": self.shed_entries,
            "shed_rate": round(self.shed_rate, 4),
            "credit_syncs": self.credit_syncs,
            "valid": self.valid,
            "invalid": self.invalid,
            "hidden": self.hidden,
            "equivocation_evidence": self.equivocation_evidence,
            "gossip_rounds": self.gossip_rounds,
            "elapsed_s": round(self.elapsed, 3),
            "throughput_eps": round(self.throughput, 1),
            "failures": list(self.failures),
        }


def enumerate_cells(full: bool = False) -> List[ScenarioCell]:
    """The matrix.  ``full`` is the overload-marked soak grid; the
    default is the 5-cell tier-1 smoke slice (at least one cell per
    backend, chosen to cover a transport fault, an equivocating logger,
    an overload, a churn and a replicated disconnect between them)."""
    if not full:
        return [
            ScenarioCell("plain", "drop", "none", "light"),
            ScenarioCell("plain", "equivocation", "none", "light"),
            ScenarioCell("sharded", "overload", "none", "flood"),
            ScenarioCell("process", "none", "restart", "light"),
            ScenarioCell("replicated", "disconnect", "none", "light"),
        ]
    cells: List[ScenarioCell] = []
    for backend in BACKENDS:
        for fault in FAULTS_BY_BACKEND[backend]:
            churns: Sequence[str] = (
                ("none",) if fault in ("overload", "equivocation") else CHURNS
            )
            for churn in churns:
                for load in LOADS:
                    cells.append(ScenarioCell(backend, fault, churn, load))
    return cells


# -- workload ---------------------------------------------------------------


def _cell_keys(seed: int) -> Tuple[KeyPair, KeyPair]:
    return (
        generate_keypair(512, seed=seed + 1),
        generate_keypair(512, seed=seed + 2),
    )


def _honest_pair(
    keys: Tuple[KeyPair, KeyPair], topic: str, seq: int, payload: bytes
) -> Tuple[bytes, bytes]:
    """Encoded publisher OUT + subscriber IN for one honest transmission
    (same shape the sharding battery's workload builder produces)."""
    digest = message_digest(seq, payload)
    s_x = keys[0].private.sign_digest(digest)
    s_y = keys[1].private.sign_digest(digest)
    pub = LogEntry(
        component_id="/pub", topic=topic, type_name="std/String",
        direction=Direction.OUT, seq=seq, scheme=Scheme.ADLP,
        data=payload, own_sig=s_x,
        peer_id="/sub", peer_hash=digest, peer_sig=s_y,
    )
    sub = LogEntry(
        component_id="/sub", topic=topic, type_name="std/String",
        direction=Direction.IN, seq=seq, scheme=Scheme.ADLP,
        data_hash=digest, own_sig=s_y, peer_id="/pub", peer_sig=s_x,
    )
    return pub.encode(), sub.encode()


def _build_records(
    rng: random.Random,
    keys: Tuple[KeyPair, KeyPair],
    topics: Sequence[str],
    transmissions: int,
    seq_base: int = 0,
) -> List[bytes]:
    """A shuffled honest workload; ``seq_base`` keeps two streams over
    the same topics (the sync workload and the noise flood) from ever
    colliding on ``(topic, seq)``."""
    seqs = {t: seq_base for t in topics}
    records: List[bytes] = []
    for _ in range(transmissions):
        topic = rng.choice(list(topics))
        seqs[topic] += 1
        payload = bytes(
            rng.getrandbits(8) for _ in range(rng.randrange(4, 24))
        )
        pub, sub = _honest_pair(keys, topic, seqs[topic], payload)
        records.append(pub)
        records.append(sub)
    rng.shuffle(records)
    return records


def _topology(topics: Sequence[str]) -> Topology:
    return Topology(
        publisher_of={t: "/pub" for t in topics},
        subscribers_of={t: ["/sub"] for t in topics},
    )


# -- invariant checking -----------------------------------------------------


def _check_delivery(
    result: CellResult,
    must_have: Sequence[bytes],
    may_have: Sequence[bytes],
    delivered: Sequence[bytes],
    allow_duplicates: bool,
) -> List[bytes]:
    """Assert every *acknowledged* record (``must_have``) is present and
    nothing outside the *submitted* set (``may_have``) appears; count
    duplicates; return the deduplicated stream for auditing.

    The two sets differ when a cell timed out mid-run: unacknowledged
    records may or may not have landed (either is fine), but an acked
    record missing -- or a record nobody submitted appearing -- is the
    invariant breach the matrix exists to catch."""
    counts: Dict[bytes, int] = {}
    for record in delivered:
        counts[record] = counts.get(record, 0) + 1
    missing = [r for r in must_have if r not in counts]
    if missing:
        result.failures.append(
            f"{len(missing)} acknowledged entries missing from the final "
            f"log (acked-evidence loss)"
        )
    submitted_set = set(may_have)
    unexpected = sum(n for r, n in counts.items() if r not in submitted_set)
    if unexpected:
        result.failures.append(
            f"{unexpected} records present that were never submitted"
        )
    result.delivered = len(counts)
    result.duplicates = sum(n - 1 for n in counts.values())
    if result.duplicates and not allow_duplicates:
        result.failures.append(
            f"{result.duplicates} duplicate ingestions on an exactly-once "
            f"submission path"
        )
    return list(counts)


def _audit(
    result: CellResult,
    keys: Tuple[KeyPair, KeyPair],
    topics: Sequence[str],
    records: Sequence[bytes],
) -> None:
    """Zero false verdicts: the workload is honest, so any INVALID or
    hidden finding is the infrastructure manufacturing evidence."""
    rebuild = LogServer()
    rebuild.register_key("/pub", keys[0].public)
    rebuild.register_key("/sub", keys[1].public)
    try:
        entries = [LogEntry.decode(bytes(r)) for r in records]
    except Exception as exc:
        result.failures.append(f"undecodable record in final log: {exc}")
        return
    report = Auditor(rebuild.keystore, _topology(topics)).audit(entries)
    result.valid = sum(
        1 for c in report.classified if c.verdict is EntryClass.VALID
    )
    result.invalid = sum(
        1 for c in report.classified if c.verdict is EntryClass.INVALID
    )
    result.hidden = len(report.hidden)
    if result.invalid:
        result.failures.append(
            f"{result.invalid} honest entries classified INVALID "
            f"(false verdicts)"
        )
    if result.hidden:
        result.failures.append(
            f"{result.hidden} transmissions reported hidden in an "
            f"all-delivered run"
        )


def _check_budget(result: CellResult) -> None:
    if result.retransmit_ratio > RETRANSMIT_BUDGET:
        result.failures.append(
            f"retransmit ratio {result.retransmit_ratio:.2f} exceeds the "
            f"{RETRANSMIT_BUDGET} budget"
        )


# -- acknowledged submission driver ----------------------------------------


class _SyncDriver:
    """Chunked acknowledged submission with BUSY pacing and (when the
    cell's arithmetic allows it) count-based loss reconciliation.

    ``count_exact`` is the single-writer case: the server's entry count
    identifies this driver's landed prefix exactly, so a lost response
    is reconciled instead of retransmitted blindly.  Overload cells run
    with a concurrent noise flood and set ``count_exact=False``; they
    rely on BUSY being refuse-before-ingest (retrying a refused chunk
    cannot double-ingest) and on their fault-free transport.
    """

    def __init__(
        self,
        client_ref: Dict[str, RemoteLogger],
        result: CellResult,
        count_exact: bool,
        deadline: float,
        chunk: int = 8,
    ):
        self._ref = client_ref
        self._result = result
        self._count_exact = count_exact
        self._deadline = deadline
        self._chunk = chunk
        self.base = 0

    def _client(self) -> RemoteLogger:
        return self._ref["client"]

    def reconciled_count(self) -> Optional[int]:
        """Poll health until the server answers; entries above ``base``
        are this driver's landed prefix (single-writer FIFO)."""
        while time.monotonic() < self._deadline:
            try:
                return self._client().health(timeout=1.0).entries - self.base
            except LoggingError:
                time.sleep(0.05)
        return None

    def anchor(self) -> bool:
        """Record the pre-run server count the reconcile leans on."""
        self.base = 0
        count = self.reconciled_count()
        if count is None:
            self._result.failures.append(
                "server never answered the anchoring health probe"
            )
            return False
        self.base = count
        return True

    def run(
        self,
        records: Sequence[bytes],
        churn: Optional[Callable[[], None]] = None,
    ) -> int:
        """Submit every record with acknowledgement; returns the count
        confirmed landed.  ``churn`` fires once at the halfway mark."""
        result = self._result
        confirmed = 0
        churned = churn is None
        while confirmed < len(records):
            if time.monotonic() > self._deadline:
                result.failures.append(
                    f"cell timed out with {len(records) - confirmed} "
                    f"entries unconfirmed"
                )
                break
            if not churned and confirmed >= len(records) // 2:
                churned = True
                churn()  # type: ignore[misc]
            chunk = list(records[confirmed:confirmed + self._chunk])
            try:
                count = self._client().submit_batch_sync(chunk, timeout=1.0)
            except ServerBusy as exc:
                result.busy_responses += 1
                # BUSY refuses before ingesting: honoring the hint and
                # resending the same chunk cannot double-ingest.  Paced
                # by the *server's* hint, these resends are cooperative
                # flow control, not blind retransmission, so they do not
                # count against the retransmit budget.
                time.sleep(min(max(exc.retry_after, 0.005), 0.25))
                continue
            except LoggingError as exc:
                if not self._count_exact:
                    result.failures.append(
                        f"unexpected submission failure on a fault-free "
                        f"transport: {exc}"
                    )
                    break
                # Frames may or may not have landed; the count settles it.
                time.sleep(0.05)  # let in-flight frames finish ingesting
                landed = self.reconciled_count()
                if landed is None:
                    result.failures.append(
                        "server unreachable during reconciliation"
                    )
                    break
                if landed < confirmed:
                    result.failures.append(
                        f"server count regressed below the confirmed "
                        f"prefix ({landed} < {confirmed}): acked loss"
                    )
                    break
                result.retransmits += max(0, confirmed + len(chunk) - landed)
                confirmed = landed
                continue
            confirmed = (
                count - self.base if self._count_exact
                else confirmed + len(chunk)
            )
        return confirmed


# -- noise flood (the overload cells' concurrency) -------------------------


class _NoiseFlood:
    """Fire-and-forget batch flood from N independent connections.

    Batch frames are force-admitted in bulk, so each one holds the
    admission latch for its (slowed) ingest -- that is what makes the
    sync driver and the *other* noise clients' credit syncs observe
    BUSY.  Flow control is on: crossing the credit window forces sync
    round trips, BUSY answers push the client into shed mode, and the
    drain phase proves shedding delayed -- never lost -- the entries.
    """

    def __init__(
        self,
        make_client: Callable[[int], RemoteLogger],
        records: Sequence[bytes],
        clients: int = 2,
        batch: int = 32,
    ):
        self.clients = [make_client(i) for i in range(clients)]
        self._shares: List[List[bytes]] = [[] for _ in self.clients]
        for i, record in enumerate(records):
            self._shares[i % len(self.clients)].append(record)
        self._batch = batch
        self._threads: List[threading.Thread] = []

    def start(self) -> None:
        for client, share in zip(self.clients, self._shares):
            thread = threading.Thread(
                target=self._flood, args=(client, share), daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def _flood(self, client: RemoteLogger, share: List[bytes]) -> None:
        for i in range(0, len(share), self._batch):
            try:
                client.submit_batch(share[i:i + self._batch])
            except Exception:
                return  # surfaced by the drain check's spill accounting

    def drain(self, deadline: float) -> Optional[str]:
        """Join the flood, then drain every spill queue and prove (via a
        FIFO health round trip per connection) that all frames landed."""
        for thread in self._threads:
            thread.join(timeout=max(0.0, deadline - time.monotonic()))
        for client in self.clients:
            while client.spilled > 0 or client.shedding:
                if time.monotonic() > deadline:
                    return (
                        f"noise flood failed to drain: {client.spilled} "
                        f"entries still spilled"
                    )
                client.flush_spill()
                time.sleep(0.01)
            while True:
                if time.monotonic() > deadline:
                    return "noise flood could not confirm delivery"
                try:
                    # FIFO: any answer proves every prior frame on this
                    # connection was ingested.
                    client.health(timeout=2.0)
                    break
                except LoggingError:
                    time.sleep(0.02)
            if client.spilled > 0:
                return "noise spill refilled after the drain proof"
        return None

    def stats(self) -> Tuple[int, int, int, int]:
        busy = sum(c.busy_responses for c in self.clients)
        shed = sum(c.shed_entries for c in self.clients)
        syncs = sum(c.stats().get("credit_syncs", 0) for c in self.clients)
        retries = sum(c.retries for c in self.clients)
        return busy, shed, syncs, retries

    def close(self) -> None:
        for client in self.clients:
            client.close()


# -- per-backend cell runners ----------------------------------------------


def _run_equivocation_cell(
    cell: ScenarioCell, seed: int, result: CellResult
) -> None:
    """The compromised-logger cell: one signing identity forks its log
    and serves each view to a different client group.  Each group's
    experience is internally consistent (its own STH verifies, inclusion
    proofs check out), so detection must come from gossip -- and must
    arrive within :data:`EQUIVOCATION_ROUND_BOUND` ring rounds, yielding
    evidence that verifies under the logger's own key."""
    rng = random.Random(seed)
    keys = _cell_keys(seed)
    logger_keys = generate_keypair(512, seed=seed + 3)
    records = _build_records(rng, keys, _TOPICS[:4], TRANSMISSIONS[cell.load])
    result.submitted = len(records)

    fork = ForkingLogServer(logger_keys.private, fork_at=len(records) // 2)
    fork.register_key("/pub", keys[0].public)
    fork.register_key("/sub", keys[1].public)
    transports = [InprocTransport(), InprocTransport()]
    endpoints = [
        LogServerEndpoint(fork.face("honest"), transport=transports[0]),
        LogServerEndpoint(fork.face("forked"), transport=transports[1]),
    ]
    clients = [
        RemoteLogger(e.address, transport=t)
        for e, t in zip(endpoints, transports)
    ]
    relays = [GossipRelay(f"group-{i}") for i in range(len(clients))]
    for relay in relays:
        relay.register_key(fork.log_id, logger_keys.public)

    deadline = time.monotonic() + CELL_TIMEOUT
    started = time.monotonic()
    try:
        driver = _SyncDriver(
            {"client": clients[0]}, result, count_exact=True,
            deadline=deadline,
        )
        if not driver.anchor():
            return
        acked = driver.run(records)
        result.acked = acked
        result.elapsed = time.monotonic() - started

        # Per-group verification passes: the split view is invisible to a
        # client that only ever talks to one face.
        for group, (client, relay) in enumerate(zip(clients, relays)):
            sth = client.fetch_sth(timeout=2.0)
            if not sth.verify(logger_keys.public):
                result.failures.append(
                    f"group {group}'s STH failed signature verification"
                )
                continue
            proof = client.prove_inclusion(0, tree_size=sth.entries)
            record = client.fetch_records(0, 1)[0]
            if not proof.verify(record, sth.merkle_root):
                result.failures.append(
                    f"group {group}'s inclusion proof failed against its "
                    f"own signed head"
                )
            if relay.observe(sth, source=f"replica-{group}"):
                result.failures.append(
                    "evidence before any gossip: a single group should "
                    "never see the fork"
                )

        # Detection: ring gossip between the two groups' relays.
        rounds = 0
        while (
            rounds < EQUIVOCATION_ROUND_BOUND
            and not any(relay.evidence() for relay in relays)
        ):
            gossip_round(relays)
            rounds += 1
        result.gossip_rounds = rounds
        evidence = [ev for relay in relays for ev in relay.evidence()]
        result.equivocation_evidence = len(evidence)
        if not evidence:
            result.failures.append(
                f"split view undetected after {rounds} gossip rounds"
            )
        for ev in evidence:
            if not ev.verify(logger_keys.public):
                result.failures.append(
                    "equivocation evidence does not verify under the "
                    "logger's key (unconvincing conviction)"
                )
            if ev.first.log_id != fork.log_id:
                result.failures.append(
                    f"evidence convicts {ev.first.log_id!r}, not the "
                    f"forking logger {fork.log_id!r}"
                )

        # The standard invariant bar still applies to the honest view.
        must_have = list(records[:acked])
        delivered = [bytes(r) for r in fork.honest.raw_records()]
        deduped = _check_delivery(
            result, must_have, records, delivered, allow_duplicates=False
        )
        try:
            fork.honest.verify_integrity()
        except Exception as exc:
            result.failures.append(f"store failed verification: {exc}")
        _audit(result, keys, _TOPICS, deduped)
        _check_budget(result)
    finally:
        for client in clients:
            client.close()
        for endpoint in endpoints:
            endpoint.close()
        fork.close()


def _run_endpoint_cell(
    cell: ScenarioCell, seed: int, result: CellResult
) -> None:
    """The plain and (threaded) sharded backends: one endpoint, one
    acknowledged client, transport faults or an overload flood."""
    if cell.fault == "equivocation":
        _run_equivocation_cell(cell, seed, result)
        return
    rng = random.Random(seed)
    keys = _cell_keys(seed)
    overload = cell.fault == "overload"
    sync_topics = _TOPICS[:4]
    records = _build_records(rng, keys, sync_topics, TRANSMISSIONS[cell.load])
    result.submitted = len(records)

    if cell.backend == "sharded":
        server = make_sharded_server("thread", shards=4)
    else:
        server = LogServer()
    server.register_key("/pub", keys[0].public)
    server.register_key("/sub", keys[1].public)
    honest_gossip: Optional[GossipRelay] = None
    if cell.backend == "plain":
        # False-positive bar: an *honest* logger under this cell's fault
        # and load, observed through the full gossip machinery (signed
        # heads, consistency challenges), must yield zero evidence.
        logger_keys = generate_keypair(512, seed=seed + 3)
        server.attach_signer(logger_keys.private)
        honest_gossip = GossipRelay(
            "honest-watch",
            consistency_prover=lambda old, new: server.prove_consistency(
                old.entries, new.entries
            ),
        )
        honest_gossip.register_key(server.log_id, logger_keys.public)
        honest_gossip.observe(server.signed_tree_head(), source="anchor")
    ingest = (
        OverloadInjector(server, delay=_INGEST_DELAY) if overload else server
    )
    admission = AdmissionController(_ADMISSION)
    profile = FAULT_PROFILES[cell.fault]
    transport = (
        FaultyTransport(InprocTransport(), seed=seed, **profile)
        if profile
        else InprocTransport()
    )

    state: Dict[str, object] = {}
    state["endpoint"] = LogServerEndpoint(
        ingest, transport=transport, admission=admission
    )

    def new_client() -> RemoteLogger:
        return RemoteLogger(
            state["endpoint"].address,  # type: ignore[attr-defined]
            transport=transport,
            reconnect_backoff=0.01,
            max_reconnect_backoff=0.2,
            rng=random.Random(seed + 77),
        )

    client_ref: Dict[str, RemoteLogger] = {"client": new_client()}

    def churn() -> None:
        client_ref["client"].close()
        state["endpoint"].close()  # type: ignore[attr-defined]
        state["endpoint"] = LogServerEndpoint(
            ingest, transport=transport, admission=admission
        )
        client_ref["client"] = new_client()

    noise: Optional[_NoiseFlood] = None
    noise_records: List[bytes] = []
    deadline = time.monotonic() + CELL_TIMEOUT
    started = time.monotonic()
    try:
        driver = _SyncDriver(
            client_ref, result, count_exact=not overload, deadline=deadline
        )
        if not driver.anchor():
            return
        if overload:
            noise_records = _build_records(
                rng, keys, _TOPICS[4:], NOISE_ENTRIES[cell.load] // 2
            )
            result.submitted += len(noise_records)
            noise = _NoiseFlood(
                lambda i: RemoteLogger(
                    state["endpoint"].address,  # type: ignore[attr-defined]
                    transport=transport,
                    spill_capacity=100_000,
                    flow_control=_NOISE_FLOW,
                    rng=random.Random(seed + 100 + i),
                ),
                noise_records,
            )
            noise.start()
        acked_sync = driver.run(
            records, churn=churn if cell.churn == "restart" else None
        )
        result.acked = acked_sync
        noise_acked: List[bytes] = []
        if noise is not None:
            trouble = noise.drain(deadline)
            if trouble is None:
                result.acked += len(noise_records)
                noise_acked = noise_records
            else:
                result.failures.append(trouble)
            busy, shed, syncs, retries = noise.stats()
            result.busy_responses += busy
            result.shed_entries += shed
            result.credit_syncs += syncs
            result.retransmits += retries
        result.elapsed = time.monotonic() - started
        if overload and cell.load == "flood" and result.busy_responses == 0:
            result.failures.append(
                "overload flood never tripped admission control"
            )

        must_have = list(records[:acked_sync]) + noise_acked
        may_have = list(records) + noise_records
        if cell.backend == "sharded":
            delivered = [
                bytes(r)
                for s in range(server.shard_count)
                for r in server.shard_raw_records(s)
            ]
        else:
            delivered = [bytes(r) for r in server.raw_records()]
        deduped = _check_delivery(
            result, must_have, may_have, delivered, allow_duplicates=False
        )
        try:
            server.verify_integrity()
        except Exception as exc:
            result.failures.append(f"store failed verification: {exc}")
        if honest_gossip is not None:
            honest_gossip.observe(server.signed_tree_head(), source="final")
            result.equivocation_evidence = len(honest_gossip.evidence())
            if result.equivocation_evidence:
                result.failures.append(
                    "honest cell produced equivocation evidence "
                    "(false positive): "
                    + "; ".join(
                        ev.describe() for ev in honest_gossip.evidence()
                    )
                )
        _audit(result, keys, _TOPICS, deduped)
        _check_budget(result)
    finally:
        if noise is not None:
            noise.close()
        client_ref["client"].close()
        state["endpoint"].close()  # type: ignore[attr-defined]
        server.close()


def _run_process_cell(
    cell: ScenarioCell, seed: int, result: CellResult
) -> None:
    """The process-sharded backend: SIGKILL churn rides the parent's
    crash-reconcile; overload drives one worker's admission controller
    directly over its unix socket."""
    if not unix_sockets_supported():
        result.failures.append("platform lacks AF_UNIX sockets")
        return
    rng = random.Random(seed)
    keys = _cell_keys(seed)
    overload = cell.fault == "overload"
    shards = 2
    if overload:
        # Everything targets shard 0's worker: the matrix talks straight
        # to its socket, so entries must actually route there.  Candidate
        # names are minted until four route to shard 0 (sha256 routing
        # puts ~half of all names there, so this terminates immediately).
        router = ShardRouter(shards)
        topics, i = [], 0
        while len(topics) < 4:
            candidate = f"/m/x{i}"
            i += 1
            if router.shard_of(candidate) == 0:
                topics.append(candidate)
    else:
        topics = _TOPICS
    records = _build_records(
        rng, keys, topics[: max(2, len(topics) // 2)], TRANSMISSIONS[cell.load]
    )
    result.submitted = len(records)

    server = make_sharded_server(
        "process",
        shards=shards,
        probe_interval=0.1,
        admission=_ADMISSION if overload else None,
        ingest_delay=_INGEST_DELAY if overload else 0.0,
        restart_backoff_base=0.05,
        restart_backoff_max=0.5,
    )
    noise: Optional[_NoiseFlood] = None
    deadline = time.monotonic() + CELL_TIMEOUT
    started = time.monotonic()
    try:
        server.register_key("/pub", keys[0].public)
        server.register_key("/sub", keys[1].public)
        noise_records: List[bytes] = []
        if overload:
            socket_path = server.worker_socket_path(0)
            # Same shard-0 topics, disjoint sequence range: no collision
            # with the sync workload's ``(topic, seq)`` space.
            noise_records = _build_records(
                rng, keys, topics, NOISE_ENTRIES[cell.load] // 2,
                seq_base=10_000,
            )
            result.submitted += len(noise_records)
            client_ref: Dict[str, RemoteLogger] = {
                "client": RemoteLogger(
                    ("unix", socket_path),
                    transport=UnixTransport(),
                    shard=0,
                    rng=random.Random(seed + 7),
                )
            }
            noise = _NoiseFlood(
                lambda i: RemoteLogger(
                    ("unix", socket_path),
                    transport=UnixTransport(),
                    shard=0,
                    spill_capacity=100_000,
                    flow_control=_NOISE_FLOW,
                    rng=random.Random(seed + 100 + i),
                ),
                noise_records,
            )
            noise.start()
            driver = _SyncDriver(
                client_ref, result, count_exact=False, deadline=deadline
            )
            acked_sync = driver.run(records)
            result.acked = acked_sync
            must_have = list(records[:acked_sync])
            trouble = noise.drain(deadline)
            if trouble is None:
                result.acked += len(noise_records)
                must_have += noise_records
            else:
                result.failures.append(trouble)
            busy, shed, syncs, retries = noise.stats()
            result.busy_responses += busy
            result.shed_entries += shed
            result.credit_syncs += syncs
            result.retransmits += retries
            client_ref["client"].close()
            if cell.load == "flood" and result.busy_responses == 0:
                result.failures.append(
                    "overload flood never tripped the worker's admission "
                    "control"
                )
        else:
            confirmed = 0
            churned = cell.churn != "restart"
            chunk = 8
            while confirmed < len(records):
                if time.monotonic() > deadline:
                    result.failures.append(
                        f"cell timed out with {len(records) - confirmed} "
                        f"entries unsubmitted"
                    )
                    break
                if not churned and confirmed >= len(records) // 2:
                    churned = True
                    pid = server.worker_pid(0)
                    if pid is not None:
                        os.kill(pid, signal.SIGKILL)
                try:
                    server.submit_batch(records[confirmed:confirmed + chunk])
                except LoggingError as exc:
                    result.failures.append(
                        f"acknowledged submission failed: {exc}"
                    )
                    break
                confirmed += min(chunk, len(records) - confirmed)
            result.acked = confirmed
            result.retransmits += server.stats().get("resubmitted", 0)
            must_have = list(records[:confirmed])
        result.elapsed = time.monotonic() - started

        delivered = [
            bytes(r)
            for s in range(server.shard_count)
            for r in server.shard_raw_records(s)
        ]
        deduped = _check_delivery(
            result,
            must_have,
            list(records) + noise_records,
            delivered,
            allow_duplicates=False,
        )
        try:
            server.verify_integrity()
        except Exception as exc:
            result.failures.append(f"store failed verification: {exc}")
        _audit(result, keys, topics, deduped)
        _check_budget(result)
    finally:
        if noise is not None:
            noise.close()
        server.close()


def _run_replicated_cell(
    cell: ScenarioCell, seed: int, result: CellResult
) -> None:
    """The replicated backend: fire-and-forget fan-out with spill,
    flush, and catch-up.  At-least-once is the contract here, so
    duplicates are tolerated (and counted); loss is not."""
    rng = random.Random(seed)
    keys = _cell_keys(seed)
    overload = cell.fault == "overload"
    records = _build_records(
        rng, keys, _TOPICS[:4], TRANSMISSIONS[cell.load]
    )
    result.submitted = len(records)

    servers = [LogServer(), LogServer()]
    for server in servers:
        server.register_key("/pub", keys[0].public)
        server.register_key("/sub", keys[1].public)
    ingests = [
        OverloadInjector(s, delay=_INGEST_DELAY) if overload else s
        for s in servers
    ]
    profile = FAULT_PROFILES[cell.fault]
    transport = (
        FaultyTransport(InprocTransport(), seed=seed, **profile)
        if profile
        else InprocTransport()
    )
    endpoints = [
        LogServerEndpoint(
            ingest,
            transport=transport,
            admission=AdmissionController(_ADMISSION) if overload else None,
        )
        for ingest in ingests
    ]
    shared = ReplicatedLogger(
        [e.address for e in endpoints],
        config=ReplicationConfig(
            breaker_failure_threshold=3,
            breaker_reset_timeout=0.05,
            breaker_max_reset_timeout=0.25,
            flow_control=_NOISE_FLOW if overload else None,
        ),
        transport=transport,
        rng=random.Random(seed + 9),
    )
    deadline = time.monotonic() + CELL_TIMEOUT
    started = time.monotonic()
    try:
        churned = cell.churn != "restart"
        for i, record in enumerate(records):
            if not churned and i >= len(records) // 2:
                churned = True
                # Graceful restart: drain replica spills and run a sync
                # barrier before bouncing the endpoint.  An abrupt close
                # would discard fire-and-forget frames still buffered in
                # the endpoint's transport queue -- silent frame loss,
                # which this backend's cells exclude by design (restart
                # churn here means failover and rejoin; the drop/truncate
                # exclusions in the module docstring explain why silent
                # loss is untestable against an unacked fan-out).
                barrier = min(deadline, time.monotonic() + 15.0)
                while time.monotonic() < barrier:
                    if shared.flush_spill() and shared.quiesce(
                        replica=1, timeout=1.0
                    ):
                        break
                    time.sleep(0.01)
                endpoints[1].close()
                endpoints[1] = LogServerEndpoint(
                    ingests[1], transport=transport
                )
                shared.reset_replica(1, endpoints[1].address)
            shared.submit(record)
        result.acked = len(records)

        # Convergence: flush spill until both replicas hold everything.
        expected_len = len(records)
        while time.monotonic() < deadline:
            shared.flush_spill()
            if all(len(s) >= expected_len for s in servers):
                break
            if min(len(s) for s in servers) < expected_len:
                try:
                    shared.catch_up()
                except LoggingError:
                    pass
            time.sleep(0.02)
        lagging = [i for i, s in enumerate(servers) if len(s) < expected_len]
        if lagging:
            result.failures.append(
                f"replicas {lagging} never converged "
                f"({[len(s) for s in servers]} of {expected_len})"
            )
        result.elapsed = time.monotonic() - started

        stats = shared.stats()
        result.shed_entries = stats.get("replica_shed", 0)
        result.busy_responses = stats.get("replica_busy", 0)
        result.retransmits = stats.get("spill_retries", 0)

        for index, server in enumerate(servers):
            delivered = [bytes(r) for r in server.raw_records()]
            deduped = _check_delivery(
                result, records, records, delivered, allow_duplicates=True
            )
            try:
                server.verify_integrity()
            except Exception as exc:
                result.failures.append(
                    f"replica {index} failed verification: {exc}"
                )
            if index == 0:
                _audit(result, keys, _TOPICS, deduped)
        _check_budget(result)
    finally:
        shared.close()
        for endpoint in endpoints:
            endpoint.close()


_RUNNERS = {
    "plain": _run_endpoint_cell,
    "sharded": _run_endpoint_cell,
    "process": _run_process_cell,
    "replicated": _run_replicated_cell,
}


def run_cell(cell: ScenarioCell, seed: int = 1337) -> CellResult:
    """Execute one cell; failures are collected, never raised."""
    result = CellResult(cell=cell)
    try:
        _RUNNERS[cell.backend](cell, seed, result)
    except Exception as exc:  # infrastructure trouble is a failed cell
        result.failures.append(f"cell crashed: {type(exc).__name__}: {exc}")
    return result


def run_matrix(
    cells: Optional[Sequence[ScenarioCell]] = None,
    seed: int = 1337,
    full: bool = False,
    record: bool = False,
) -> List[CellResult]:
    """Run a slice of the matrix (default: the tier-1 smoke slice).

    With ``record=True`` every cell's throughput/shed-rate row is
    appended to ``bench_results.json`` under ``resilience_matrix``.
    """
    chosen = list(cells) if cells is not None else enumerate_cells(full=full)
    results = [
        run_cell(cell, seed=seed + 101 * i) for i, cell in enumerate(chosen)
    ]
    if record:
        from repro.bench.reporting import save_results

        save_results(
            "resilience_matrix",
            {
                "seed": seed,
                "cells": [r.row() for r in results],
                "ok": all(r.ok for r in results),
            },
        )
    return results
