"""Client-side flow control: credit windows, retry budgets, jitter.

Three small mechanisms that together keep a fleet of
:class:`~repro.core.remote.RemoteLogger` clients from amplifying a
server's overload into a retry storm:

**Credit window** -- fire-and-forget submission has no per-request ack,
so a client can stuff an unbounded number of bytes into a socket whose
far end has stopped draining.  The window caps *outstanding* (sent but
unconfirmed) bytes; crossing it triggers a *credit sync* -- an empty
synchronous batch round trip.  TCP delivers frames in order, so the
server's reply to the empty batch proves every earlier fire-and-forget
frame on that connection was ingested, and the window resets to zero.

**Retry budget** -- a token bucket in the style of gRPC's retry budgets
(see also "Accountability of Things": device fleets must bound their
retransmit amplification).  Every *successful* submission deposits
``token_ratio`` tokens; every retry attempt withdraws one.  An empty
bucket means retries wait -- so retransmits can never exceed roughly
``token_ratio`` of goodput in steady state.  A slow time-based refill
(``time_refill`` tokens/second) keeps the budget from deadlocking drain
after a total outage, when there are no fresh successes to mint tokens.

**Full jitter** -- backoff helper per the classic AWS analysis: sleeping
``uniform(0, cap)`` instead of exactly ``cap`` decorrelates a herd of
clients that all observed the same server restart at the same moment.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class FlowControlConfig:
    """Tuning knobs for the client-side overload machinery.

    ``window_bytes`` caps outstanding fire-and-forget bytes before a
    credit sync is forced; ``credit_timeout`` bounds that sync round
    trip.  ``retry_budget`` is the token bucket capacity (and initial
    fill), ``retry_token_ratio`` the tokens minted per successfully
    acked entry, ``retry_time_refill`` the trickle refill in tokens per
    second.  ``shed_min_pause``/``shed_max_pause`` bound the paced,
    jittered drain while the client is shedding to disk.
    """

    window_bytes: int = 1024 * 1024
    credit_timeout: float = 5.0
    retry_budget: float = 32.0
    retry_token_ratio: float = 0.1
    retry_time_refill: float = 1.0
    shed_min_pause: float = 0.05
    shed_max_pause: float = 2.0

    def __post_init__(self) -> None:
        if self.window_bytes < 1:
            raise ValueError("window_bytes must be >= 1")
        if self.credit_timeout <= 0:
            raise ValueError("credit_timeout must be positive")
        if self.retry_budget < 1:
            raise ValueError("retry_budget must be >= 1")
        if self.retry_token_ratio < 0 or self.retry_time_refill < 0:
            raise ValueError("retry refill rates must be >= 0")
        if not 0 < self.shed_min_pause <= self.shed_max_pause:
            raise ValueError(
                "need 0 < shed_min_pause <= shed_max_pause"
            )


class RetryBudget:
    """Token bucket bounding retransmit amplification.

    Starts full (a cold client may retry immediately); successes deposit
    ``token_ratio`` each; :meth:`take` withdraws one per retry attempt.
    The ``time_refill`` trickle (tokens/second, capped at capacity)
    guarantees liveness when a long outage starved the bucket of
    success-minted tokens.
    """

    def __init__(
        self,
        capacity: float = 32.0,
        token_ratio: float = 0.1,
        time_refill: float = 1.0,
        clock=time.monotonic,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = float(capacity)
        self._ratio = float(token_ratio)
        self._refill = float(time_refill)
        self._clock = clock
        self._lock = threading.Lock()
        self._tokens = self._capacity
        self._last = clock()
        self.exhausted = 0

    def _advance(self) -> None:
        now = self._clock()
        elapsed = now - self._last
        self._last = now
        if elapsed > 0 and self._refill > 0:
            self._tokens = min(
                self._capacity, self._tokens + elapsed * self._refill
            )

    @property
    def tokens(self) -> float:
        with self._lock:
            self._advance()
            return self._tokens

    def deposit(self, successes: int = 1) -> None:
        """Mint tokens for ``successes`` acked entries."""
        with self._lock:
            self._advance()
            self._tokens = min(
                self._capacity, self._tokens + successes * self._ratio
            )

    def take(self) -> bool:
        """Withdraw one token for a retry attempt; ``False`` = over
        budget, caller must wait instead of retransmitting."""
        with self._lock:
            self._advance()
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            self.exhausted += 1
            return False

    def seconds_until_token(self) -> float:
        """How long the trickle refill needs to mint one token (0 if one
        is already available; inf if the trickle is disabled)."""
        with self._lock:
            self._advance()
            if self._tokens >= 1.0:
                return 0.0
            if self._refill <= 0:
                return float("inf")
            return (1.0 - self._tokens) / self._refill

    def stats(self) -> Dict[str, float]:
        return {
            "retry_tokens": round(self.tokens, 3),
            "retry_budget_exhausted": self.exhausted,
        }


def full_jitter(cap: float, rng: Optional[random.Random] = None) -> float:
    """AWS-style full jitter: ``uniform(0, cap)``.

    Decorrelates clients that all hit the same failure at the same time;
    pass a seeded ``rng`` in tests for determinism.
    """
    if cap <= 0:
        return 0.0
    r = rng.random() if rng is not None else random.random()
    return cap * r


class CreditWindow:
    """Outstanding-bytes gauge for one fire-and-forget connection.

    Not thread-safe on its own -- the owning :class:`RemoteLogger`
    serializes RPCs under its lock already, so this stays a plain
    counter.  ``charge`` returns ``True`` when the window is exceeded
    and a credit sync should be issued; ``settle`` resets after the sync
    round trip proved the server drained everything prior.
    """

    def __init__(self, window_bytes: int):
        if window_bytes < 1:
            raise ValueError("window_bytes must be >= 1")
        self.window_bytes = window_bytes
        self.outstanding = 0
        self.credit_syncs = 0

    def charge(self, nbytes: int) -> bool:
        self.outstanding += max(0, nbytes)
        return self.outstanding >= self.window_bytes

    def settle(self) -> None:
        self.outstanding = 0
        self.credit_syncs += 1

    def reset(self) -> None:
        """Connection dropped: outstanding bytes are moot (the client
        re-reconciles through its spill/replay machinery)."""
        self.outstanding = 0
