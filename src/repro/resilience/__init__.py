"""End-to-end overload protection for the logging stack.

This package holds the pieces that keep the accountability guarantee
intact at saturation:

- :mod:`repro.resilience.admission` -- server-side bounded ingest with
  high/low watermark hysteresis and BUSY verdicts;
- :mod:`repro.resilience.flow` -- client-side credit windows, gRPC-style
  retry budgets, and full-jitter backoff;
- :mod:`repro.resilience.overload` -- deterministic overload injection
  for tests and benchmarks;
- :mod:`repro.resilience.matrix` -- the churn x fault x overload x
  backend scenario matrix (imported explicitly as
  ``repro.resilience.matrix``; it pulls in the whole core stack, so the
  package ``__init__`` deliberately leaves it out to keep
  ``core.remote`` <-> ``resilience`` import edges acyclic).

Design rule for this package: everything importable from here is
stdlib-only plus :mod:`repro.errors`, so ``repro.core`` modules may
import it freely without cycles.
"""

from repro.resilience.admission import (
    AdmissionConfig,
    AdmissionController,
    BusyDecision,
)
from repro.resilience.flow import (
    CreditWindow,
    FlowControlConfig,
    RetryBudget,
    full_jitter,
)
from repro.resilience.overload import OverloadInjector

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "BusyDecision",
    "CreditWindow",
    "FlowControlConfig",
    "RetryBudget",
    "full_jitter",
    "OverloadInjector",
]
