"""Server-side admission control for the trusted logger's ingest path.

A flooded :class:`~repro.core.remote.LogServerEndpoint` previously had no
relief valve of its own: TCP backpressure stalls every connection equally,
clients retry blindly, and the spill queues back up under exactly the
conditions where evidence matters most.  :class:`AdmissionController` puts
a bounded gauge in front of the expensive work (signature checks, chain
extension, WAL fsync) with classic high/low watermark hysteresis:

- while the in-flight depth is below ``high_watermark`` everything is
  admitted;
- once depth reaches the high watermark the controller trips *busy* and
  refuses further **synchronous** work with a ``BUSY`` verdict carrying
  the current depth and a retry-after hint, until depth drains back to
  ``low_watermark`` (hysteresis prevents admit/refuse flapping right at
  the boundary);
- **fire-and-forget** submissions are *never* refused -- there is no
  response channel to say BUSY on, so refusal would be silent evidence
  loss, the one thing this protocol exists to prevent.  They are
  force-admitted and only counted, which keeps the depth gauge honest so
  sync traffic (which *can* be told to back off) sheds first.

The controller is deliberately stdlib-only and knows nothing about wire
formats; the endpoint translates ``BusyDecision`` into an ``OP_BUSY``
response and the client translates that into
:class:`~repro.errors.ServerBusy`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass(frozen=True)
class AdmissionConfig:
    """Tuning knobs for :class:`AdmissionController`.

    ``high_watermark`` bounds the number of log entries allowed in flight
    (admitted but not yet released) before sync traffic is refused;
    ``low_watermark`` is where the busy latch resets (default: half the
    high watermark).  ``retry_after`` is the base backoff hint returned
    with a BUSY verdict; the hint scales linearly with overshoot past the
    high watermark and is clamped to ``max_retry_after`` so a deeply
    flooded server cannot park clients forever.  ``sync_wait`` lets a
    sync admit block briefly for capacity before refusing -- 0 means
    refuse immediately (pure fail-fast).
    """

    high_watermark: int = 4096
    low_watermark: Optional[int] = None
    retry_after: float = 0.05
    max_retry_after: float = 2.0
    sync_wait: float = 0.0

    def __post_init__(self) -> None:
        if self.high_watermark < 1:
            raise ValueError("high_watermark must be >= 1")
        low = self.effective_low_watermark
        if not 0 <= low < self.high_watermark:
            raise ValueError(
                f"low_watermark {low} must be in [0, high_watermark)"
            )
        if self.retry_after < 0 or self.max_retry_after < self.retry_after:
            raise ValueError(
                "need 0 <= retry_after <= max_retry_after"
            )
        if self.sync_wait < 0:
            raise ValueError("sync_wait must be >= 0")

    @property
    def effective_low_watermark(self) -> int:
        if self.low_watermark is not None:
            return self.low_watermark
        return self.high_watermark // 2


@dataclass(frozen=True)
class BusyDecision:
    """The controller's refusal: depth observed and how long to wait."""

    queue_depth: int
    retry_after: float


@dataclass
class AdmissionStats:
    """Counters the endpoint merges into ``OP_STATS`` / ``OP_HEALTH``."""

    admitted: int = 0
    forced: int = 0
    busy_rejections: int = 0
    deadline_rejections: int = 0
    peak_depth: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class AdmissionController:
    """Bounded ingest gauge with high/low watermark hysteresis.

    Thread-safe; one instance guards one endpoint (all its connection
    threads share the gauge, which is the point -- overload is a property
    of the server, not of any one connection).
    """

    def __init__(self, config: Optional[AdmissionConfig] = None):
        self.config = config or AdmissionConfig()
        self._lock = threading.Lock()
        self._drained = threading.Condition(self._lock)
        self._depth = 0
        self._busy = False
        self._stats = AdmissionStats()

    # -- gauge ------------------------------------------------------------

    @property
    def depth(self) -> int:
        with self._lock:
            return self._depth

    @property
    def busy(self) -> bool:
        with self._lock:
            return self._busy

    def _retry_hint(self) -> float:
        # Scale the hint with overshoot: a server one entry past the
        # watermark suggests the base pause, one 2x past suggests double,
        # clamped so the hint never parks a client indefinitely.
        cfg = self.config
        overshoot = max(1.0, self._depth / float(cfg.high_watermark))
        return min(cfg.max_retry_after, cfg.retry_after * overshoot)

    def _note_depth(self, n: int) -> None:
        self._depth += n
        if self._depth > self._stats.peak_depth:
            self._stats.peak_depth = self._depth
        if self._depth >= self.config.high_watermark:
            self._busy = True

    def try_admit(self, n: int = 1) -> Optional[BusyDecision]:
        """Admit ``n`` entries of synchronous work, or refuse.

        Returns ``None`` on admission (caller MUST pair with
        :meth:`release`) or a :class:`BusyDecision` on refusal (caller
        must NOT release).  If ``sync_wait`` is positive, blocks up to
        that long for the busy latch to clear before refusing.
        """
        if n < 0:
            raise ValueError("cannot admit a negative batch")
        deadline = None
        with self._drained:
            while True:
                if not self._busy:
                    self._note_depth(n)
                    self._stats.admitted += n
                    return None
                wait = self.config.sync_wait
                if wait <= 0:
                    break
                now = time.monotonic()
                if deadline is None:
                    deadline = now + wait
                remaining = deadline - now
                if remaining <= 0:
                    break
                self._drained.wait(remaining)
            self._stats.busy_rejections += 1
            return BusyDecision(
                queue_depth=self._depth, retry_after=self._retry_hint()
            )

    def force_admit(self, n: int = 1) -> None:
        """Admit fire-and-forget work unconditionally (accounting only).

        Refusing would lose evidence silently -- there is no response
        channel -- so this always succeeds; the depth it adds still
        trips the busy latch so *sync* traffic sheds on its behalf.
        """
        if n < 0:
            raise ValueError("cannot admit a negative batch")
        with self._lock:
            self._note_depth(n)
            self._stats.forced += n

    def release(self, n: int = 1) -> None:
        """Return ``n`` entries of capacity after ingest finishes
        (successfully or not -- the work is no longer in flight)."""
        with self._drained:
            self._depth = max(0, self._depth - n)
            if self._busy and self._depth <= self.config.effective_low_watermark:
                self._busy = False
                self._drained.notify_all()

    # -- deadline accounting ----------------------------------------------

    def note_deadline_rejection(self) -> None:
        with self._lock:
            self._stats.deadline_rejections += 1

    # -- observability ----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "admission_depth": self._depth,
                "admission_busy": int(self._busy),
                "admission_admitted": self._stats.admitted,
                "admission_forced": self._stats.forced,
                "admission_busy_rejections": self._stats.busy_rejections,
                "admission_deadline_rejections": (
                    self._stats.deadline_rejections
                ),
                "admission_peak_depth": self._stats.peak_depth,
            }
