"""ADLP: Accountable Data Logging Protocol for publish-subscribe systems.

A full reproduction of *"ADLP: Accountable Data Logging Protocol for
Publish-Subscribe Communication Systems"* (Yoon & Shao, ICDCS 2019),
including every substrate the paper depends on:

- :mod:`repro.crypto` -- SHA-256 digests, pure-Python RSA-1024 with
  PKCS#1 v1.5 signatures, hash chains, Merkle trees;
- :mod:`repro.serialization` -- a protobuf-style wire format;
- :mod:`repro.middleware` -- a ROS-like pub/sub middleware with TCP and
  in-process transports;
- :mod:`repro.core` -- ADLP itself plus the naive baseline and the trusted
  log server;
- :mod:`repro.audit` -- the auditor: classification, disputes, causality,
  collusion analysis;
- :mod:`repro.adversary` -- injectable unfaithful behaviors;
- :mod:`repro.apps.selfdriving` -- the paper's demo application on a
  simulated track;
- :mod:`repro.bench` -- the measurement harness behind ``benchmarks/``.

Quickstart::

    from repro import (
        Master, Node, LogServer, AdlpProtocol, Auditor, render_report,
    )
    from repro.middleware.msgtypes import StringMsg

    master, server = Master(), LogServer()
    talker = Node("/talker", master, protocol=AdlpProtocol("/talker", server))
    listener = Node("/listener", master, protocol=AdlpProtocol("/listener", server))
    listener.subscribe("/chat", StringMsg, print)
    pub = talker.advertise("/chat", StringMsg)
    pub.publish(StringMsg(data="hello, accountable world"))
    ...
    print(render_report(Auditor.for_server(server).audit_server(server)))
"""

from repro.audit import Auditor, Topology, render_report
from repro.core import (
    AdlpConfig,
    AdlpProtocol,
    Direction,
    LogEntry,
    LogServer,
    NaiveProtocol,
    Scheme,
)
from repro.crypto import generate_keypair
from repro.middleware import Master, Node
from repro.sharding import (
    ShardedLogServer,
    ShardRouter,
    ShardSetCommitment,
    audit_sharded,
)

__version__ = "1.0.0"

__all__ = [
    "Master",
    "Node",
    "LogServer",
    "ShardedLogServer",
    "ShardRouter",
    "ShardSetCommitment",
    "audit_sharded",
    "LogEntry",
    "Direction",
    "Scheme",
    "AdlpConfig",
    "AdlpProtocol",
    "NaiveProtocol",
    "Auditor",
    "Topology",
    "render_report",
    "generate_keypair",
    "__version__",
]
