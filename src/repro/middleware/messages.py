"""Typed middleware messages.

Every topic message is a :class:`~repro.serialization.schema.WireMessage`
subclass carrying a :class:`Header` (sequence number, timestamp, frame id) as
field 1 -- mirroring ROS's ``std_msgs/Header``.  The publish path stamps the
header automatically, so, as in ROS, the sequence number ends up *inside* the
serialized payload that ADLP hashes and signs ("the sequence number is a part
of the ROS message digest which is hashed and signed", Section V-B).

Message classes are registered in a global type registry keyed by their
ROS-style type name (e.g. ``"sensors/Image"``) so subscribers can decode
payloads given only the name carried in the connection header.
"""

from __future__ import annotations

import threading
from typing import Dict, Type

from repro.errors import SchemaError, TopicTypeError
from repro.middleware.names import validate_type_name
from repro.serialization import WireMessage, double, message, string, uint64


class Header(WireMessage):
    """Standard message header: per-topic sequence number and timestamp."""

    seq = uint64(1)
    stamp = double(2)
    frame_id = string(3)


class MessageMeta(WireMessage):
    """Base class for all topic messages.

    Subclasses must set :attr:`TYPE_NAME` (``"pkg/Type"``) and declare their
    payload fields starting at field number 2; field 1 is the header.
    """

    TYPE_NAME: str = ""

    header = message(1, Header)

    def ensure_header(self) -> Header:
        """Return the message's header, creating one if unset."""
        if self.header is None:
            self.header = Header()
        return self.header


_registry: Dict[str, Type[MessageMeta]] = {}
_registry_lock = threading.Lock()


def register_message(cls: Type[MessageMeta]) -> Type[MessageMeta]:
    """Class decorator: add a message type to the global registry.

    >>> @register_message
    ... class Ping(MessageMeta):
    ...     TYPE_NAME = "test/Ping"
    ...     count = uint64(2)
    """
    if not issubclass(cls, MessageMeta):
        raise SchemaError(f"{cls.__name__} must derive from MessageMeta")
    type_name = validate_type_name(cls.TYPE_NAME)
    with _registry_lock:
        existing = _registry.get(type_name)
        if existing is not None and existing is not cls:
            raise SchemaError(f"message type {type_name!r} already registered")
        _registry[type_name] = cls
    return cls


def lookup_message(type_name: str) -> Type[MessageMeta]:
    """Resolve a registered message class by type name."""
    with _registry_lock:
        try:
            return _registry[type_name]
        except KeyError:
            raise TopicTypeError(f"unknown message type {type_name!r}") from None


def registered_types() -> Dict[str, Type[MessageMeta]]:
    """Snapshot of the registry (for tooling/tests)."""
    with _registry_lock:
        return dict(_registry)
