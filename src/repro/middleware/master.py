"""The master: name service matching publishers to subscribers.

Like the ROS master, it performs *only* name resolution: data never flows
through it, so there is no central point through which transmissions could
be observed -- precisely the decentralization that makes the naive logging
scheme unaccountable (Section III-B) and motivates ADLP.

It enforces the paper's system-model invariant that *no two components
publish the same data type* (Section II): a second publisher registering an
existing topic is rejected with :class:`~repro.errors.DuplicatePublisherError`,
so a correct type label uniquely identifies the publisher.
"""

from __future__ import annotations

import logging
import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import DuplicatePublisherError, TopicTypeError
from repro.middleware.names import validate_name, validate_type_name
from repro.middleware.transport.base import Transport
from repro.middleware.transport.inproc import InprocTransport

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PublisherInfo:
    """What a subscriber needs to reach a topic's publisher."""

    node_id: str
    topic: str
    type_name: str
    address: Tuple


@dataclass
class _SubscriberRecord:
    node_id: str
    type_name: str
    on_publisher: Callable[[PublisherInfo], None]


class Master:
    """Thread-safe registry of publishers and subscribers per topic."""

    def __init__(self, transport: Optional[Transport] = None):
        #: Transport shared by all nodes registered with this master.
        self.transport: Transport = transport or InprocTransport()
        self._publishers: Dict[str, PublisherInfo] = {}
        self._subscribers: Dict[str, List[_SubscriberRecord]] = {}
        self._lock = threading.Lock()

    # -- publisher side --------------------------------------------------

    def register_publisher(
        self, node_id: str, topic: str, type_name: str, address: Tuple
    ) -> PublisherInfo:
        """Register ``node_id`` as *the* publisher of ``topic``.

        Notifies any already-registered subscribers so they connect.
        """
        topic = validate_name(topic, "topic")
        type_name = validate_type_name(type_name)
        info = PublisherInfo(
            node_id=node_id, topic=topic, type_name=type_name, address=address
        )
        with self._lock:
            existing = self._publishers.get(topic)
            if existing is not None:
                raise DuplicatePublisherError(
                    f"topic {topic!r} already published by {existing.node_id!r}; "
                    f"the system model forbids two publishers of one data type"
                )
            self._check_type_consistency(topic, type_name)
            self._publishers[topic] = info
            waiting = list(self._subscribers.get(topic, []))
        dead: List[_SubscriberRecord] = []
        for record in waiting:
            try:
                record.on_publisher(info)
            except Exception as exc:
                # A dead subscriber (torn-down node whose callback now
                # throws) must not poison the announcement loop for the
                # others, nor be re-announced to forever: drop its record.
                dead.append(record)
                logger.warning(
                    "dropping subscriber %r on topic %r: "
                    "publisher callback raised %r",
                    record.node_id,
                    topic,
                    exc,
                )
        if dead:
            with self._lock:
                records = self._subscribers.get(topic, [])
                # identity comparison: records are plain dataclasses whose
                # field equality could alias two distinct registrations
                self._subscribers[topic] = [
                    r for r in records if not any(r is d for d in dead)
                ]
        return info

    def unregister_publisher(self, node_id: str, topic: str) -> None:
        """Remove a publisher registration (no-op if absent or not owner)."""
        topic = validate_name(topic, "topic")
        with self._lock:
            existing = self._publishers.get(topic)
            if existing is not None and existing.node_id == node_id:
                del self._publishers[topic]

    # -- subscriber side -------------------------------------------------

    def register_subscriber(
        self,
        node_id: str,
        topic: str,
        type_name: str,
        on_publisher: Callable[[PublisherInfo], None],
    ) -> Optional[PublisherInfo]:
        """Register interest in ``topic``.

        Returns the current publisher (if any); future publishers are
        announced via ``on_publisher``.
        """
        topic = validate_name(topic, "topic")
        type_name = validate_type_name(type_name)
        with self._lock:
            self._check_type_consistency(topic, type_name)
            record = _SubscriberRecord(
                node_id=node_id, type_name=type_name, on_publisher=on_publisher
            )
            self._subscribers.setdefault(topic, []).append(record)
            return self._publishers.get(topic)

    def unregister_subscriber(self, node_id: str, topic: str) -> None:
        """Remove all of ``node_id``'s subscriptions to ``topic``."""
        topic = validate_name(topic, "topic")
        with self._lock:
            records = self._subscribers.get(topic, [])
            self._subscribers[topic] = [r for r in records if r.node_id != node_id]

    # -- introspection ---------------------------------------------------

    def lookup_publisher(self, topic: str) -> Optional[PublisherInfo]:
        """Current publisher of ``topic``, or ``None``."""
        with self._lock:
            return self._publishers.get(validate_name(topic, "topic"))

    def topics(self) -> Dict[str, str]:
        """Mapping of known topic -> type name (published or subscribed)."""
        with self._lock:
            result = {t: info.type_name for t, info in self._publishers.items()}
            for topic, records in self._subscribers.items():
                for record in records:
                    result.setdefault(topic, record.type_name)
            return result

    def subscriber_ids(self, topic: str) -> List[str]:
        """Node ids currently subscribed to ``topic``."""
        with self._lock:
            return [r.node_id for r in self._subscribers.get(topic, [])]

    # -- internal ----------------------------------------------------------

    def _check_type_consistency(self, topic: str, type_name: str) -> None:
        """Reject a registration whose type disagrees with existing ones.

        Caller must hold the lock.
        """
        existing_pub = self._publishers.get(topic)
        if existing_pub is not None and existing_pub.type_name != type_name:
            raise TopicTypeError(
                f"topic {topic!r} is {existing_pub.type_name}, not {type_name}"
            )
        for record in self._subscribers.get(topic, []):
            if record.type_name != type_name:
                raise TopicTypeError(
                    f"topic {topic!r} already subscribed as {record.type_name}, "
                    f"not {type_name}"
                )
