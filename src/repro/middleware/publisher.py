"""Topic publisher.

A publisher owns one transport listener and, like ROS, one *link* (worker
thread + outbound queue) per connected subscriber.  Each publication is
serialized and passed through the node's transport protocol **once**
(``make_frame``), then fanned out to every link -- this is why the paper's
Figure 14 finds ADLP's crypto cost roughly independent of the number of
subscribers: the hash and signature are computed per publication, not per
subscriber.

The per-link worker delivers frames via ``on_link_send``, which under ADLP
also waits for the subscriber's signed acknowledgement before the next frame
may go out ("if the acknowledgement to the previously published message has
not been received from a particular subscriber, the new message is not sent
to the subscriber", Section V-B, step 2).
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Type

from repro.errors import NodeShutdownError, SchemaError
from repro.middleware import handshake
from repro.middleware.messages import Header, MessageMeta
from repro.middleware.names import validate_name
from repro.middleware.transport.base import Connection, ConnectionClosed
from repro.util.concurrency import StoppableThread, wait_for
from repro.util.idgen import SequenceCounter

if TYPE_CHECKING:  # pragma: no cover
    from repro.middleware.node import Node


@dataclass
class PublisherStats:
    """Counters exposed for tests and the benchmark harness."""

    published: int = 0
    sent_frames: int = 0
    sent_bytes: int = 0
    dropped: int = 0
    link_errors: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class _SubscriberLink:
    """One connected subscriber: an outbound queue drained by a worker."""

    def __init__(self, publisher: "Publisher", subscriber_id: str, connection: Connection):
        self.subscriber_id = subscriber_id
        self.connection = connection
        self._publisher = publisher
        self._queue: "queue.Queue" = queue.Queue(maxsize=publisher.queue_size)
        self._worker = StoppableThread(
            name=f"publink-{publisher.topic}-{subscriber_id}", target=self._run
        )
        self._worker.start()

    def enqueue(self, seq: int, frame: bytes) -> None:
        """Queue a frame, dropping the oldest when full (ROS queue_size)."""
        while True:
            try:
                self._queue.put_nowait((seq, frame))
                return
            except queue.Full:
                try:
                    self._queue.get_nowait()
                    stats = self._publisher.stats
                    with stats._lock:
                        stats.dropped += 1
                except queue.Empty:
                    continue

    def _run(self) -> None:
        protocol = self._publisher._protocol
        stats = self._publisher.stats
        while not self._worker.stopped():
            try:
                seq, frame = self._queue.get(timeout=0.1)
            except queue.Empty:
                continue
            try:
                protocol.on_link_send(self.subscriber_id, self.connection, seq, frame)
                with stats._lock:
                    stats.sent_frames += 1
                    stats.sent_bytes += len(frame)
            except ConnectionClosed:
                with stats._lock:
                    stats.link_errors += 1
                break
        self.connection.close()
        self._publisher._remove_link(self)

    def close(self) -> None:
        self._worker.stop(join=False)
        self.connection.close()
        self._worker.stop()


class Publisher:
    """The single publisher of one typed topic.

    Created via :meth:`repro.middleware.node.Node.advertise`; applications
    call :meth:`publish` and remain oblivious to the transport protocol in
    use (plain, naive logging, or ADLP).
    """

    def __init__(
        self,
        node: "Node",
        topic: str,
        msg_class: Type[MessageMeta],
        queue_size: int = 16,
        latch: bool = False,
    ):
        self.topic = validate_name(topic, "topic")
        self.msg_class = msg_class
        self.type_name = msg_class.TYPE_NAME
        self.queue_size = queue_size
        #: when set, the most recent publication is delivered to every
        #: newly connecting subscriber (ROS's "latched" topics)
        self.latch = latch
        self.stats = PublisherStats()
        self._node = node
        self._links: Dict[str, _SubscriberLink] = {}
        self._links_lock = threading.Lock()
        self._last_frame: Optional[tuple] = None  # (seq, frame) for latch
        self._closed = threading.Event()

        self._protocol = node.protocol.publisher_protocol(self.topic, self.type_name)
        # The protocol chooses where numbering starts: with durable sequence
        # state a restarted publisher resumes after its last signed number
        # instead of re-using sequence numbers from its previous life.
        self._seq = SequenceCounter(start=self._protocol.initial_seq())
        self._listener = node.master.transport.listen()
        try:
            node.master.register_publisher(
                node.name, self.topic, self.type_name, self._listener.address
            )
        except Exception:
            self._listener.close()
            self._protocol.close()
            raise
        self._acceptor = StoppableThread(
            name=f"pubaccept-{self.topic}", target=self._accept_loop
        )
        self._acceptor.start()

    # -- publishing ------------------------------------------------------

    def publish(self, msg: MessageMeta) -> int:
        """Stamp, serialize, and fan out ``msg``; returns its sequence number.

        The header's ``seq`` and ``stamp`` are filled in here (as rospy
        does), so the sequence number is embedded in the signed payload.
        """
        if self._closed.is_set():
            raise NodeShutdownError(f"publisher for {self.topic} is closed")
        if not isinstance(msg, self.msg_class):
            raise SchemaError(
                f"topic {self.topic} carries {self.msg_class.__name__}, "
                f"got {type(msg).__name__}"
            )
        seq = self._seq.next()
        header = msg.ensure_header()
        header.seq = seq
        if header.stamp == 0.0:
            header.stamp = self._node.clock.now()
        payload = msg.encode()
        frame = self._protocol.make_frame(seq, payload)
        with self.stats._lock:
            self.stats.published += 1
        with self._links_lock:
            links = list(self._links.values())
            if self.latch:
                self._last_frame = (seq, frame)
        for link in links:
            link.enqueue(seq, frame)
        return seq

    # -- connection management --------------------------------------------

    def _accept_loop(self) -> None:
        while not self._acceptor.stopped():
            connection = self._listener.accept(timeout=0.1)
            if connection is None:
                continue
            try:
                self._handshake(connection)
            except Exception:
                connection.close()

    def _handshake(self, connection: Connection) -> None:
        peer = handshake.server_handshake(
            connection, self._node.name, self.topic, self.type_name
        )
        if peer is None:
            connection.close()
            return
        link = _SubscriberLink(self, peer.node_id, connection)
        with self._links_lock:
            old = self._links.pop(peer.node_id, None)
            self._links[peer.node_id] = link
            latched = self._last_frame if self.latch else None
        if old is not None:
            old.close()
        if latched is not None:
            link.enqueue(*latched)

    def _remove_link(self, link: _SubscriberLink) -> None:
        with self._links_lock:
            if self._links.get(link.subscriber_id) is link:
                del self._links[link.subscriber_id]

    @property
    def num_connections(self) -> int:
        """Number of currently connected subscribers."""
        with self._links_lock:
            return len(self._links)

    def subscriber_ids(self) -> List[str]:
        """Node ids of currently connected subscribers."""
        with self._links_lock:
            return list(self._links)

    def wait_for_subscribers(self, count: int = 1, timeout: float = 5.0) -> bool:
        """Block until at least ``count`` subscribers are connected."""
        return wait_for(lambda: self.num_connections >= count, timeout=timeout)

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recent publication (0 if none)."""
        return self._seq.last

    def close(self) -> None:
        """Unregister and tear down all links."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._node.master.unregister_publisher(self._node.name, self.topic)
        self._acceptor.stop(join=False)
        self._listener.close()
        with self._links_lock:
            links = list(self._links.values())
        for link in links:
            link.close()
        self._acceptor.stop()
        self._protocol.close()
