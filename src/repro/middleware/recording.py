"""Topic recording and replay ("bags").

ROS systems record topic traffic with ``rosbag`` for debugging and
post-incident replay; the paper's black-box story presumes the same kind
of capture.  This module provides the middleware-level equivalent:

- :class:`BagWriter` / :class:`BagReader` -- an append-only file of
  timestamped topic messages (4-byte-framed records);
- :class:`Recorder` -- a node that subscribes to topics and streams them
  into a bag;
- :class:`Player` -- a node that re-publishes a bag's messages onto a
  (fresh) graph, preserving relative timing or as fast as possible.

Replay composes with ADLP: a player node running an
:class:`~repro.core.adlp_protocol.AdlpProtocol` produces a fully
accountable re-execution of recorded traffic.
"""

from __future__ import annotations

import os
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import DecodingError, TransportError
from repro.middleware.master import Master
from repro.middleware.messages import MessageMeta, lookup_message
from repro.middleware.node import Node
from repro.serialization import WireMessage, bytes_, double, string

_FRAME = struct.Struct("<I")

#: magic first record identifying a bag file
_MAGIC = b"repro-bag-v1"


class BagRecord(WireMessage):
    """One recorded message: where it was heard, when, and its bytes."""

    topic = string(1)
    type_name = string(2)
    stamp = double(3)  # receive time at the recorder
    payload = bytes_(4)  # the serialized application message


class BagWriter:
    """Append-only bag file writer (thread-safe)."""

    def __init__(self, path: str):
        self.path = path
        self._file = open(path, "wb")
        self._file.write(_FRAME.pack(len(_MAGIC)) + _MAGIC)
        self._lock = threading.Lock()
        self._count = 0

    def write(self, record: BagRecord) -> None:
        raw = record.encode()
        with self._lock:
            self._file.write(_FRAME.pack(len(raw)) + raw)
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def close(self) -> None:
        with self._lock:
            self._file.close()


class BagReader:
    """Sequential bag file reader."""

    def __init__(self, path: str):
        self.path = path

    def __iter__(self) -> Iterator[BagRecord]:
        with open(self.path, "rb") as f:
            first = self._read_frame(f)
            if first != _MAGIC:
                raise DecodingError(f"{self.path} is not a bag file")
            while True:
                raw = self._read_frame(f)
                if raw is None:
                    return
                yield BagRecord.decode(raw)

    @staticmethod
    def _read_frame(f) -> Optional[bytes]:
        header = f.read(_FRAME.size)
        if not header:
            return None
        if len(header) < _FRAME.size:
            raise DecodingError("truncated bag frame header")
        (length,) = _FRAME.unpack(header)
        payload = f.read(length)
        if len(payload) < length:
            raise DecodingError("truncated bag frame")
        return payload

    def records(self) -> List[BagRecord]:
        return list(self)

    def topics(self) -> Dict[str, str]:
        """Mapping of recorded topic -> type name."""
        found: Dict[str, str] = {}
        for record in self:
            found.setdefault(record.topic, record.type_name)
        return found


class Recorder:
    """Subscribes to topics and streams their messages into a bag.

    :param master: the graph to record from.
    :param path: bag file to write.
    :param topics: topics to record; defaults to everything currently
        known to the master.
    """

    def __init__(
        self,
        master: Master,
        path: str,
        topics: Optional[Sequence[str]] = None,
        node_name: str = "/recorder",
        protocol=None,
    ):
        self.writer = BagWriter(path)
        self.node = Node(node_name, master, protocol=protocol)
        known = master.topics()
        selected = list(topics) if topics is not None else sorted(known)
        self._subscribed: List[str] = []
        for topic in selected:
            type_name = known.get(topic)
            if type_name is None:
                continue
            msg_class = lookup_message(type_name)
            self.node.subscribe(topic, msg_class, self._make_callback(topic, type_name))
            self._subscribed.append(topic)

    def _make_callback(self, topic: str, type_name: str):
        def callback(msg: MessageMeta) -> None:
            self.writer.write(
                BagRecord(
                    topic=topic,
                    type_name=type_name,
                    stamp=self.node.clock.now(),
                    payload=msg.encode(),
                )
            )

        return callback

    @property
    def topics(self) -> List[str]:
        return list(self._subscribed)

    @property
    def count(self) -> int:
        return self.writer.count

    def stop(self) -> None:
        self.node.shutdown()
        self.writer.close()


class Player:
    """Re-publishes a bag onto a graph.

    :param rate: time scale -- 1.0 replays with original pacing, 2.0 at
        double speed, 0 as fast as possible.
    """

    def __init__(
        self, master: Master, path: str, node_name: str = "/player", protocol=None
    ):
        self.reader = BagReader(path)
        self.node = Node(node_name, master, protocol=protocol)
        self._publishers: Dict[str, object] = {}

    def play(self, rate: float = 1.0, wait_for_subscribers: int = 0) -> int:
        """Publish all records; returns how many were published.

        Re-stamps each message's header on publication (fresh seq/stamp),
        so replayed traffic is first-class: ADLP signs and logs it anew.
        """
        records = self.reader.records()
        if not records:
            return 0
        for record in records:
            if record.topic not in self._publishers:
                msg_class = lookup_message(record.type_name)
                publisher = self.node.advertise(record.topic, msg_class)
                if wait_for_subscribers:
                    publisher.wait_for_subscribers(wait_for_subscribers)
                self._publishers[record.topic] = publisher

        published = 0
        start_wall = time.monotonic()
        start_stamp = records[0].stamp
        for record in records:
            if rate > 0:
                due = (record.stamp - start_stamp) / rate
                delay = due - (time.monotonic() - start_wall)
                if delay > 0:
                    time.sleep(delay)
            msg_class = lookup_message(record.type_name)
            msg = msg_class.decode(record.payload)
            msg.header = None  # force a fresh header (seq/stamp) on publish
            self._publishers[record.topic].publish(msg)
            published += 1
        return published

    def stop(self) -> None:
        self.node.shutdown()
