"""Connection handshake.

TCPROS opens every connection with a header exchange (caller id, topic,
type, md5sum).  We do the same: the subscriber sends a
:class:`ConnectionHeader` as the first frame, the publisher replies with its
own.  The exchange is what tells the ADLP publisher *which* subscriber a
connection belongs to, so acknowledgements can be attributed in log entries.

Over a lossy link a header frame can be dropped or mangled, so both sides
retry: :func:`client_handshake` re-sends its header after each timed-out
wait, :func:`server_handshake` keeps waiting (and ignores malformed frames)
across the same budget.  The total wait stays bounded by the caller's
timeout.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DecodingError, TopicTypeError, TransportError
from repro.middleware.transport.base import Connection, ConnectionClosed
from repro.serialization import WireMessage, string

#: Seconds either side waits, in total, for the peer's handshake frame.
HANDSHAKE_TIMEOUT = 5.0

#: Send/wait attempts either side makes within that budget.
HANDSHAKE_ATTEMPTS = 3


class ConnectionHeader(WireMessage):
    """First frame exchanged on every publisher<->subscriber connection."""

    node_id = string(1)
    topic = string(2)
    type_name = string(3)
    role = string(4)  # "publisher" | "subscriber"


def send_header(
    connection: Connection, node_id: str, topic: str, type_name: str, role: str
) -> None:
    """Send our side of the handshake."""
    header = ConnectionHeader(
        node_id=node_id, topic=topic, type_name=type_name, role=role
    )
    connection.send_frame(header.encode())


def recv_header(
    connection: Connection, timeout: float = HANDSHAKE_TIMEOUT
) -> Optional[ConnectionHeader]:
    """Receive and decode the peer's handshake frame (``None`` on timeout)."""
    frame = connection.recv_frame(timeout=timeout)
    if frame is None:
        return None
    try:
        return ConnectionHeader.decode(frame)
    except DecodingError as exc:
        raise TransportError(f"malformed connection header: {exc}") from exc


def client_handshake(
    connection: Connection,
    node_id: str,
    topic: str,
    type_name: str,
    role: str = "subscriber",
    expected_role: str = "publisher",
    attempts: int = HANDSHAKE_ATTEMPTS,
    timeout: Optional[float] = None,
) -> Optional[ConnectionHeader]:
    """Initiator side: send our header, await the peer's, resend on timeout.

    Returns the validated peer header, or ``None`` when every attempt timed
    out.  Raises on a peer that answers with a *mismatched* header (that is
    a real error, not a lossy link).
    """
    if timeout is None:
        timeout = HANDSHAKE_TIMEOUT  # late-bound so tests can shrink it
    per_wait = timeout / max(attempts, 1)
    for _ in range(max(attempts, 1)):
        send_header(connection, node_id, topic, type_name, role)
        try:
            peer = recv_header(connection, timeout=per_wait)
        except TransportError as exc:
            if isinstance(exc, (TopicTypeError, ConnectionClosed)):
                raise
            continue  # malformed (e.g. truncated) header frame: retry
        if peer is not None:
            check_header(peer, topic, type_name, expected_role)
            return peer
    return None


def server_handshake(
    connection: Connection,
    node_id: str,
    topic: str,
    type_name: str,
    role: str = "publisher",
    expected_role: str = "subscriber",
    attempts: int = HANDSHAKE_ATTEMPTS,
    timeout: Optional[float] = None,
) -> Optional[ConnectionHeader]:
    """Acceptor side: await the initiator's header, then reply with ours.

    Keeps waiting across ``attempts`` windows (the initiator re-sends on
    timeout) and skips malformed frames.  Returns ``None`` when nothing
    valid arrived within the budget.
    """
    if timeout is None:
        timeout = HANDSHAKE_TIMEOUT  # late-bound so tests can shrink it
    per_wait = timeout / max(attempts, 1)
    peer: Optional[ConnectionHeader] = None
    for _ in range(max(attempts, 1)):
        try:
            peer = recv_header(connection, timeout=per_wait)
        except TransportError as exc:
            if isinstance(exc, (TopicTypeError, ConnectionClosed)):
                raise
            continue  # malformed header frame: keep waiting for a resend
        if peer is not None:
            break
    if peer is None:
        return None
    check_header(peer, topic, type_name, expected_role)
    send_header(connection, node_id, topic, type_name, role)
    return peer


def check_header(
    header: ConnectionHeader, topic: str, type_name: str, expected_role: str
) -> None:
    """Validate the peer's handshake against our expectations."""
    if header.topic != topic:
        raise TransportError(
            f"peer connected for topic {header.topic!r}, expected {topic!r}"
        )
    if header.type_name != type_name:
        raise TopicTypeError(
            f"peer speaks {header.type_name!r} on {topic!r}, expected {type_name!r}"
        )
    if header.role != expected_role:
        raise TransportError(
            f"peer role {header.role!r}, expected {expected_role!r}"
        )
