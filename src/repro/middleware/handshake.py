"""Connection handshake.

TCPROS opens every connection with a header exchange (caller id, topic,
type, md5sum).  We do the same: the subscriber sends a
:class:`ConnectionHeader` as the first frame, the publisher replies with its
own.  The exchange is what tells the ADLP publisher *which* subscriber a
connection belongs to, so acknowledgements can be attributed in log entries.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import DecodingError, TopicTypeError, TransportError
from repro.middleware.transport.base import Connection
from repro.serialization import WireMessage, string

#: Seconds either side waits for the peer's handshake frame.
HANDSHAKE_TIMEOUT = 5.0


class ConnectionHeader(WireMessage):
    """First frame exchanged on every publisher<->subscriber connection."""

    node_id = string(1)
    topic = string(2)
    type_name = string(3)
    role = string(4)  # "publisher" | "subscriber"


def send_header(
    connection: Connection, node_id: str, topic: str, type_name: str, role: str
) -> None:
    """Send our side of the handshake."""
    header = ConnectionHeader(
        node_id=node_id, topic=topic, type_name=type_name, role=role
    )
    connection.send_frame(header.encode())


def recv_header(
    connection: Connection, timeout: float = HANDSHAKE_TIMEOUT
) -> Optional[ConnectionHeader]:
    """Receive and decode the peer's handshake frame (``None`` on timeout)."""
    frame = connection.recv_frame(timeout=timeout)
    if frame is None:
        return None
    try:
        return ConnectionHeader.decode(frame)
    except DecodingError as exc:
        raise TransportError(f"malformed connection header: {exc}") from exc


def check_header(
    header: ConnectionHeader, topic: str, type_name: str, expected_role: str
) -> None:
    """Validate the peer's handshake against our expectations."""
    if header.topic != topic:
        raise TransportError(
            f"peer connected for topic {header.topic!r}, expected {topic!r}"
        )
    if header.type_name != type_name:
        raise TopicTypeError(
            f"peer speaks {header.type_name!r} on {topic!r}, expected {type_name!r}"
        )
    if header.role != expected_role:
        raise TransportError(
            f"peer role {header.role!r}, expected {expected_role!r}"
        )
