"""A ROS-like publish-subscribe middleware ("rosim").

The paper implements ADLP inside rospy's transport layer.  ROS itself is not
available offline, so this package provides a faithful miniature: a master
(name service) that matches publishers to subscribers, nodes hosting
publishers and subscribers, typed topics with sequence-numbered headers, and
point-to-point transports -- real TCP sockets with ROS's 4-byte length
preamble, plus a deterministic in-process transport for tests.

Crucially for ADLP, the wire protocol between a publisher and each
subscriber is *pluggable* (:class:`~repro.middleware.transport.base.TransportProtocol`):
the plain protocol ships bare payloads, while :mod:`repro.core` installs the
ADLP protocol (signed messages, signed ACKs, withhold-until-ACK) without the
application layer noticing -- the paper's transparency property.
"""

from repro.middleware.master import Master
from repro.middleware.messages import Header, MessageMeta, register_message, lookup_message
from repro.middleware.node import Node
from repro.middleware.publisher import Publisher
from repro.middleware.subscriber import Subscriber
from repro.middleware.graph import build_graph, data_flows
from repro.middleware.recording import BagReader, BagWriter, Player, Recorder

__all__ = [
    "BagReader",
    "BagWriter",
    "Player",
    "Recorder",
    "Master",
    "Node",
    "Publisher",
    "Subscriber",
    "Header",
    "MessageMeta",
    "register_message",
    "lookup_message",
    "build_graph",
    "data_flows",
]
