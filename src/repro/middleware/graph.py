"""Computation-graph introspection.

Builds a :mod:`networkx` digraph of components and topics from a master's
registry -- the structure the paper draws in Figure 11(b) and over which the
auditor reasons about end-to-end data flows (Section II: "an end-to-end data
flow can be formed by a sequence of alternating publication and subscription
of data").
"""

from __future__ import annotations

from typing import List, Tuple

import networkx as nx

from repro.middleware.master import Master


def build_graph(master: Master) -> "nx.DiGraph":
    """Bipartite digraph: component -> topic -> component.

    Component nodes get ``kind="component"``; topic nodes ``kind="topic"``
    with a ``type_name`` attribute.
    """
    graph = nx.DiGraph()
    topics = master.topics()
    for topic, type_name in topics.items():
        graph.add_node(topic, kind="topic", type_name=type_name)
        info = master.lookup_publisher(topic)
        if info is not None:
            graph.add_node(info.node_id, kind="component")
            graph.add_edge(info.node_id, topic)
        for subscriber_id in master.subscriber_ids(topic):
            graph.add_node(subscriber_id, kind="component")
            graph.add_edge(topic, subscriber_id)
    return graph


def data_flows(master: Master) -> List[Tuple[str, str, str]]:
    """All (publisher, topic, subscriber) transmissions D_{x->y}."""
    flows = []
    for topic in master.topics():
        info = master.lookup_publisher(topic)
        if info is None:
            continue
        for subscriber_id in master.subscriber_ids(topic):
            flows.append((info.node_id, topic, subscriber_id))
    return sorted(flows)


def component_graph(master: Master) -> "nx.DiGraph":
    """Projected digraph with only components as nodes.

    Edge (x, y) exists iff x publishes a topic y subscribes to; the edge's
    ``topics`` attribute lists the topics carrying the flow.
    """
    graph = nx.DiGraph()
    for publisher_id, topic, subscriber_id in data_flows(master):
        if graph.has_edge(publisher_id, subscriber_id):
            graph[publisher_id][subscriber_id]["topics"].append(topic)
        else:
            graph.add_edge(publisher_id, subscriber_id, topics=[topic])
    return graph


def end_to_end_paths(master: Master, source: str, sink: str) -> List[List[str]]:
    """All simple component paths from ``source`` to ``sink``.

    E.g. Camera -> ... -> Steering in the self-driving application.
    """
    graph = component_graph(master)
    if source not in graph or sink not in graph:
        return []
    return [list(p) for p in nx.all_simple_paths(graph, source, sink)]
