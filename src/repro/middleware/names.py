"""Node and topic name validation (ROS-style graph resource names).

Valid names consist of slash-separated segments of ``[A-Za-z][A-Za-z0-9_]*``.
Topic and node names are canonicalized to a single leading slash, e.g.
``camera/image_raw`` -> ``/camera/image_raw``.
"""

from __future__ import annotations

import re

from repro.errors import NameError_

_SEGMENT = re.compile(r"^[A-Za-z][A-Za-z0-9_]*$")


def validate_name(name: str, kind: str = "name") -> str:
    """Canonicalize and validate a graph resource name.

    Returns the canonical form (leading slash, no trailing slash).  Raises
    :class:`~repro.errors.NameError_` for empty names, bad characters, or
    empty segments.
    """
    if not isinstance(name, str) or not name:
        raise NameError_(f"{kind} must be a non-empty string")
    stripped = name.strip("/")
    if not stripped:
        raise NameError_(f"{kind} {name!r} has no segments")
    segments = stripped.split("/")
    for segment in segments:
        if not _SEGMENT.match(segment):
            raise NameError_(
                f"{kind} {name!r}: segment {segment!r} must match "
                f"[A-Za-z][A-Za-z0-9_]*"
            )
    return "/" + "/".join(segments)


def validate_type_name(type_name: str) -> str:
    """Validate a message type name of the form ``package/TypeName``."""
    if not isinstance(type_name, str) or type_name.count("/") != 1:
        raise NameError_(f"type name {type_name!r} must look like 'pkg/Type'")
    pkg, type_part = type_name.split("/")
    if not _SEGMENT.match(pkg) or not _SEGMENT.match(type_part):
        raise NameError_(f"invalid type name {type_name!r}")
    return type_name


def namespace_of(name: str) -> str:
    """Return the namespace (parent) of a canonical name.

    >>> namespace_of('/camera/image_raw')
    '/camera'
    >>> namespace_of('/scan')
    '/'
    """
    canonical = validate_name(name)
    head, _, _ = canonical.rpartition("/")
    return head or "/"


def basename_of(name: str) -> str:
    """Return the final segment of a canonical name."""
    canonical = validate_name(name)
    return canonical.rsplit("/", 1)[1]
