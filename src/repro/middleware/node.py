"""Nodes: the unit of computation (the paper's "software component" c_i).

A node is registered with a master, owns publishers/subscribers/timers, and
carries the :class:`~repro.middleware.transport.base.TransportProtocol` that
decides what its links speak on the wire.  Installing the ADLP protocol on a
node is the library's equivalent of running the paper's modified rospy: the
application code (callbacks, publish calls) is unchanged.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional, Type

from repro.errors import NodeShutdownError
from repro.middleware.master import Master
from repro.middleware.messages import MessageMeta
from repro.middleware.names import validate_name
from repro.middleware.publisher import Publisher
from repro.middleware.subscriber import Subscriber
from repro.middleware.transport.base import PlainProtocol, TransportProtocol
from repro.util.clock import Clock, SystemClock
from repro.util.concurrency import RateLimiter, StoppableThread


class Timer:
    """Calls ``callback`` at a fixed rate on a dedicated thread."""

    def __init__(self, name: str, hz: float, callback: Callable[[], None]):
        self._limiter = RateLimiter(hz)
        self._callback = callback
        self._thread = StoppableThread(name=f"timer-{name}", target=self._run)
        self._thread.start()

    def _run(self) -> None:
        while not self._thread.stopped():
            self._limiter.wait()
            if self._thread.stopped():
                return
            try:
                self._callback()
            except Exception:
                # A timer callback failure must not kill the timer thread;
                # application errors surface through node-level monitoring.
                pass

    def stop(self) -> None:
        self._thread.stop()


class Node:
    """A named component hosting publishers and subscribers.

    :param name: unique graph name, e.g. ``"/lane_detector"``.
    :param master: the name service to register with.
    :param protocol: wire protocol for all of this node's links; defaults to
        :class:`PlainProtocol` (no logging).  Pass an
        :class:`repro.core.adlp_protocol.AdlpProtocol` to run under ADLP.
    :param clock: source of header timestamps; defaults to wall clock.
    """

    def __init__(
        self,
        name: str,
        master: Master,
        protocol: Optional[TransportProtocol] = None,
        clock: Optional[Clock] = None,
    ):
        self.name = validate_name(name, "node name")
        self.master = master
        self.protocol = protocol or PlainProtocol()
        self.clock = clock or SystemClock()
        self._publishers: List[Publisher] = []
        self._subscribers: List[Subscriber] = []
        self._timers: List[Timer] = []
        self._lock = threading.Lock()
        self._shutdown = threading.Event()

    def advertise(
        self,
        topic: str,
        msg_class: Type[MessageMeta],
        queue_size: int = 16,
        latch: bool = False,
    ) -> Publisher:
        """Become the publisher of ``topic``.

        With ``latch=True`` the most recent message is re-delivered to
        every newly connecting subscriber.
        """
        self._check_alive()
        publisher = Publisher(
            self, topic, msg_class, queue_size=queue_size, latch=latch
        )
        with self._lock:
            self._publishers.append(publisher)
        return publisher

    def subscribe(
        self,
        topic: str,
        msg_class: Type[MessageMeta],
        callback: Callable[[MessageMeta], None],
    ) -> Subscriber:
        """Subscribe to ``topic``, invoking ``callback`` per message."""
        self._check_alive()
        subscriber = Subscriber(self, topic, msg_class, callback)
        with self._lock:
            self._subscribers.append(subscriber)
        return subscriber

    def create_timer(self, hz: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` at ``hz`` on a dedicated thread until shutdown."""
        self._check_alive()
        timer = Timer(self.name, hz, callback)
        with self._lock:
            self._timers.append(timer)
        return timer

    @property
    def is_shutdown(self) -> bool:
        return self._shutdown.is_set()

    def stop_timers(self) -> None:
        """Stop periodic activity without closing pub/sub links.

        Used for graceful application shutdown: stop the stimulus first,
        let in-flight messages (and their ADLP acknowledgements) drain,
        then call :meth:`shutdown`.
        """
        with self._lock:
            timers = list(self._timers)
        for timer in timers:
            timer.stop()

    def shutdown(self) -> None:
        """Stop timers, close all publishers/subscribers, release protocol."""
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        with self._lock:
            timers = list(self._timers)
            publishers = list(self._publishers)
            subscribers = list(self._subscribers)
        for timer in timers:
            timer.stop()
        for subscriber in subscribers:
            subscriber.close()
        for publisher in publishers:
            publisher.close()
        close = getattr(self.protocol, "close", None)
        if callable(close):
            close()

    def _check_alive(self) -> None:
        if self._shutdown.is_set():
            raise NodeShutdownError(f"node {self.name} has been shut down")

    def __enter__(self) -> "Node":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
