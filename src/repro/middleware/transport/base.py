"""Transport and protocol interfaces.

Two orthogonal abstractions live here:

* **Transport** -- how raw frames move between two endpoints
  (:class:`Transport`, :class:`Listener`, :class:`Connection`).

* **TransportProtocol** -- *what* frames are exchanged per publication.
  This is the seam where ADLP plugs in, mirroring the paper's modification
  of rospy's transport layer (Section V-B): the application publishes a
  message; the installed protocol decides whether the wire carries a bare
  payload (:class:`PlainProtocol` == the paper's "base" scheme) or a signed
  ADLP envelope with a signed acknowledgement on the return path
  (:class:`repro.core.adlp_protocol.AdlpProtocol`).

The application layer never sees any of this -- the paper's transparency
property.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import TransportError


class ConnectionClosed(TransportError):
    """Raised when reading from or writing to a closed connection."""


class Connection:
    """A bidirectional, ordered, reliable frame pipe."""

    def send_frame(self, frame: bytes) -> None:
        """Send one frame.  Raises :class:`ConnectionClosed` if closed."""
        raise NotImplementedError

    def recv_frame(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """Receive one frame.

        Returns ``None`` on timeout; raises :class:`ConnectionClosed` when
        the peer has closed and no buffered frames remain.
        """
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def closed(self) -> bool:
        raise NotImplementedError

    def peer_closed(self) -> bool:
        """Best-effort check whether the peer has closed its end.

        Fire-and-forget senders use this before reusing a cached
        connection: a send into a peer-closed socket can succeed at the
        kernel level while the bytes are discarded.  Transports that
        cannot tell return ``False``.
        """
        return self.closed


class Listener:
    """The publisher-side accept endpoint of a transport."""

    @property
    def address(self) -> Tuple:
        """An opaque, hashable address subscribers pass to ``connect``."""
        raise NotImplementedError

    def accept(self, timeout: Optional[float] = None) -> Optional[Connection]:
        """Accept one inbound connection (``None`` on timeout)."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class Transport:
    """Factory for listeners and outbound connections."""

    def listen(self) -> Listener:
        raise NotImplementedError

    def connect(self, address: Tuple) -> Connection:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# Per-publication wire protocol (the ADLP seam).
# ---------------------------------------------------------------------------

class PublisherProtocol:
    """Publisher-side per-topic strategy.

    One instance exists per (publisher, topic); it is shared by all
    subscriber links of that topic, matching the paper's observation that
    hashing/signing happens *once per publication* regardless of the number
    of subscribers (Section VI-B).
    """

    def initial_seq(self) -> int:
        """First sequence number this publisher should use.

        Protocols with durable sequence state override this so a restarted
        publisher resumes after its highest previously-published number
        instead of re-signing old ones.
        """
        return 1

    def make_frame(self, seq: int, payload: bytes) -> bytes:
        """Build the outbound frame for publication ``seq``.  Called once
        per publication."""
        raise NotImplementedError

    def on_link_send(
        self, subscriber_id: str, connection: Connection, seq: int, frame: bytes
    ) -> None:
        """Deliver ``frame`` to one subscriber over ``connection``.

        Implementations may exchange additional frames (e.g. wait for an
        ADLP acknowledgement) before returning; the link worker will not
        send the next publication to this subscriber until this returns.
        """
        connection.send_frame(frame)

    def close(self) -> None:
        """Release protocol resources (e.g. stop logging helpers)."""


class SubscriberProtocol:
    """Subscriber-side per-topic strategy (one instance per subscription)."""

    def on_frame(
        self, publisher_id: str, connection: Connection, frame: bytes
    ) -> Optional[bytes]:
        """Process one inbound frame; return the application payload.

        Implementations may send frames back over ``connection`` (the ADLP
        acknowledgement).  Returning ``None`` drops the frame without
        delivering it to the application callback.
        """
        return frame

    def close(self) -> None:
        """Release protocol resources."""


class TransportProtocol:
    """Per-node factory for publisher/subscriber protocol instances."""

    #: Human-readable scheme label, used by benchmarks and reports.
    name = "plain"

    def publisher_protocol(self, topic: str, type_name: str) -> PublisherProtocol:
        raise NotImplementedError

    def subscriber_protocol(self, topic: str, type_name: str) -> SubscriberProtocol:
        raise NotImplementedError


class PlainProtocol(TransportProtocol):
    """The no-op protocol: bare payload frames, no ACKs, no logging.

    This is the paper's "No Logging" configuration; the naive/base logging
    scheme of Definition 2 is :class:`repro.core.naive_protocol.NaiveProtocol`.
    """

    name = "plain"

    class _Pub(PublisherProtocol):
        def make_frame(self, seq: int, payload: bytes) -> bytes:
            return payload

    class _Sub(SubscriberProtocol):
        pass

    def publisher_protocol(self, topic: str, type_name: str) -> PublisherProtocol:
        return self._Pub()

    def subscriber_protocol(self, topic: str, type_name: str) -> SubscriberProtocol:
        return self._Sub()
