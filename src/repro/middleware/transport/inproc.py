"""In-process transport: connections are pairs of thread-safe queues.

Used by unit and protocol tests: same interface as TCP, no sockets, no
nondeterministic connection setup.  Frames are still ``bytes`` so the full
serialization path is exercised.
"""

from __future__ import annotations

import queue
import threading
from typing import Dict, Optional, Tuple

from repro.errors import TransportError
from repro.middleware.transport.base import (
    Connection,
    ConnectionClosed,
    Listener,
    Transport,
)
from repro.util.idgen import unique_id

_CLOSE = object()  # sentinel placed on a queue when the peer closes


class InprocConnection(Connection):
    """One endpoint of an in-process connection."""

    def __init__(self, inbox: "queue.Queue", outbox: "queue.Queue"):
        self._inbox = inbox
        self._outbox = outbox
        self._closed = threading.Event()
        self._peer_closed = threading.Event()

    @classmethod
    def pair(cls) -> Tuple["InprocConnection", "InprocConnection"]:
        """Create two connected endpoints."""
        a_to_b: "queue.Queue" = queue.Queue()
        b_to_a: "queue.Queue" = queue.Queue()
        a = cls(inbox=b_to_a, outbox=a_to_b)
        b = cls(inbox=a_to_b, outbox=b_to_a)
        a._peer = b  # type: ignore[attr-defined]
        b._peer = a  # type: ignore[attr-defined]
        return a, b

    def send_frame(self, frame: bytes) -> None:
        if self._closed.is_set() or self._peer_closed.is_set():
            raise ConnectionClosed("connection is closed")
        if not isinstance(frame, (bytes, bytearray)):
            raise TransportError("frames must be bytes")
        self._outbox.put(bytes(frame))

    def recv_frame(self, timeout: Optional[float] = None) -> Optional[bytes]:
        if self._closed.is_set():
            raise ConnectionClosed("connection is closed")
        try:
            item = self._inbox.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is _CLOSE:
            self._peer_closed.set()
            raise ConnectionClosed("peer closed the connection")
        return item

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            self._outbox.put(_CLOSE)

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class InprocListener(Listener):
    """Accept endpoint backed by a queue of pending connections."""

    def __init__(self, transport: "InprocTransport", key: str):
        self._transport = transport
        self._key = key
        self._pending: "queue.Queue" = queue.Queue()
        self._closed = threading.Event()

    @property
    def address(self) -> Tuple:
        return ("inproc", self._key)

    def _enqueue(self, connection: InprocConnection) -> None:
        if self._closed.is_set():
            raise TransportError("listener is closed")
        self._pending.put(connection)

    def accept(self, timeout: Optional[float] = None) -> Optional[Connection]:
        if self._closed.is_set():
            return None
        try:
            return self._pending.get(timeout=timeout)
        except queue.Empty:
            return None

    def close(self) -> None:
        self._closed.set()
        self._transport._unregister(self._key)


class InprocTransport(Transport):
    """A process-local transport; one instance is one 'network'."""

    def __init__(self) -> None:
        self._listeners: Dict[str, InprocListener] = {}
        self._lock = threading.Lock()

    def listen(self) -> Listener:
        key = unique_id("inproc")
        listener = InprocListener(self, key)
        with self._lock:
            self._listeners[key] = listener
        return listener

    def connect(self, address: Tuple) -> Connection:
        if not (isinstance(address, tuple) and len(address) == 2 and address[0] == "inproc"):
            raise TransportError(f"not an inproc address: {address!r}")
        with self._lock:
            listener = self._listeners.get(address[1])
        if listener is None:
            raise TransportError(f"no listener at {address!r}")
        local, remote = InprocConnection.pair()
        listener._enqueue(remote)
        return local

    def _unregister(self, key: str) -> None:
        with self._lock:
            self._listeners.pop(key, None)
