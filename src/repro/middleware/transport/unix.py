"""Unix-domain stream transport with the same 4-byte length framing.

The process-sharded logger (:mod:`repro.sharding.process_server`) talks to
its worker subprocesses over this transport: both ends live on one host,
so a filesystem socket gives the parent a name it can choose *before* the
worker exists (a TCP listener binds an ephemeral port the parent would
have to learn back out of the child), skips the TCP handshake/port
accounting, and disappears with the store directory.

Framing, locking, send timeouts, and the peer-EOF peek are all
family-agnostic, so connections reuse :class:`TcpConnection` directly over
``AF_UNIX`` sockets.  Addresses are ``("unix", path)`` tuples, mirroring
the ``("tcp", host, port)`` shape the rest of the stack passes around.

On platforms without ``AF_UNIX`` (Windows before 1803), callers should
fall back to :class:`~repro.middleware.transport.tcp.TcpTransport` on
localhost; :func:`unix_sockets_supported` is the feature probe.
"""

from __future__ import annotations

import os
import socket
import threading
from typing import Optional, Tuple

from repro.errors import TransportError
from repro.middleware.transport.base import Connection, Listener, Transport
from repro.middleware.transport.tcp import DEFAULT_SEND_TIMEOUT, TcpConnection


def unix_sockets_supported() -> bool:
    """Whether this platform can create ``AF_UNIX`` stream sockets."""
    return hasattr(socket, "AF_UNIX")


class UnixListener(Listener):
    """Accept endpoint bound to a filesystem socket path."""

    def __init__(
        self,
        path: str,
        send_timeout: Optional[float] = DEFAULT_SEND_TIMEOUT,
    ):
        self._path = path
        self._send_timeout = send_timeout
        self._closed = threading.Event()
        # A stale socket file from a SIGKILLed previous incarnation would
        # make bind() fail with EADDRINUSE even though nobody listens; the
        # supervisor restarts workers onto the same path, so clear it.
        try:
            os.unlink(path)
        except FileNotFoundError:
            pass
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.bind(path)
            sock.listen(64)
        except OSError as exc:
            sock.close()
            raise TransportError(f"cannot listen on {path!r}: {exc}") from exc
        self._sock = sock

    @property
    def address(self) -> Tuple:
        return ("unix", self._path)

    def accept(self, timeout: Optional[float] = None) -> Optional[Connection]:
        if self._closed.is_set():
            return None
        try:
            self._sock.settimeout(timeout)
            client, _ = self._sock.accept()
        except socket.timeout:
            return None
        except OSError:
            return None  # listener closed concurrently
        return TcpConnection(client, send_timeout=self._send_timeout)

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            self._sock.close()
            try:
                os.unlink(self._path)
            except OSError:
                pass


class UnixTransport(Transport):
    """Factory for unix-domain stream listeners/connections.

    :param path: the socket path ``listen()`` binds.  Connect-only uses
        (e.g. the parent side of the worker protocol) may omit it.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        connect_timeout: float = 5.0,
        send_timeout: Optional[float] = DEFAULT_SEND_TIMEOUT,
    ):
        self.path = path
        self.connect_timeout = connect_timeout
        self.send_timeout = send_timeout

    def listen(self) -> Listener:
        if self.path is None:
            raise TransportError("UnixTransport needs a path to listen on")
        return UnixListener(self.path, send_timeout=self.send_timeout)

    def connect(self, address: Tuple) -> Connection:
        if not (
            isinstance(address, tuple) and len(address) == 2 and address[0] == "unix"
        ):
            raise TransportError(f"not a unix address: {address!r}")
        _, path = address
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.settimeout(self.connect_timeout)
            sock.connect(path)
        except OSError as exc:
            sock.close()
            raise TransportError(f"connect to {path!r} failed: {exc}") from exc
        sock.settimeout(None)
        return TcpConnection(sock, send_timeout=self.send_timeout)
