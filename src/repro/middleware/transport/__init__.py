"""Point-to-point transports for publisher->subscriber links.

ROS delivers topic data over per-subscriber TCP connections ("TCPROS") with
a 4-byte length preamble per frame; ADLP additionally uses the *return*
direction of the same connection for acknowledgement messages.  Both
transports here expose the same bidirectional framed-connection interface:

- :mod:`repro.middleware.transport.tcp` -- real TCP sockets on localhost.
- :mod:`repro.middleware.transport.inproc` -- queue pairs inside one
  process, deterministic and fast, used by most tests.
- :mod:`repro.middleware.transport.faulty` -- a fault-injection decorator
  over either of the above: seeded, deterministic drop/dup/delay/reorder/
  truncate/disconnect faults for chaos and resilience testing.
"""

from repro.middleware.transport.base import (
    Connection,
    ConnectionClosed,
    Listener,
    Transport,
    TransportProtocol,
    PublisherProtocol,
    SubscriberProtocol,
    PlainProtocol,
)
from repro.middleware.transport.faulty import (
    FaultProfile,
    FaultSchedule,
    FaultStats,
    FaultyTransport,
)
from repro.middleware.transport.inproc import InprocTransport
from repro.middleware.transport.tcp import TcpTransport

__all__ = [
    "FaultProfile",
    "FaultSchedule",
    "FaultStats",
    "FaultyTransport",
    "Connection",
    "ConnectionClosed",
    "Listener",
    "Transport",
    "TransportProtocol",
    "PublisherProtocol",
    "SubscriberProtocol",
    "PlainProtocol",
    "InprocTransport",
    "TcpTransport",
]
