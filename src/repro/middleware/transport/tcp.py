"""TCP transport on localhost with TCPROS-style 4-byte length framing.

This is the transport the paper's prototype uses ("ROS uses TCP/IP socket
for data transmission from publisher to subscriber, whether or not they are
on the same machine").  The latency and CPU benchmarks run over it so that
ADLP's extra round trip crosses a real socket.
"""

from __future__ import annotations

import errno
import select
import socket
import struct
import threading
from typing import Optional, Tuple

from repro.errors import TransportError
from repro.middleware.transport import framing
from repro.middleware.transport.base import (
    Connection,
    ConnectionClosed,
    Listener,
    Transport,
)

#: Seconds a blocked ``send_frame`` may wait for the peer to drain its
#: receive buffer before the connection is declared dead.  Without this, a
#: subscriber that stops reading (wedged process, frozen VM) would park the
#: publisher's link worker in ``sendall`` forever -- the kernel buffer
#: fills, ``send`` never progresses, and no timeout ever fires.
DEFAULT_SEND_TIMEOUT = 30.0


class TcpConnection(Connection):
    """A framed, bidirectional TCP connection.

    Send and receive each have their own lock so a link worker can block in
    ``recv_frame`` (waiting for an ADLP ACK) while no sender interferes with
    partially written frames.

    Sends are bounded by ``send_timeout`` via ``SO_SNDTIMEO`` (kernel-side,
    so it composes with the per-call ``settimeout`` that receives use): a
    stalled peer makes ``send_frame`` raise :class:`ConnectionClosed` (a
    :class:`TransportError`) instead of blocking forever.
    """

    def __init__(
        self,
        sock: socket.socket,
        send_timeout: Optional[float] = DEFAULT_SEND_TIMEOUT,
    ):
        # The framing/locking/timeout logic is family-agnostic, so the unix
        # transport reuses this class; Nagle only exists for TCP sockets.
        if sock.family in (socket.AF_INET, socket.AF_INET6):
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if send_timeout is not None:
            seconds = int(send_timeout)
            sock.setsockopt(
                socket.SOL_SOCKET,
                socket.SO_SNDTIMEO,
                struct.pack("ll", seconds, int((send_timeout - seconds) * 1e6)),
            )
        self._send_timeout = send_timeout
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = threading.Event()

    def send_frame(self, frame: bytes) -> None:
        if self._closed.is_set():
            raise ConnectionClosed("connection is closed")
        try:
            with self._send_lock:
                framing.send_frame(self._sock, frame)
        except (OSError, BrokenPipeError) as exc:
            self.close()
            if isinstance(exc, socket.timeout) or getattr(
                exc, "errno", None
            ) in (errno.EAGAIN, errno.EWOULDBLOCK):
                raise ConnectionClosed(
                    f"send timed out after {self._send_timeout}s "
                    "(peer not draining)"
                ) from exc
            raise ConnectionClosed(f"send failed: {exc}") from exc

    def recv_frame(self, timeout: Optional[float] = None) -> Optional[bytes]:
        if self._closed.is_set():
            raise ConnectionClosed("connection is closed")
        with self._recv_lock:
            try:
                self._sock.settimeout(timeout)
                frame = framing.recv_frame(self._sock)
            except socket.timeout:
                return None
            except (OSError, TransportError) as exc:
                self.close()
                raise ConnectionClosed(f"recv failed: {exc}") from exc
        if frame is None:
            self.close()
            raise ConnectionClosed("peer closed the connection")
        return frame

    def peer_closed(self) -> bool:
        if self._closed.is_set():
            return True
        if not self._recv_lock.acquire(blocking=False):
            return False  # a receive is in flight: the pipe is in use
        try:
            # Probe readability with select instead of toggling the socket
            # non-blocking: blocking mode is per-socket, and a concurrent
            # send_frame (guarded only by _send_lock) caught inside the
            # toggle window would hit a spurious EAGAIN mid-sendall and be
            # misclassified as a stalled peer.
            try:
                readable, _, _ = select.select([self._sock], [], [], 0)
            except (OSError, ValueError):
                return True  # fd closed under us
            if not readable:
                return False  # nothing pending: still open
            try:
                # Readability is already established, so the peek returns
                # immediately regardless of the socket's timeout setting.
                data = self._sock.recv(1, socket.MSG_PEEK)
            except (BlockingIOError, InterruptedError, socket.timeout):
                return False
            except OSError:
                return True
            return data == b""  # EOF peeked, buffered frames not consumed
        finally:
            self._recv_lock.release()

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class TcpListener(Listener):
    """Accept endpoint bound to an ephemeral localhost port."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        send_timeout: Optional[float] = DEFAULT_SEND_TIMEOUT,
    ):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, 0))
        self._sock.listen(64)
        self._address = self._sock.getsockname()
        self._send_timeout = send_timeout
        self._closed = threading.Event()

    @property
    def address(self) -> Tuple:
        return ("tcp",) + self._address

    def accept(self, timeout: Optional[float] = None) -> Optional[Connection]:
        if self._closed.is_set():
            return None
        try:
            self._sock.settimeout(timeout)
            client, _ = self._sock.accept()
        except socket.timeout:
            return None
        except OSError:
            return None  # listener closed concurrently
        return TcpConnection(client, send_timeout=self._send_timeout)

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            self._sock.close()


class TcpTransport(Transport):
    """Factory for TCP listeners/connections on a single host."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        connect_timeout: float = 5.0,
        send_timeout: Optional[float] = DEFAULT_SEND_TIMEOUT,
    ):
        self.host = host
        self.connect_timeout = connect_timeout
        self.send_timeout = send_timeout

    def listen(self) -> Listener:
        return TcpListener(self.host, send_timeout=self.send_timeout)

    def connect(self, address: Tuple) -> Connection:
        if not (isinstance(address, tuple) and len(address) == 3 and address[0] == "tcp"):
            raise TransportError(f"not a tcp address: {address!r}")
        _, host, port = address
        try:
            sock = socket.create_connection((host, port), timeout=self.connect_timeout)
        except OSError as exc:
            raise TransportError(f"connect to {host}:{port} failed: {exc}") from exc
        sock.settimeout(None)
        return TcpConnection(sock, send_timeout=self.send_timeout)
