"""TCP transport on localhost with TCPROS-style 4-byte length framing.

This is the transport the paper's prototype uses ("ROS uses TCP/IP socket
for data transmission from publisher to subscriber, whether or not they are
on the same machine").  The latency and CPU benchmarks run over it so that
ADLP's extra round trip crosses a real socket.
"""

from __future__ import annotations

import socket
import threading
from typing import Optional, Tuple

from repro.errors import TransportError
from repro.middleware.transport import framing
from repro.middleware.transport.base import (
    Connection,
    ConnectionClosed,
    Listener,
    Transport,
)


class TcpConnection(Connection):
    """A framed, bidirectional TCP connection.

    Send and receive each have their own lock so a link worker can block in
    ``recv_frame`` (waiting for an ADLP ACK) while no sender interferes with
    partially written frames.
    """

    def __init__(self, sock: socket.socket):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._closed = threading.Event()

    def send_frame(self, frame: bytes) -> None:
        if self._closed.is_set():
            raise ConnectionClosed("connection is closed")
        try:
            with self._send_lock:
                framing.send_frame(self._sock, frame)
        except (OSError, BrokenPipeError) as exc:
            self.close()
            raise ConnectionClosed(f"send failed: {exc}") from exc

    def recv_frame(self, timeout: Optional[float] = None) -> Optional[bytes]:
        if self._closed.is_set():
            raise ConnectionClosed("connection is closed")
        with self._recv_lock:
            try:
                self._sock.settimeout(timeout)
                frame = framing.recv_frame(self._sock)
            except socket.timeout:
                return None
            except (OSError, TransportError) as exc:
                self.close()
                raise ConnectionClosed(f"recv failed: {exc}") from exc
        if frame is None:
            self.close()
            raise ConnectionClosed("peer closed the connection")
        return frame

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    @property
    def closed(self) -> bool:
        return self._closed.is_set()


class TcpListener(Listener):
    """Accept endpoint bound to an ephemeral localhost port."""

    def __init__(self, host: str = "127.0.0.1"):
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, 0))
        self._sock.listen(64)
        self._address = self._sock.getsockname()
        self._closed = threading.Event()

    @property
    def address(self) -> Tuple:
        return ("tcp",) + self._address

    def accept(self, timeout: Optional[float] = None) -> Optional[Connection]:
        if self._closed.is_set():
            return None
        try:
            self._sock.settimeout(timeout)
            client, _ = self._sock.accept()
        except socket.timeout:
            return None
        except OSError:
            return None  # listener closed concurrently
        return TcpConnection(client)

    def close(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            self._sock.close()


class TcpTransport(Transport):
    """Factory for TCP listeners/connections on a single host."""

    def __init__(self, host: str = "127.0.0.1", connect_timeout: float = 5.0):
        self.host = host
        self.connect_timeout = connect_timeout

    def listen(self) -> Listener:
        return TcpListener(self.host)

    def connect(self, address: Tuple) -> Connection:
        if not (isinstance(address, tuple) and len(address) == 3 and address[0] == "tcp"):
            raise TransportError(f"not a tcp address: {address!r}")
        _, host, port = address
        try:
            sock = socket.create_connection((host, port), timeout=self.connect_timeout)
        except OSError as exc:
            raise TransportError(f"connect to {host}:{port} failed: {exc}") from exc
        sock.settimeout(None)
        return TcpConnection(sock)
