"""4-byte length-preamble framing over stream sockets.

ROS's TCPROS prefixes every message with a 4-byte little-endian length; the
paper's Table III accounts for exactly this preamble ("a 4-byte length
preamble attached by the ROS transport layer").  These helpers implement the
same framing for our TCP transport.
"""

from __future__ import annotations

import socket
import struct
from typing import Optional

from repro.errors import TransportError

#: Size of the length preamble in bytes (matches TCPROS).
PREAMBLE_SIZE = 4

#: Upper bound on a single frame; generous for ~1 MB camera frames.
MAX_FRAME_SIZE = 64 * 1024 * 1024

_LEN_STRUCT = struct.Struct("<I")


def frame_overhead() -> int:
    """Per-frame byte overhead added by the framing layer."""
    return PREAMBLE_SIZE


def encode_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its 4-byte little-endian length."""
    if len(payload) > MAX_FRAME_SIZE:
        raise TransportError(f"frame of {len(payload)} bytes exceeds maximum")
    return _LEN_STRUCT.pack(len(payload)) + payload


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one framed payload over a connected socket."""
    sock.sendall(encode_frame(payload))


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; ``None`` if the peer closed first.

    Raises ``socket.timeout`` if the socket has a timeout and it expires.
    """
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise TransportError("connection closed mid-frame")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[bytes]:
    """Receive one framed payload; ``None`` on orderly peer close."""
    preamble = _recv_exact(sock, PREAMBLE_SIZE)
    if preamble is None:
        return None
    (length,) = _LEN_STRUCT.unpack(preamble)
    if length > MAX_FRAME_SIZE:
        raise TransportError(f"peer announced oversized frame ({length} bytes)")
    if length == 0:
        return b""
    payload = _recv_exact(sock, length)
    if payload is None:
        raise TransportError("connection closed mid-frame")
    return payload
