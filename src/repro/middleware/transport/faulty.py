"""Fault-injection ("chaos") transport wrapper.

The paper's guarantees (Lemmas 1-4, Theorems 1-2) are statements about what
an auditor can still prove when components -- or the network between them --
misbehave.  :class:`FaultyTransport` wraps any :class:`Transport` (inproc or
TCP) and injects *deterministic, seeded* faults on the send path of every
connection, so protocol and audit tests can reproduce network misbehavior
exactly:

- **drop** -- the frame never reaches the peer;
- **dup** -- the frame is delivered twice;
- **delay** -- the sender blocks ``delay_by`` seconds before the frame goes
  out (simulated latency);
- **reorder** -- the frame is held back and released after the *next* frame
  (adjacent swap);
- **truncate** -- only the first half of the frame is delivered (the framing
  layer still delivers it as one frame; the payload inside is corrupt);
- **disconnect** -- the connection is closed mid-stream.

Faults are decided per frame by a per-connection PRNG derived from the
schedule's seed, the connection's side (``"accept"`` vs ``"connect"``), and
a per-side connection counter -- the same schedule over the same frame
sequence always yields the same faults.  One-shot faults can additionally be
scripted at exact frame indices (:meth:`FaultSchedule.script`), or from an
index onward (:meth:`FaultSchedule.script_range`, e.g. "drop every ACK after
the handshake").

A schedule with all probabilities zero and no scripted faults is
byte-for-byte transparent.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.middleware.transport.base import (
    Connection,
    ConnectionClosed,
    Listener,
    Transport,
)
from repro.middleware.transport.inproc import InprocTransport

#: Recognized fault kinds, in the order they are evaluated per frame.
FAULT_KINDS = ("disconnect", "drop", "truncate", "reorder", "dup", "delay")

#: Sides a connection can belong to (who created the endpoint).
SIDES = ("accept", "connect")


@dataclass(frozen=True)
class FaultProfile:
    """Per-direction fault probabilities (each in ``[0, 1]``)."""

    drop: float = 0.0
    dup: float = 0.0
    delay: float = 0.0
    reorder: float = 0.0
    truncate: float = 0.0
    disconnect: float = 0.0
    #: Seconds a delayed frame is held before sending.
    delay_by: float = 0.005

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            p = getattr(self, kind)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{kind} probability must be in [0, 1], got {p}")
        if self.delay_by < 0:
            raise ValueError("delay_by must be non-negative")

    @property
    def is_transparent(self) -> bool:
        return all(getattr(self, kind) == 0.0 for kind in FAULT_KINDS)


@dataclass
class FaultStats:
    """Counts of faults actually injected (across all connections)."""

    sent: int = 0  # frames offered to the fault layer
    drops: int = 0
    dups: int = 0
    delays: int = 0
    reorders: int = 0
    truncations: int = 0
    disconnects: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    _FIELD = {
        "drop": "drops",
        "dup": "dups",
        "delay": "delays",
        "reorder": "reorders",
        "truncate": "truncations",
        "disconnect": "disconnects",
    }

    def bump(self, kind: str) -> None:
        name = self._FIELD[kind]
        with self._lock:
            setattr(self, name, getattr(self, name) + 1)

    def bump_sent(self) -> None:
        with self._lock:
            self.sent += 1

    def total_faults(self) -> int:
        with self._lock:
            return (
                self.drops
                + self.dups
                + self.delays
                + self.reorders
                + self.truncations
                + self.disconnects
            )


class FaultSchedule:
    """Deterministic fault decisions for every connection of a transport.

    :param seed: root seed; all per-connection PRNG streams derive from it.
    :param accept_side: profile applied to frames sent by *accepted*
        endpoints (under the middleware's topology: publisher -> subscriber
        data frames, since the publisher listens).
    :param connect_side: profile applied to frames sent by *connecting*
        endpoints (subscriber -> publisher ACK frames).
    """

    def __init__(
        self,
        seed: int = 0,
        accept_side: Optional[FaultProfile] = None,
        connect_side: Optional[FaultProfile] = None,
    ):
        self.seed = seed
        self.accept_side = accept_side or FaultProfile()
        self.connect_side = connect_side or FaultProfile()
        # (side, conn_index, frame_index) -> kind
        self._scripted: Dict[Tuple[str, int, int], str] = {}
        # (side, conn_index) -> list of (start_index, kind)
        self._ranges: Dict[Tuple[str, int], List[Tuple[int, str]]] = {}
        self._lock = threading.Lock()

    @classmethod
    def symmetric(cls, profile: FaultProfile, seed: int = 0) -> "FaultSchedule":
        """Same profile in both directions."""
        return cls(seed=seed, accept_side=profile, connect_side=profile)

    # -- scripted one-shot faults ---------------------------------------

    def script(
        self, side: str, frame_index: int, kind: str, conn_index: int = 0
    ) -> "FaultSchedule":
        """Force ``kind`` on exactly one frame of one connection."""
        self._check(side, kind)
        with self._lock:
            self._scripted[(side, conn_index, frame_index)] = kind
        return self

    def script_range(
        self, side: str, start_index: int, kind: str, conn_index: int = 0
    ) -> "FaultSchedule":
        """Force ``kind`` on every frame from ``start_index`` onward."""
        self._check(side, kind)
        with self._lock:
            self._ranges.setdefault((side, conn_index), []).append(
                (start_index, kind)
            )
        return self

    @staticmethod
    def _check(side: str, kind: str) -> None:
        if side not in SIDES:
            raise ValueError(f"side must be one of {SIDES}, got {side!r}")
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")

    # -- per-connection decision streams --------------------------------

    def profile_for(self, side: str) -> FaultProfile:
        return self.accept_side if side == "accept" else self.connect_side

    def rng_for(self, side: str, conn_index: int) -> random.Random:
        """A fresh, deterministic PRNG for one connection endpoint."""
        return random.Random(f"{self.seed}/{side}/{conn_index}")

    def scripted_fault(
        self, side: str, conn_index: int, frame_index: int
    ) -> Optional[str]:
        with self._lock:
            kind = self._scripted.get((side, conn_index, frame_index))
            if kind is not None:
                return kind
            for start, range_kind in self._ranges.get((side, conn_index), ()):
                if frame_index >= start:
                    return range_kind
        return None


class FaultyConnection(Connection):
    """Wraps a connection endpoint, injecting faults on its outbound frames.

    ``applied`` records every injected fault as ``(frame_index, kind)`` --
    the object determinism tests compare across runs.
    """

    def __init__(
        self,
        inner: Connection,
        schedule: FaultSchedule,
        side: str,
        conn_index: int,
        stats: FaultStats,
    ):
        self._inner = inner
        self._schedule = schedule
        self._side = side
        self._conn_index = conn_index
        self._profile = schedule.profile_for(side)
        self._rng = schedule.rng_for(side, conn_index)
        self._stats = stats
        self._send_index = 0
        self._held: Optional[bytes] = None  # reordered frame awaiting release
        self._fault_lock = threading.Lock()
        self.applied: List[Tuple[int, str]] = []

    @property
    def side(self) -> str:
        return self._side

    @property
    def conn_index(self) -> int:
        return self._conn_index

    def _plan(self, index: int) -> List[str]:
        scripted = self._schedule.scripted_fault(self._side, self._conn_index, index)
        if scripted is not None:
            return [scripted]
        profile = self._profile
        if profile.is_transparent:
            return []
        faults = []
        # One PRNG draw per configured fault kind, in fixed order -- the
        # decision sequence depends only on (seed, side, conn_index) and the
        # order frames are offered to this endpoint.
        for kind in FAULT_KINDS:
            p = getattr(profile, kind)
            if p and self._rng.random() < p:
                faults.append(kind)
        return faults

    def _release_held(self) -> None:
        if self._held is not None:
            held, self._held = self._held, None
            self._inner.send_frame(held)

    def send_frame(self, frame: bytes) -> None:
        with self._fault_lock:
            index = self._send_index
            self._send_index += 1
            self._stats.bump_sent()
            faults = self._plan(index)
            for kind in faults:
                self.applied.append((index, kind))
                self._stats.bump(kind)
            if "disconnect" in faults:
                self._held = None
                self._inner.close()
                raise ConnectionClosed(
                    f"fault injection: disconnect at frame {index}"
                )
            if "drop" in faults:
                # the dropped frame still advances the line; release any
                # held (reordered) frame so it is not stuck forever
                self._release_held()
                return
            if "truncate" in faults:
                frame = bytes(frame[: len(frame) // 2])
            if "delay" in faults:
                time.sleep(self._profile.delay_by)
            if "reorder" in faults and self._held is None:
                self._held = bytes(frame)
                return
            self._inner.send_frame(frame)
            if "dup" in faults:
                self._inner.send_frame(frame)
            self._release_held()

    def recv_frame(self, timeout: Optional[float] = None) -> Optional[bytes]:
        return self._inner.recv_frame(timeout=timeout)

    def close(self) -> None:
        with self._fault_lock:
            self._held = None
        self._inner.close()

    @property
    def closed(self) -> bool:
        return self._inner.closed


class FaultyListener(Listener):
    """Wraps a listener; accepted connections get ``accept``-side faults."""

    def __init__(self, inner: Listener, transport: "FaultyTransport"):
        self._inner = inner
        self._transport = transport

    @property
    def address(self) -> Tuple:
        return self._inner.address

    def accept(self, timeout: Optional[float] = None) -> Optional[Connection]:
        connection = self._inner.accept(timeout=timeout)
        if connection is None:
            return None
        return self._transport._wrap(connection, "accept")

    def close(self) -> None:
        self._inner.close()


class FaultyTransport(Transport):
    """A transport decorator injecting scheduled faults on every connection.

    Either pass a full :class:`FaultSchedule`, or use the shorthand keyword
    probabilities (applied symmetrically to both directions)::

        FaultyTransport(TcpTransport(), drop=0.2, dup=0.1, seed=42)

    With no arguments it wraps a fresh :class:`InprocTransport` and injects
    nothing.
    """

    def __init__(
        self,
        inner: Optional[Transport] = None,
        schedule: Optional[FaultSchedule] = None,
        *,
        seed: int = 0,
        drop: float = 0.0,
        dup: float = 0.0,
        delay: float = 0.0,
        reorder: float = 0.0,
        truncate: float = 0.0,
        disconnect: float = 0.0,
        delay_by: float = 0.005,
    ):
        self.inner = inner if inner is not None else InprocTransport()
        if schedule is None:
            profile = FaultProfile(
                drop=drop,
                dup=dup,
                delay=delay,
                reorder=reorder,
                truncate=truncate,
                disconnect=disconnect,
                delay_by=delay_by,
            )
            schedule = FaultSchedule.symmetric(profile, seed=seed)
        self.schedule = schedule
        self.stats = FaultStats()
        self._counters = {"accept": 0, "connect": 0}
        self._lock = threading.Lock()
        self.connections: List[FaultyConnection] = []

    def _wrap(self, connection: Connection, side: str) -> FaultyConnection:
        with self._lock:
            index = self._counters[side]
            self._counters[side] = index + 1
        wrapped = FaultyConnection(connection, self.schedule, side, index, self.stats)
        with self._lock:
            self.connections.append(wrapped)
        return wrapped

    def listen(self) -> Listener:
        return FaultyListener(self.inner.listen(), self)

    def connect(self, address: Tuple) -> Connection:
        return self._wrap(self.inner.connect(address), "connect")
