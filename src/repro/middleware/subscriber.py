"""Topic subscriber.

A subscriber maintains (at most) one connection to the topic's publisher.
Its receive thread pulls frames off the connection, runs them through the
node's transport protocol -- which under ADLP verifies structure, sends the
signed acknowledgement, and queues a log entry -- then decodes the payload
and invokes the application callback.  As in rospy, the callback runs on the
connection thread.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Type

from repro.errors import DecodingError
from repro.middleware import handshake
from repro.middleware.master import PublisherInfo
from repro.middleware.messages import MessageMeta
from repro.middleware.names import validate_name
from repro.middleware.transport.base import Connection, ConnectionClosed
from repro.util.concurrency import StoppableThread, wait_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.middleware.node import Node

#: Delay before re-attempting a failed publisher connection.  Grows
#: exponentially (doubling, capped) while attempts keep failing, and resets
#: once a connection succeeds.
_RECONNECT_DELAY = 0.05
_MAX_RECONNECT_DELAY = 2.0


@dataclass
class SubscriberStats:
    """Counters exposed for tests and the benchmark harness."""

    received: int = 0
    received_bytes: int = 0
    decode_errors: int = 0
    callback_errors: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)


class Subscriber:
    """A subscription to one typed topic.

    Created via :meth:`repro.middleware.node.Node.subscribe`.
    """

    def __init__(
        self,
        node: "Node",
        topic: str,
        msg_class: Type[MessageMeta],
        callback: Callable[[MessageMeta], None],
    ):
        self.topic = validate_name(topic, "topic")
        self.msg_class = msg_class
        self.type_name = msg_class.TYPE_NAME
        self.callback = callback
        self.stats = SubscriberStats()
        self._node = node
        self._closed = threading.Event()
        self._pub_info: Optional[PublisherInfo] = None
        self._pub_available = threading.Event()
        self._info_lock = threading.Lock()
        self._connected = threading.Event()

        self._protocol = node.protocol.subscriber_protocol(self.topic, self.type_name)
        current = node.master.register_subscriber(
            node.name, self.topic, self.type_name, self._on_publisher
        )
        if current is not None:
            self._on_publisher(current)
        self._worker = StoppableThread(
            name=f"sub-{self.topic}-{node.name}", target=self._run
        )
        self._worker.start()

    def _on_publisher(self, info: PublisherInfo) -> None:
        """Master callback: a publisher is (newly) available."""
        with self._info_lock:
            self._pub_info = info
        self._pub_available.set()

    # -- receive loop ------------------------------------------------------

    def _run(self) -> None:
        delay = _RECONNECT_DELAY
        while not self._worker.stopped():
            if not self._pub_available.wait(timeout=0.1):
                continue
            with self._info_lock:
                info = self._pub_info
            if info is None:
                self._pub_available.clear()
                continue
            connection = self._connect(info)
            if connection is None:
                time.sleep(delay)
                delay = min(delay * 2, _MAX_RECONNECT_DELAY)
                continue
            delay = _RECONNECT_DELAY
            try:
                self._receive_loop(info, connection)
            finally:
                self._connected.clear()
                connection.close()

    def _connect(self, info: PublisherInfo) -> Optional[Connection]:
        try:
            connection = self._node.master.transport.connect(info.address)
        except Exception:
            return None
        try:
            peer = handshake.client_handshake(
                connection, self._node.name, self.topic, self.type_name
            )
            if peer is None:
                connection.close()
                return None
        except Exception:
            connection.close()
            return None
        self._connected.set()
        return connection

    def _receive_loop(self, info: PublisherInfo, connection: Connection) -> None:
        while not self._worker.stopped():
            try:
                frame = connection.recv_frame(timeout=0.1)
            except ConnectionClosed:
                return
            if frame is None:
                continue
            payload = self._protocol.on_frame(info.node_id, connection, frame)
            if payload is None:
                continue
            try:
                msg = self.msg_class.decode(payload)
            except DecodingError:
                with self.stats._lock:
                    self.stats.decode_errors += 1
                continue
            with self.stats._lock:
                self.stats.received += 1
                self.stats.received_bytes += len(payload)
            try:
                self.callback(msg)
            except Exception:
                with self.stats._lock:
                    self.stats.callback_errors += 1

    # -- lifecycle ---------------------------------------------------------

    @property
    def connected(self) -> bool:
        """Whether a live connection to the publisher exists."""
        return self._connected.is_set()

    def wait_for_connection(self, timeout: float = 5.0) -> bool:
        """Block until connected to the publisher."""
        return wait_for(lambda: self.connected, timeout=timeout)

    def wait_for_messages(self, count: int = 1, timeout: float = 5.0) -> bool:
        """Block until at least ``count`` messages have been delivered."""
        return wait_for(lambda: self.stats.received >= count, timeout=timeout)

    def close(self) -> None:
        """Unregister and stop the receive thread."""
        if self._closed.is_set():
            return
        self._closed.set()
        self._node.master.unregister_subscriber(self._node.name, self.topic)
        self._worker.stop()
        self._protocol.close()
