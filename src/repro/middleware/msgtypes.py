"""Standard message types.

These mirror the topics of the paper's self-driving application
(Figure 11(b)) and the three representative data sizes of its evaluation
(Table I): Steering (~20 B), LaserScan (~8.7 KB), Image (~921 KB).
"""

from __future__ import annotations

from repro.middleware.messages import MessageMeta, register_message
from repro.serialization import (
    boolean,
    bytes_,
    double,
    repeated,
    sint64,
    string,
    uint64,
)


@register_message
class RawBytes(MessageMeta):
    """Opaque byte payload; used by synthetic-workload benchmarks."""

    TYPE_NAME = "std/RawBytes"

    data = bytes_(2)


@register_message
class StringMsg(MessageMeta):
    """A plain string, like ``std_msgs/String``."""

    TYPE_NAME = "std/String"

    data = string(2)


@register_message
class Float64(MessageMeta):
    """A single float, like ``std_msgs/Float64``."""

    TYPE_NAME = "std/Float64"

    data = double(2)


@register_message
class Image(MessageMeta):
    """An uncompressed camera frame, like ``sensor_msgs/Image``.

    A 640x480 RGB frame gives ``len(data) == 921600``, close to the paper's
    921641-byte Image payload.
    """

    TYPE_NAME = "sensors/Image"

    height = uint64(2)
    width = uint64(3)
    encoding = string(4)
    step = uint64(5)
    data = bytes_(6)


@register_message
class LaserScan(MessageMeta):
    """A planar LIDAR sweep, like ``sensor_msgs/LaserScan``.

    With 1080 beams the encoded size lands near the paper's 8705-byte Scan
    payload.
    """

    TYPE_NAME = "sensors/LaserScan"

    angle_min = double(2)
    angle_max = double(3)
    angle_increment = double(4)
    range_min = double(5)
    range_max = double(6)
    ranges = bytes_(7)  # packed little-endian float32 ranges
    intensities = bytes_(8)  # packed little-endian float32 intensities


@register_message
class Steering(MessageMeta):
    """A steering command; ~20 bytes on the wire like the paper's Steering."""

    TYPE_NAME = "control/Steering"

    angle = double(2)
    speed = double(3)


@register_message
class LaneOffset(MessageMeta):
    """Output of the lane detector: lateral offset and heading error."""

    TYPE_NAME = "perception/LaneOffset"

    offset_m = double(2)
    heading_error_rad = double(3)
    confidence = double(4)


@register_message
class TrafficSign(MessageMeta):
    """Output of the traffic-sign recognizer."""

    TYPE_NAME = "perception/TrafficSign"

    sign = string(2)  # "", "stop", "speed_25", ...
    confidence = double(3)
    distance_m = double(4)


@register_message
class ObstacleArray(MessageMeta):
    """Output of the LIDAR obstacle detector: flattened (angle, distance)."""

    TYPE_NAME = "perception/ObstacleArray"

    angles_rad = repeated(double(2))
    distances_m = repeated(double(3))


@register_message
class PlannedPath(MessageMeta):
    """Output of the planner: target curvature and speed with a reason."""

    TYPE_NAME = "planning/PlannedPath"

    curvature = double(2)
    target_speed = double(3)
    braking = boolean(4)
    reason = string(5)


@register_message
class VehicleState(MessageMeta):
    """Simulated vehicle odometry (pose and speed on the track)."""

    TYPE_NAME = "vehicle/State"

    x = double(2)
    y = double(3)
    heading_rad = double(4)
    speed = double(5)
    lap = sint64(6)
