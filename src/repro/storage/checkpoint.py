"""Atomically committed recovery checkpoints.

A checkpoint snapshots the trusted logger's derived state at entry count
``n``: the hash-chain head, the Merkle frontier (O(log n) peaks, see
:class:`repro.crypto.merkle.MerkleFrontier`), byte totals, and an opaque
``extra`` dictionary the :class:`~repro.core.log_server.LogServer`
contributes (key registry, per-component counters).  Recovery then only
re-verifies the WAL *after* the last checkpoint; the prefix is vouched for
by the checkpointed chain head.

Commit protocol (the textbook atomic-publish dance):

1. serialize to ``checkpoint-<n>.ckpt.tmp`` (crashpoint
   ``checkpoint.partial`` fires mid-write);
2. flush + fsync the temp file (crashpoint ``checkpoint.pre_rename``);
3. ``os.replace`` to the final name, then fsync the directory.

A crash at any point leaves either the previous checkpoint set intact or
the new file fully committed -- loaders ignore ``.tmp`` litter and any
file whose CRC does not validate (a *recovery* concession; the strict
:meth:`CheckpointManager.load_all_strict` used by tamper verification
raises on exactly those files).

File format: magic, uint32 body length, JSON body (sorted keys, binary
fields hex-encoded), uint32 CRC over magic+length+body.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.crypto.merkle import MerkleFrontier
from repro.errors import LogIntegrityError
from repro.storage.crashpoints import crashpoint

_MAGIC = b"ADLPCKP1"
_LEN = struct.Struct("<I")
_CRC = struct.Struct("<I")

_PREFIX = "checkpoint-"
_SUFFIX = ".ckpt"


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


@dataclass(frozen=True)
class Checkpoint:
    """A snapshot of logger state at :attr:`entry_count` entries."""

    entry_count: int
    chain_head: bytes
    total_bytes: int
    frontier: MerkleFrontier
    extra: Dict[str, Any] = field(default_factory=dict)

    def encode(self) -> bytes:
        body = json.dumps(
            {
                "entry_count": self.entry_count,
                "chain_head": self.chain_head.hex(),
                "total_bytes": self.total_bytes,
                "frontier": self.frontier.to_bytes().hex(),
                "extra": self.extra,
            },
            sort_keys=True,
        ).encode("utf-8")
        framed = _MAGIC + _LEN.pack(len(body)) + body
        return framed + _CRC.pack(_crc(framed))

    @classmethod
    def decode(cls, blob: bytes) -> "Checkpoint":
        prefix = len(_MAGIC) + _LEN.size
        if len(blob) < prefix + _CRC.size or blob[: len(_MAGIC)] != _MAGIC:
            raise LogIntegrityError("not a checkpoint file")
        (length,) = _LEN.unpack(blob[len(_MAGIC) : prefix])
        framed, crc_raw = blob[: prefix + length], blob[prefix + length :]
        if len(framed) < prefix + length or len(crc_raw) < _CRC.size:
            raise LogIntegrityError("truncated checkpoint")
        if _CRC.unpack(crc_raw[: _CRC.size])[0] != _crc(framed):
            raise LogIntegrityError("checkpoint checksum mismatch")
        data = json.loads(framed[prefix:].decode("utf-8"))
        return cls(
            entry_count=int(data["entry_count"]),
            chain_head=bytes.fromhex(data["chain_head"]),
            total_bytes=int(data["total_bytes"]),
            frontier=MerkleFrontier.from_bytes(bytes.fromhex(data["frontier"])),
            extra=dict(data.get("extra", {})),
        )


class CheckpointManager:
    """Writes, prunes, and loads the checkpoint files of one store."""

    def __init__(self, directory: str, keep: int = 2):
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.directory = directory
        self.keep = keep
        os.makedirs(directory, exist_ok=True)

    def _path(self, entry_count: int) -> str:
        return os.path.join(self.directory, f"{_PREFIX}{entry_count:012d}{_SUFFIX}")

    def paths(self) -> List[Tuple[int, str]]:
        """Sorted ``(entry_count, path)`` of committed checkpoint files."""
        pairs = []
        for name in os.listdir(self.directory):
            if name.startswith(_PREFIX) and name.endswith(_SUFFIX):
                pairs.append(
                    (
                        int(name[len(_PREFIX) : -len(_SUFFIX)]),
                        os.path.join(self.directory, name),
                    )
                )
        pairs.sort()
        return pairs

    # -- writing ----------------------------------------------------------

    def write(self, checkpoint: Checkpoint) -> str:
        """Atomically commit ``checkpoint``; returns its path."""
        encoded = checkpoint.encode()
        final = self._path(checkpoint.entry_count)
        temp = final + ".tmp"
        with open(temp, "wb") as f:
            half = len(encoded) // 2
            f.write(encoded[:half])
            f.flush()
            crashpoint("checkpoint.partial")
            f.write(encoded[half:])
            f.flush()
            os.fsync(f.fileno())
        crashpoint("checkpoint.pre_rename")
        os.replace(temp, final)
        self._fsync_directory()
        self._prune()
        return final

    def _fsync_directory(self) -> None:
        fd = os.open(self.directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _prune(self) -> None:
        pairs = self.paths()
        for _, path in pairs[: -self.keep]:
            os.unlink(path)

    # -- loading ----------------------------------------------------------

    def load_latest(self) -> Optional[Checkpoint]:
        """The newest checkpoint that parses and CRC-validates.

        Crash-tolerant: ``.tmp`` litter is removed, corrupt files are
        skipped (recovery falls back to the next older checkpoint, or to a
        full-WAL replay when none survives).
        """
        for name in os.listdir(self.directory):
            if name.endswith(".tmp"):
                os.unlink(os.path.join(self.directory, name))
        for _, path in reversed(self.paths()):
            try:
                with open(path, "rb") as f:
                    return Checkpoint.decode(f.read())
            except (LogIntegrityError, ValueError, KeyError):
                continue
        return None

    def load_all_strict(self) -> List[Checkpoint]:
        """Every committed checkpoint, raising on any corrupt one.

        This is the tamper-check path: a *committed* (renamed) checkpoint
        was fsynced before the rename, so it can never be legitimately
        partial -- a CRC failure here is modification, not a crash.
        """
        checkpoints = []
        for _, path in self.paths():
            with open(path, "rb") as f:
                try:
                    checkpoints.append(Checkpoint.decode(f.read()))
                except (ValueError, KeyError) as exc:
                    raise LogIntegrityError(
                        f"unreadable checkpoint {os.path.basename(path)}: {exc}"
                    ) from exc
        return checkpoints
