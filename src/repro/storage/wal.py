"""Append-only write-ahead log with CRC-checksummed records.

On-disk layout: a directory of numbered segment files ::

    wal-00000001.seg
    wal-00000002.seg
    ...

Each segment starts with a 16-byte header (magic, segment index, CRC).
Each record is::

    uint32 length | uint8 type | payload (length bytes) | uint32 crc32

where the CRC covers the length, type, and payload bytes, so a corrupted
length prefix is detected just like corrupted payload bytes.  Record
*types* are opaque to the WAL; :mod:`repro.storage.durable_store` uses
them to distinguish chained log entries from key registrations.

Two read paths with deliberately different strictness:

- **Recovery** (:meth:`WriteAheadLog.__init__` replay) tolerates a *torn
  tail*: a short or CRC-invalid record in the **last** segment is treated
  as an interrupted write -- the segment is truncated at the record's
  start (never mid-record, never mid-log) and appending resumes from the
  clean tail.  Anything wrong in a sealed (non-last) segment is tampering
  and raises.
- **Verification** (:func:`scan` with ``strict=True``) tolerates nothing:
  any short read or CRC mismatch anywhere raises
  :class:`~repro.errors.LogIntegrityError`.  A store believed intact has
  no torn tail to excuse.

The fsync policy bounds what a crash can lose: ``always`` fsyncs every
record (lose nothing), ``interval`` fsyncs at most every
``fsync_interval`` seconds (lose a bounded suffix), ``never`` leaves
durability to the OS (lose the page cache).  Sealed segments are always
fsynced at rotation, so only the active segment is ever at risk.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import LogIntegrityError
from repro.storage.crashpoints import crashpoint

_MAGIC = b"ADLPWAL1"
_SEG_INDEX = struct.Struct("<I")
_REC_HEAD = struct.Struct("<IB")  # payload length, record type
_CRC = struct.Struct("<I")

#: Total bytes of a segment header: magic + index + crc.
SEGMENT_HEADER_SIZE = len(_MAGIC) + _SEG_INDEX.size + _CRC.size

#: Upper bound on a single record's payload (sanity check against reading
#: gigabytes because a corrupted length prefix says so).
MAX_RECORD_BYTES = 1 << 31

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".seg"


def _segment_name(index: int) -> str:
    return f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def _encode_header(index: int) -> bytes:
    body = _MAGIC + _SEG_INDEX.pack(index)
    return body + _CRC.pack(_crc(body))


def _encode_record(rtype: int, payload: bytes) -> bytes:
    head = _REC_HEAD.pack(len(payload), rtype)
    return head + payload + _CRC.pack(_crc(head + payload))


@dataclass(frozen=True)
class WalRecord:
    """One replayed record: its type byte, payload, and home segment."""

    rtype: int
    payload: bytes
    segment: int


@dataclass(frozen=True)
class FsyncPolicy:
    """When appended records are forced to stable storage.

    :attr:`mode` is ``"always"``, ``"interval"``, or ``"never"``;
    :attr:`interval` applies only to ``interval`` mode.
    """

    mode: str = "interval"
    interval: float = 0.05

    def __post_init__(self) -> None:
        if self.mode not in ("always", "interval", "never"):
            raise ValueError(f"unknown fsync mode {self.mode!r}")
        if self.interval <= 0:
            raise ValueError("fsync interval must be positive")

    @classmethod
    def of(cls, value) -> "FsyncPolicy":
        """Coerce a policy, mode string, or None into a policy."""
        if isinstance(value, FsyncPolicy):
            return value
        if value is None:
            return cls()
        return cls(mode=str(value))


class _TornTail(Exception):
    """Internal: scan hit an interrupted write at ``offset`` of a segment."""

    def __init__(self, offset: int, reason: str):
        super().__init__(reason)
        self.offset = offset
        self.reason = reason


def _scan_segment(path: str, expected_index: int) -> Iterator[WalRecord]:
    """Yield records of one segment; raise :class:`_TornTail` on a short or
    CRC-invalid read (the caller decides whether that is torn or tamper)."""
    with open(path, "rb") as f:
        header = f.read(SEGMENT_HEADER_SIZE)
        if len(header) < SEGMENT_HEADER_SIZE:
            raise _TornTail(0, "short segment header")
        body, crc_raw = header[: -_CRC.size], header[-_CRC.size :]
        if (
            body[: len(_MAGIC)] != _MAGIC
            or _CRC.unpack(crc_raw)[0] != _crc(body)
        ):
            raise _TornTail(0, "corrupt segment header")
        (seg_index,) = _SEG_INDEX.unpack(body[len(_MAGIC) :])
        if seg_index != expected_index:
            raise LogIntegrityError(
                f"segment {path} carries index {seg_index}, "
                f"expected {expected_index}"
            )
        offset = SEGMENT_HEADER_SIZE
        while True:
            head = f.read(_REC_HEAD.size)
            if not head:
                return
            if len(head) < _REC_HEAD.size:
                raise _TornTail(offset, "short record header")
            length, rtype = _REC_HEAD.unpack(head)
            if length > MAX_RECORD_BYTES:
                raise _TornTail(offset, "implausible record length")
            payload = f.read(length)
            crc_raw = f.read(_CRC.size)
            if len(payload) < length or len(crc_raw) < _CRC.size:
                raise _TornTail(offset, "short record body")
            if _CRC.unpack(crc_raw)[0] != _crc(head + payload):
                raise _TornTail(offset, "record checksum mismatch")
            yield WalRecord(rtype=rtype, payload=payload, segment=seg_index)
            offset += _REC_HEAD.size + length + _CRC.size


def segment_paths(directory: str) -> List[Tuple[int, str]]:
    """Sorted ``(index, path)`` pairs of the directory's segment files."""
    pairs = []
    for name in os.listdir(directory):
        if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX):
            raw = name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
            try:
                pairs.append((int(raw), os.path.join(directory, name)))
            except ValueError:
                raise LogIntegrityError(f"alien file in WAL directory: {name}")
    pairs.sort()
    for position, (index, _) in enumerate(pairs):
        if index != pairs[0][0] + position:
            raise LogIntegrityError(
                f"WAL segment sequence has a gap before index {index}"
            )
    return pairs


def scan(
    directory: str, strict: bool = True
) -> Tuple[List[WalRecord], int]:
    """Read every record in the WAL directory.

    Returns ``(records, torn_bytes)``.  With ``strict=True`` (the tamper
    check) any corruption raises :class:`LogIntegrityError` and
    ``torn_bytes`` is always 0; with ``strict=False`` a torn tail in the
    last segment is *reported* (records up to the tear, plus the count of
    unreadable tail bytes) but the files are not modified.
    """
    records: List[WalRecord] = []
    torn_bytes = 0
    pairs = segment_paths(directory)
    for position, (index, path) in enumerate(pairs):
        last = position == len(pairs) - 1
        try:
            for record in _scan_segment(path, index):
                records.append(record)
        except _TornTail as tear:
            if strict or not last:
                raise LogIntegrityError(
                    f"corrupt WAL record in {os.path.basename(path)} at "
                    f"offset {tear.offset}: {tear.reason}"
                ) from None
            torn_bytes = os.path.getsize(path) - tear.offset
    return records, torn_bytes


class WriteAheadLog:
    """The writable WAL: replay-on-open, append, rotate, fsync policy.

    Opening replays every existing record through ``replay_sink`` (in
    order), truncates a torn tail, then positions for appending.  The
    number of tail bytes discarded is exposed as :attr:`truncated_bytes`.
    """

    def __init__(
        self,
        directory: str,
        fsync: "FsyncPolicy | str | None" = None,
        segment_max_bytes: int = 4 * 1024 * 1024,
        replay_sink: Optional[Callable[[WalRecord], None]] = None,
    ):
        if segment_max_bytes < SEGMENT_HEADER_SIZE + _REC_HEAD.size:
            raise ValueError("segment_max_bytes is implausibly small")
        self.directory = directory
        self.fsync_policy = FsyncPolicy.of(fsync)
        self.segment_max_bytes = segment_max_bytes
        self.truncated_bytes = 0
        self._lock = threading.Lock()
        self._last_sync = time.monotonic()
        os.makedirs(directory, exist_ok=True)
        self._replay(replay_sink)

    # -- opening / replay -------------------------------------------------

    def _replay(self, sink: Optional[Callable[[WalRecord], None]]) -> None:
        pairs = segment_paths(self.directory)
        if not pairs:
            self._create_segment(1)
            return
        truncate_at: Optional[int] = None
        for position, (index, path) in enumerate(pairs):
            last = position == len(pairs) - 1
            try:
                for record in _scan_segment(path, index):
                    if sink is not None:
                        sink(record)
            except _TornTail as tear:
                if not last:
                    raise LogIntegrityError(
                        f"corrupt WAL record in sealed segment "
                        f"{os.path.basename(path)} at offset {tear.offset}: "
                        f"{tear.reason}"
                    ) from None
                truncate_at = tear.offset
        index, path = pairs[-1]
        if truncate_at is not None:
            size = os.path.getsize(path)
            self.truncated_bytes = size - truncate_at
            if truncate_at < SEGMENT_HEADER_SIZE:
                # Even the header is torn (crash during rotation): restart
                # the segment from scratch.
                with open(path, "wb") as f:
                    f.write(_encode_header(index))
                    f.flush()
                    os.fsync(f.fileno())
            else:
                with open(path, "r+b") as f:
                    f.truncate(truncate_at)
                    f.flush()
                    os.fsync(f.fileno())
        self._segment_index = index
        self._file = open(path, "ab")
        self._segment_bytes = os.path.getsize(path)

    def _create_segment(self, index: int) -> None:
        path = os.path.join(self.directory, _segment_name(index))
        self._file = open(path, "ab")
        self._file.write(_encode_header(index))
        self._file.flush()
        self._segment_index = index
        self._segment_bytes = SEGMENT_HEADER_SIZE

    # -- appending --------------------------------------------------------

    def append(self, rtype: int, payload: bytes) -> None:
        """Durably append one record (durability per the fsync policy)."""
        encoded = _encode_record(rtype, payload)
        with self._lock:
            # Write in two halves with an intervening flush so the
            # ``wal.mid_record`` crashpoint leaves a genuinely torn record
            # on disk rather than an empty Python buffer.
            half = len(encoded) // 2
            self._file.write(encoded[:half])
            self._file.flush()
            crashpoint("wal.mid_record")
            self._file.write(encoded[half:])
            self._file.flush()
            crashpoint("wal.pre_fsync")
            self._maybe_sync()
            self._segment_bytes += len(encoded)
            if self._segment_bytes >= self.segment_max_bytes:
                self._rotate()

    def append_many(self, items: Sequence[Tuple[int, bytes]]) -> None:
        """Durably append ``(rtype, payload)`` records as one group commit.

        The whole batch is written as one burst and synced **once** per the
        fsync policy (one fsync per batch under ``always``, instead of one
        per record) -- the group-commit coalescing that makes batched
        submission cheap.  A *process death* between two records of the
        batch leaves a clean prefix on disk: recovery replays the records
        written before the tear and truncates the rest, exactly like a
        torn single-record tail.

        An in-process failure (an I/O error surfacing mid-burst) instead
        truncates the segment back to the pre-batch offset before
        re-raising.  Unlike a torn half-record -- which the CRC makes
        invisible to recovery -- a *complete* prefix of an abandoned batch
        would replay as real entries, and the caller's per-entry fallback
        re-submission would then append non-chaining duplicates after it,
        wedging recovery permanently.  The live store and the segment must
        agree on the same prefix, so the leaked prefix has to go.
        """
        if not items:
            return
        with self._lock:
            start = self._file.tell()
            segment_bytes = self._segment_bytes
            try:
                written = 0
                for rtype, payload in items:
                    if written:
                        crashpoint("wal.batch_mid")
                    encoded = _encode_record(rtype, payload)
                    # Same two-halves discipline as ``append`` so the
                    # ``wal.mid_record`` crashpoint tears a batched record
                    # the way it tears a lone one.
                    half = len(encoded) // 2
                    self._file.write(encoded[:half])
                    self._file.flush()
                    crashpoint("wal.mid_record")
                    self._file.write(encoded[half:])
                    self._segment_bytes += len(encoded)
                    written += 1
                self._file.flush()
                crashpoint("wal.pre_fsync")
                self._maybe_sync()
            except BaseException:
                try:
                    self._file.flush()
                    self._file.truncate(start)
                    self._segment_bytes = segment_bytes
                except OSError:
                    pass  # the recovery scan will truncate the tail instead
                raise
            if self._segment_bytes >= self.segment_max_bytes:
                self._rotate()

    def _maybe_sync(self) -> None:
        policy = self.fsync_policy
        if policy.mode == "always":
            os.fsync(self._file.fileno())
            self._last_sync = time.monotonic()
        elif policy.mode == "interval":
            now = time.monotonic()
            if now - self._last_sync >= policy.interval:
                os.fsync(self._file.fileno())
                self._last_sync = now

    def _rotate(self) -> None:
        # A sealed segment is a durability boundary: it is always fsynced,
        # so torn tails can only ever exist in the active (last) segment.
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        crashpoint("wal.pre_rotate")
        self._create_segment(self._segment_index + 1)

    # -- maintenance ------------------------------------------------------

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        with self._lock:
            self._file.flush()
            os.fsync(self._file.fileno())
            self._last_sync = time.monotonic()

    def flush(self) -> None:
        """Push buffered bytes to the OS (readable by other handles)."""
        with self._lock:
            self._file.flush()

    @property
    def segment_index(self) -> int:
        """Index of the active segment."""
        with self._lock:
            return self._segment_index

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                os.fsync(self._file.fileno())
                self._file.close()

    def abandon(self) -> None:
        """Close without syncing -- test helper for simulated crashes, so a
        half-dead store object cannot later flush bytes into a directory a
        recovered store has already reopened."""
        with self._lock:
            if not self._file.closed:
                self._file.close()
