"""Persisted endpoint sequence counters.

ADLP's freshness argument keys on per-topic sequence numbers, but the
counters backing them live in process memory: a restarted *publisher*
restarts at ``seq = 1`` and re-uses numbers it already signed (every reuse
audits as an INVALID ``replayed_sequence``), and a restarted *subscriber*
forgets the highest ``seq`` it accepted, so a replayed old frame is
re-accepted and double-logged.  Either way a clean restart manufactures
false verdicts against faithful components.

:class:`SequenceStateFile` fixes both with a tiny append-only journal, one
per component::

    P\t<topic>\t<seq>\n            -- published <seq> on <topic>
    S\t<topic>\t<publisher>\t<seq>\n  -- accepted <seq> from <publisher>

Loading takes the per-key maximum (later lines win), ignores a torn last
line (crash mid-append), and compacts the journal back to one line per key
when it has grown past a threshold.  Appends are flushed but not fsynced:
the counters only ever need to survive a *process* death -- after a power
loss the whole endpoint state is gone anyway and a fresh key pair is the
correct response.

Names are validated middleware names (no whitespace), so the tab-separated
format is unambiguous.
"""

from __future__ import annotations

import os
import threading
from typing import Dict, Optional, Tuple

#: Journal lines beyond which loading rewrites the file compacted.
_COMPACT_THRESHOLD = 4096


class SequenceStateFile:
    """Durable per-component publish/receive sequence counters."""

    def __init__(self, path: str):
        self.path = path
        self._lock = threading.Lock()
        self._published: Dict[str, int] = {}
        self._received: Dict[Tuple[str, str], int] = {}
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        lines = self._load()
        self._file = open(path, "a", encoding="utf-8")
        if lines > _COMPACT_THRESHOLD:
            self._compact()

    def _load(self) -> int:
        if not os.path.exists(self.path):
            return 0
        lines = 0
        with open(self.path, "r", encoding="utf-8", errors="replace") as f:
            content = f.read()
        for line in content.split("\n")[:-1]:  # a torn tail has no final \n
            lines += 1
            fields = line.split("\t")
            try:
                if fields[0] == "P" and len(fields) == 3:
                    topic, seq = fields[1], int(fields[2])
                    if seq > self._published.get(topic, 0):
                        self._published[topic] = seq
                elif fields[0] == "S" and len(fields) == 4:
                    key = (fields[1], fields[2])
                    seq = int(fields[3])
                    if seq > self._received.get(key, 0):
                        self._received[key] = seq
                # anything else: a torn or alien line; counters only ever
                # grow, so skipping it is safe (worst case we under-resume,
                # never reuse)
            except ValueError:
                continue
        return lines

    def _compact(self) -> None:
        temp = self.path + ".tmp"
        with open(temp, "w", encoding="utf-8") as f:
            for topic, seq in sorted(self._published.items()):
                f.write(f"P\t{topic}\t{seq}\n")
            for (topic, publisher), seq in sorted(self._received.items()):
                f.write(f"S\t{topic}\t{publisher}\t{seq}\n")
            f.flush()
            os.fsync(f.fileno())
        self._file.close()
        os.replace(temp, self.path)
        self._file = open(self.path, "a", encoding="utf-8")

    # -- recording --------------------------------------------------------

    def record_published(self, topic: str, seq: int) -> None:
        """Journal that this component published ``seq`` on ``topic``."""
        with self._lock:
            if seq <= self._published.get(topic, 0):
                return
            self._published[topic] = seq
            self._file.write(f"P\t{topic}\t{seq}\n")
            self._file.flush()

    def record_received(self, topic: str, publisher: str, seq: int) -> None:
        """Journal the highest accepted ``seq`` from ``publisher``."""
        with self._lock:
            key = (topic, publisher)
            if seq <= self._received.get(key, 0):
                return
            self._received[key] = seq
            self._file.write(f"S\t{topic}\t{publisher}\t{seq}\n")
            self._file.flush()

    # -- querying ---------------------------------------------------------

    def last_published(self, topic: str) -> int:
        """Highest sequence number ever published on ``topic`` (0 if none)."""
        with self._lock:
            return self._published.get(topic, 0)

    def last_received(self, topic: str, publisher: Optional[str] = None) -> int:
        """Highest sequence number accepted on ``topic`` (0 if none).

        With ``publisher=None`` the maximum over all publishers is
        returned; the system model guarantees one publisher per topic, so
        this is the common lookup.
        """
        with self._lock:
            if publisher is not None:
                return self._received.get((topic, publisher), 0)
            return max(
                (
                    seq
                    for (t, _), seq in self._received.items()
                    if t == topic
                ),
                default=0,
            )

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()
