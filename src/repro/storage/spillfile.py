"""Disk overflow for the component-side evidence spill queue.

:class:`~repro.core.remote.RemoteLogger` parks entries it cannot deliver in
a bounded in-memory deque; before this module, overflowing that deque
silently discarded the *oldest* evidence.  :class:`DiskSpillFile` catches
the overflow instead: records are appended (length-prefixed and
CRC-checksummed, same discipline as the WAL) and consumed oldest-first once
the log server is reachable again, so a long outage costs disk space, not
evidence.

The file is strictly FIFO: a read offset chases the append offset, and the
file is truncated back to empty whenever the reader fully drains it.  The
read offset is persisted in a tiny sidecar file (``<path>.offset``) so a
restarted component resumes draining exactly where its predecessor stopped
-- re-sending already-delivered evidence would fabricate duplicate entries
and hand the auditor false ``replayed_sequence`` verdicts.  A torn tail
record (component crashed mid-spill) is truncated on open, exactly like a
WAL torn tail.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from typing import List, Optional

from repro.storage.crashpoints import crashpoint

_LEN = struct.Struct("<I")
_CRC = struct.Struct("<I")
_OFFSET = struct.Struct("<Q")


def _crc(data: bytes) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


class DiskSpillFile:
    """An append-only FIFO of byte records with crash-tolerant framing."""

    def __init__(self, path: str):
        self.path = path
        self.offset_path = path + ".offset"
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        #: start offsets of records not yet consumed, oldest first
        self._pending: List[int] = []
        self._scan_existing()
        self._file = open(path, "ab")

    def _load_offset(self) -> int:
        try:
            with open(self.offset_path, "rb") as f:
                raw = f.read(_OFFSET.size)
        except FileNotFoundError:
            return 0
        if len(raw) < _OFFSET.size:
            return 0  # torn offset write: worst case we re-scan from 0
        return _OFFSET.unpack(raw)[0]

    def _store_offset(self, offset: int) -> None:
        with open(self.offset_path, "wb") as f:
            f.write(_OFFSET.pack(offset))
            f.flush()

    def _scan_existing(self) -> None:
        if not os.path.exists(self.path):
            self._store_offset(0)
            return
        consumed = min(self._load_offset(), os.path.getsize(self.path))
        pending, good_end = self._scan_from(consumed)
        if not pending and consumed > 0 and os.path.getsize(self.path) > 0:
            # The sidecar offset is bogus: either it did not land on a
            # record boundary (a torn or stale offset write tripped the
            # scan's first CRC check), or it claims everything up to EOF
            # was consumed -- impossible for a non-empty file, because a
            # legitimate full drain truncates the file to zero.  Trusting
            # it would discard every record after the bogus offset --
            # spilled evidence lost to a bookkeeping file.  Rescan from 0
            # instead: the worst case is re-sending already-delivered
            # records, which the auditor sees as duplicates (never as
            # loss).
            pending, good_end = self._scan_from(0)
            self._store_offset(0)
        if good_end < os.path.getsize(self.path):
            with open(self.path, "r+b") as f:
                f.truncate(good_end)
        self._pending = pending

    def _scan_from(self, start: int) -> "tuple[List[int], int]":
        """Walk records from ``start``; returns (record offsets, end of the
        last whole record) -- the tail past that end is torn."""
        good_end = start
        pending: List[int] = []
        with open(self.path, "rb") as f:
            f.seek(start)
            while True:
                offset = f.tell()
                head = f.read(_LEN.size)
                if not head:
                    break
                if len(head) < _LEN.size:
                    break  # torn tail
                (length,) = _LEN.unpack(head)
                payload = f.read(length)
                crc_raw = f.read(_CRC.size)
                if len(payload) < length or len(crc_raw) < _CRC.size:
                    break  # torn tail
                if _CRC.unpack(crc_raw)[0] != _crc(head + payload):
                    break  # torn tail
                pending.append(offset)
                good_end = f.tell()
        return pending, good_end

    def __len__(self) -> int:
        """Pending (unconsumed) records."""
        with self._lock:
            return len(self._pending)

    def append(self, record: bytes) -> None:
        """Park one record at the back of the FIFO."""
        head = _LEN.pack(len(record))
        encoded = head + record + _CRC.pack(_crc(head + record))
        with self._lock:
            offset = self._file.tell()
            half = len(encoded) // 2
            self._file.write(encoded[:half])
            self._file.flush()
            crashpoint("spill.mid_record")
            self._file.write(encoded[half:])
            self._file.flush()
            self._pending.append(offset)

    def append_many(self, records: List[bytes]) -> None:
        """Park a whole batch at the back of the FIFO under one lock
        acquisition and one flush -- the write-side analogue of
        :meth:`peek_many` (a shedding client parks batches, not single
        records)."""
        if not records:
            return
        with self._lock:
            for record in records:
                head = _LEN.pack(len(record))
                encoded = head + record + _CRC.pack(_crc(head + record))
                offset = self._file.tell()
                self._file.write(encoded)
                self._pending.append(offset)
            self._file.flush()

    def peek(self) -> Optional[bytes]:
        """The oldest pending record, without consuming it."""
        with self._lock:
            if not self._pending:
                return None
            self._file.flush()
            with open(self.path, "rb") as f:
                f.seek(self._pending[0])
                (length,) = _LEN.unpack(f.read(_LEN.size))
                return f.read(length)

    def peek_many(self, count: int) -> List[bytes]:
        """The oldest ``count`` pending records (fewer if the FIFO is
        shorter), without consuming them -- the read side of a batched
        spill drain."""
        with self._lock:
            if not self._pending or count < 1:
                return []
            self._file.flush()
            out: List[bytes] = []
            with open(self.path, "rb") as f:
                for offset in self._pending[:count]:
                    f.seek(offset)
                    (length,) = _LEN.unpack(f.read(_LEN.size))
                    out.append(f.read(length))
            return out

    def consume(self) -> None:
        """Drop the oldest pending record (it was delivered)."""
        self.consume_many(1)

    def consume_many(self, count: int) -> None:
        """Drop the oldest ``count`` pending records (they were delivered)."""
        with self._lock:
            if count < 1:
                return
            if count > len(self._pending):
                raise IndexError("spill file is empty")
            del self._pending[:count]
            if not self._pending:
                # Fully drained: reclaim the disk space.
                self._file.truncate(0)
                self._file.seek(0)
                self._store_offset(0)
            else:
                self._store_offset(self._pending[0])

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.flush()
                self._file.close()
