"""A crash-recoverable, tamper-evident log store.

:class:`DurableLogStore` implements the :class:`~repro.core.log_store.LogStore`
interface on top of the write-ahead log of :mod:`repro.storage.wal` and the
checkpoints of :mod:`repro.storage.checkpoint`.  Records are served from
memory (like :class:`~repro.core.log_store.InMemoryLogStore`) while every
append is durably journaled first, so a process crash at any instant
recovers to a consistent *prefix* of the accepted log:

- the WAL record of entry ``i`` carries its chain digest, so recovery
  rebuilds the identical hash chain and Merkle commitment a never-crashed
  run would have;
- a torn tail write is truncated at the first corrupt record of the active
  segment -- the affected entry is *absent*, never corrupt, and nothing
  before it is lost;
- the latest checkpoint bounds both recovery work (only the tail after the
  checkpoint is chain-re-verified on open) and silent truncation (a WAL
  shorter than its checkpoint is evidence loss and raises).

Key registrations are journaled as unchained KEY records so the trusted
logger's registry survives a restart without perturbing the hash chain or
the Merkle root (which, per the paper, commit to log *entries* only).

Recovery invariants (proved by ``tests/storage/test_crash_recovery.py``):
after reopening a crashed store, ``head()``, ``merkle_root()``/frontier,
entry count, and every stored record equal those of an uncrashed store fed
the same prefix of appends.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.log_store import LogStore
from repro.crypto.hashchain import GENESIS, HashChain, chain_digest
from repro.crypto.merkle import MerkleFrontier
from repro.errors import LogIntegrityError
from repro.storage.checkpoint import Checkpoint, CheckpointManager
from repro.storage.wal import FsyncPolicy, WalRecord, WriteAheadLog, scan

#: WAL record types used by this store.
REC_ENTRY = 1  # 32-byte chain digest || encoded log entry
REC_KEY = 2  # uint16 component-id length || id utf-8 || public key bytes

_DIGEST_SIZE = 32

WAL_SUBDIR = "wal"
CHECKPOINT_SUBDIR = "checkpoints"


@dataclass(frozen=True)
class RecoveryInfo:
    """What recovery found when the store was opened."""

    entries: int  #: total entries recovered
    checkpoint_entries: Optional[int]  #: entry count of the checkpoint used
    replayed: int  #: entries chain-re-verified after the checkpoint
    truncated_bytes: int  #: torn tail bytes discarded from the last segment
    extra: Dict[str, Any] = field(default_factory=dict)  #: checkpoint extra

    def summary(self) -> Dict[str, int]:
        """Flat integer counters for stats/observability surfaces (the
        shard worker reports these to its supervising parent, which is
        how a crash-restarted worker's recovery becomes visible without
        reading its log files)."""
        return {
            "recovered_entries": self.entries,
            "recovered_from_checkpoint": self.checkpoint_entries or 0,
            "recovered_replayed": self.replayed,
            "recovered_truncated_bytes": self.truncated_bytes,
        }


def _encode_key_record(component_id: str, key_bytes: bytes) -> bytes:
    raw_id = component_id.encode("utf-8")
    if len(raw_id) > 0xFFFF:
        raise ValueError("component id too long for a KEY record")
    return len(raw_id).to_bytes(2, "little") + raw_id + key_bytes


def _decode_key_record(payload: bytes) -> "tuple[str, bytes]":
    if len(payload) < 2:
        raise LogIntegrityError("malformed KEY record")
    id_len = int.from_bytes(payload[:2], "little")
    if len(payload) < 2 + id_len:
        raise LogIntegrityError("malformed KEY record")
    return payload[2 : 2 + id_len].decode("utf-8"), payload[2 + id_len :]


class DurableLogStore(LogStore):
    """Hash-chained records journaled through a WAL with checkpoints.

    :param path: store directory (created if missing) holding ``wal/`` and
        ``checkpoints/``.
    :param fsync: a :class:`~repro.storage.wal.FsyncPolicy` or one of the
        mode strings ``"always"`` / ``"interval"`` / ``"never"``.
    :param segment_max_bytes: WAL segment rotation threshold.
    :param checkpoint_every: automatic checkpoint cadence in appends
        (``0`` disables automatic checkpoints).
    :param keep_checkpoints: committed checkpoint files retained.

    The optional :attr:`checkpoint_extra_provider` callable (set by
    :class:`~repro.core.log_server.LogServer`) contributes server-side
    state -- key registry, per-component counters, Merkle frontier -- to
    every checkpoint, and gets it back through :attr:`recovery`.
    """

    def __init__(
        self,
        path: str,
        fsync: "FsyncPolicy | str | None" = None,
        segment_max_bytes: int = 4 * 1024 * 1024,
        checkpoint_every: int = 256,
        keep_checkpoints: int = 2,
    ):
        if checkpoint_every < 0:
            raise ValueError("checkpoint_every must be non-negative")
        self.path = path
        self._lock = threading.RLock()
        self._chain = HashChain()
        self._frontier = MerkleFrontier()
        self._bytes = 0
        self._keys: Dict[str, bytes] = {}
        self._checkpoint_every = checkpoint_every
        self._appends_since_checkpoint = 0
        self.checkpoint_extra_provider: Optional[Callable[[], Dict[str, Any]]] = None
        os.makedirs(path, exist_ok=True)
        self._checkpoints = CheckpointManager(
            os.path.join(path, CHECKPOINT_SUBDIR), keep=keep_checkpoints
        )
        self.recovery = self._recover(fsync, segment_max_bytes)

    # -- recovery ---------------------------------------------------------

    def _recover(self, fsync, segment_max_bytes) -> RecoveryInfo:
        checkpoint = self._checkpoints.load_latest()
        anchor = checkpoint.entry_count if checkpoint is not None else 0

        state = {"bytes": 0}

        def sink(record: WalRecord) -> None:
            if record.rtype == REC_KEY:
                component_id, key_bytes = _decode_key_record(record.payload)
                self._keys[component_id] = key_bytes
                return
            if record.rtype != REC_ENTRY:
                raise LogIntegrityError(
                    f"unknown WAL record type {record.rtype}"
                )
            if len(record.payload) < _DIGEST_SIZE:
                raise LogIntegrityError("ENTRY record shorter than its digest")
            digest = record.payload[:_DIGEST_SIZE]
            payload = record.payload[_DIGEST_SIZE:]
            index = len(self._chain)
            if index < anchor:
                # Pre-checkpoint prefix: adopt the stored digest; the
                # checkpoint head check below anchors the whole prefix.
                self._chain.adopt(payload, digest)
            else:
                expected = chain_digest(self._chain.head, payload)
                if digest != expected:
                    raise LogIntegrityError(
                        f"chain broken at recovered entry {index}"
                    )
                self._chain.append(payload)
            state["bytes"] += len(payload)

        wal = WriteAheadLog(
            os.path.join(self.path, WAL_SUBDIR),
            fsync=fsync,
            segment_max_bytes=segment_max_bytes,
            replay_sink=sink,
        )
        self._wal = wal
        self._bytes = state["bytes"]

        if checkpoint is not None:
            if len(self._chain) < anchor:
                raise LogIntegrityError(
                    f"WAL holds {len(self._chain)} entries but the last "
                    f"checkpoint covers {anchor}: the journal lost "
                    f"checkpointed evidence"
                )
            prefix_head = (
                self._chain[anchor - 1].digest if anchor else GENESIS
            )
            if prefix_head != checkpoint.chain_head:
                raise LogIntegrityError(
                    "recovered WAL prefix does not reach the checkpointed "
                    "chain head"
                )
            prefix_bytes = sum(
                len(entry.payload) for entry in list(self._chain)[:anchor]
            )
            if prefix_bytes != checkpoint.total_bytes:
                raise LogIntegrityError(
                    "recovered WAL prefix disagrees with the checkpointed "
                    "byte total"
                )
            # Continue the checkpointed frontier over the replayed tail.
            restored = checkpoint.frontier.copy()
            for entry in list(self._chain)[anchor:]:
                restored.append(entry.payload)
            self._frontier = restored
        else:
            self._frontier = MerkleFrontier.from_leaf_hashes(
                _leaf_hashes(self._chain.payloads())
            )

        if len(self._frontier) != len(self._chain):
            raise LogIntegrityError("frontier size disagrees with chain")
        return RecoveryInfo(
            entries=len(self._chain),
            checkpoint_entries=anchor if checkpoint is not None else None,
            replayed=len(self._chain) - anchor,
            truncated_bytes=wal.truncated_bytes,
            extra=dict(checkpoint.extra) if checkpoint is not None else {},
        )

    @property
    def recovered_keys(self) -> Dict[str, bytes]:
        """Key registrations replayed from KEY records (id -> key bytes)."""
        with self._lock:
            return dict(self._keys)

    # -- LogStore interface ----------------------------------------------

    def append(self, record: bytes) -> int:
        with self._lock:
            entry = self._chain.append(record)
            try:
                self._wal.append(REC_ENTRY, entry.digest + record)
            except BaseException:
                # Keep memory consistent with disk if the journal write
                # blew up under us (a crashpoint or a real I/O error).
                self._chain.truncate(entry.index)
                raise
            self._frontier.append(record)
            self._bytes += len(record)
            self._appends_since_checkpoint += 1
            if (
                self._checkpoint_every
                and self._appends_since_checkpoint >= self._checkpoint_every
            ):
                self.checkpoint()
            return entry.index

    def append_batch(self, records: List[bytes]) -> List[int]:
        """Group-commit ``records``: one WAL write burst, one fsync.

        The chain digests are computed exactly as ``append`` would, so the
        resulting chain head, frontier, and on-disk bytes are byte-identical
        to appending the records one at a time -- only the fsync count
        changes (one per batch under the ``always`` policy).  If the WAL
        burst fails partway, the in-memory chain is rolled back for the
        whole batch so the live store never claims more than one consistent
        prefix; a crash mid-burst recovers the records written before the
        tear, exactly like a torn per-entry tail.
        """
        if not records:
            return []
        with self._lock:
            base = len(self._chain)
            try:
                items = []
                for record in records:
                    entry = self._chain.append(record)
                    items.append((REC_ENTRY, entry.digest + record))
                self._wal.append_many(items)
            except BaseException:
                self._chain.truncate(base)
                raise
            for record in records:
                self._frontier.append(record)
                self._bytes += len(record)
            self._appends_since_checkpoint += len(records)
            if (
                self._checkpoint_every
                and self._appends_since_checkpoint >= self._checkpoint_every
            ):
                self.checkpoint()
            return list(range(base, base + len(records)))

    def records(self) -> List[bytes]:
        with self._lock:
            return self._chain.payloads()

    def __len__(self) -> int:
        with self._lock:
            return len(self._chain)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def head(self) -> bytes:
        with self._lock:
            return self._chain.head

    def merkle_root(self) -> bytes:
        """Root of the incremental frontier over all stored records."""
        with self._lock:
            return self._frontier.root()

    # -- key registry journaling ------------------------------------------

    def append_key(self, component_id: str, key_bytes: bytes) -> None:
        """Journal a key registration (idempotent per (id, key))."""
        with self._lock:
            if self._keys.get(component_id) == key_bytes:
                return
            self._wal.append(REC_KEY, _encode_key_record(component_id, key_bytes))
            self._keys[component_id] = key_bytes

    # -- checkpointing ----------------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Force a checkpoint now (also called by the append cadence).

        The WAL is fsynced first: a checkpoint must never be more durable
        than the records it covers, or recovery would report checkpointed
        evidence as lost.
        """
        with self._lock:
            self._wal.sync()
            extra: Dict[str, Any] = {}
            if self.checkpoint_extra_provider is not None:
                extra = dict(self.checkpoint_extra_provider())
            checkpoint = Checkpoint(
                entry_count=len(self._chain),
                chain_head=self._chain.head,
                total_bytes=self._bytes,
                frontier=self._frontier.copy(),
                extra=extra,
            )
            self._checkpoints.write(checkpoint)
            self._appends_since_checkpoint = 0
            return checkpoint

    @property
    def last_checkpoint_entries(self) -> Optional[int]:
        """Entry count of the newest committed checkpoint, if any."""
        pairs = self._checkpoints.paths()
        return pairs[-1][0] if pairs else None

    # -- integrity --------------------------------------------------------

    def verify(self) -> None:
        """Full tamper check against the *disk* state.

        Unlike recovery, nothing is excused: every record in every segment
        must CRC-validate, the recomputed chain must reproduce every stored
        digest and the in-memory head, and every committed checkpoint must
        match the chain and frontier at its entry count.
        """
        with self._lock:
            self._wal.flush()
            records, _ = scan(os.path.join(self.path, WAL_SUBDIR), strict=True)
            checkpoints = {
                c.entry_count: c for c in self._checkpoints.load_all_strict()
            }
            head = GENESIS
            frontier = MerkleFrontier()
            count = 0
            total = 0
            self._check_checkpoint(checkpoints.get(0), head, frontier, 0)
            for record in records:
                if record.rtype == REC_KEY:
                    continue
                if record.rtype != REC_ENTRY:
                    raise LogIntegrityError(
                        f"unknown WAL record type {record.rtype}"
                    )
                digest = record.payload[:_DIGEST_SIZE]
                payload = record.payload[_DIGEST_SIZE:]
                expected = chain_digest(head, payload)
                if digest != expected:
                    raise LogIntegrityError(f"chain broken at record {count}")
                head = expected
                frontier.append(payload)
                count += 1
                total += len(payload)
                self._check_checkpoint(
                    checkpoints.get(count), head, frontier, total
                )
            unseen = [n for n in checkpoints if n > count]
            if unseen:
                raise LogIntegrityError(
                    f"checkpoint at {min(unseen)} entries exceeds the "
                    f"{count} entries on disk"
                )
            if count != len(self._chain) or head != self._chain.head:
                raise LogIntegrityError(
                    "disk state disagrees with the live store"
                )

    @staticmethod
    def _check_checkpoint(
        checkpoint: Optional[Checkpoint],
        head: bytes,
        frontier: MerkleFrontier,
        total: int,
    ) -> None:
        if checkpoint is None:
            return
        if checkpoint.chain_head != head:
            raise LogIntegrityError(
                f"checkpoint at {checkpoint.entry_count} entries does not "
                f"match the recomputed chain head"
            )
        if checkpoint.frontier.root() != frontier.root():
            raise LogIntegrityError(
                f"checkpoint at {checkpoint.entry_count} entries does not "
                f"match the recomputed Merkle frontier"
            )
        if checkpoint.total_bytes != total:
            raise LogIntegrityError(
                f"checkpoint at {checkpoint.entry_count} entries disagrees "
                f"on byte totals"
            )

    # -- lifecycle --------------------------------------------------------

    def sync(self) -> None:
        """Force all appended records to stable storage now."""
        self._wal.sync()

    def close(self) -> None:
        with self._lock:
            self._wal.close()

    def abandon(self) -> None:
        """Drop file handles without flushing or syncing -- the test
        harness calls this after a :class:`SimulatedCrash` so the dead
        store object cannot interfere with the recovered one."""
        self._wal.abandon()


def _leaf_hashes(payloads: List[bytes]):
    from repro.crypto.merkle import leaf_hash

    for payload in payloads:
        yield leaf_hash(payload)
