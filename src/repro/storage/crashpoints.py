"""Named crash-injection points for the durability tests.

The storage layer calls :func:`crashpoint` at every place where a real
crash would leave distinguishable on-disk state (mid-record, pre-fsync,
between checkpoint temp-write and rename, ...).  Tests *arm* a point by
name and the next passage either raises :class:`SimulatedCrash` (in-process
tests) or hard-exits the interpreter without flushing buffers (subprocess
tests, the closest a cooperative process gets to SIGKILL).  Unarmed points
cost one dictionary lookup.

This mirrors PR 1's seeded fault schedules: crashes are deterministic,
nameable, and replayable, so every recovery test pins down exactly which
torn state it proves recoverable.

Subprocesses are armed through the environment::

    ADLP_CRASHPOINT=wal.mid_record          # exit on first passage
    ADLP_CRASHPOINT=wal.pre_fsync:7         # exit on the 7th passage

(environment arming always uses the ``exit`` action, since raising inside
an arbitrary child process would just produce a traceback).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

#: Exit status used by the ``exit`` action, chosen to mimic SIGKILL (137 =
#: 128 + 9) so harnesses treat a simulated crash like a real kill.
CRASH_EXIT_STATUS = 137

#: Every crashpoint the storage layer defines.  ``arm`` validates against
#: this set so a typo in a test fails loudly instead of never firing.
KNOWN_CRASHPOINTS: FrozenSet[str] = frozenset(
    {
        "wal.mid_record",  # half of a record's bytes written
        "wal.batch_mid",  # between two records of one group-commit batch
        "wal.pre_fsync",  # record fully written+flushed, not fsynced
        "wal.pre_rotate",  # old segment sealed, new segment not yet created
        "checkpoint.partial",  # temp checkpoint file half-written
        "checkpoint.pre_rename",  # temp file complete, rename not performed
        "spill.mid_record",  # half of a spill-file record written
    }
)


class SimulatedCrash(BaseException):
    """An injected crash.

    Derives from :class:`BaseException` so the blanket ``except Exception``
    handlers that keep the data plane alive (logging thread, endpoint
    serving loops) cannot absorb it -- exactly like a real crash, it takes
    the thread down.
    """


@dataclass
class _Arming:
    action: str  # "raise" | "exit"
    fire_on: int  # 1-based passage count that triggers the crash
    passages: int = 0


_armed: Dict[str, _Arming] = {}
_lock = threading.Lock()


def arm(name: str, action: str = "raise", fire_on: int = 1) -> None:
    """Arm crashpoint ``name`` to fire on its ``fire_on``-th passage.

    :param action: ``"raise"`` raises :class:`SimulatedCrash`; ``"exit"``
        calls :func:`os._exit` (no atexit, no buffer flush -- the
        in-process equivalent of SIGKILL).
    """
    if name not in KNOWN_CRASHPOINTS:
        raise ValueError(f"unknown crashpoint {name!r}")
    if action not in ("raise", "exit"):
        raise ValueError(f"unknown crashpoint action {action!r}")
    if fire_on < 1:
        raise ValueError("fire_on is 1-based and must be >= 1")
    with _lock:
        _armed[name] = _Arming(action=action, fire_on=fire_on)


def reset() -> None:
    """Disarm every crashpoint (tests call this in teardown)."""
    with _lock:
        _armed.clear()


def passages(name: str) -> int:
    """How often an armed crashpoint has been passed (0 if unarmed)."""
    with _lock:
        arming = _armed.get(name)
        return arming.passages if arming is not None else 0


def crashpoint(name: str) -> None:
    """Crash here if the point is armed and due; no-op otherwise."""
    with _lock:
        arming = _armed.get(name)
        if arming is None:
            return
        arming.passages += 1
        due = arming.passages == arming.fire_on
        action = arming.action
    if not due:
        return
    if action == "exit":
        os._exit(CRASH_EXIT_STATUS)
    raise SimulatedCrash(name)


def _arm_from_env(value: Optional[str]) -> None:
    if not value:
        return
    name, _, count = value.partition(":")
    arm(name, action="exit", fire_on=int(count) if count else 1)


_arm_from_env(os.environ.get("ADLP_CRASHPOINT"))
