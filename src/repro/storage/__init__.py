"""Durable storage for the trusted logger.

The paper's accountability argument assumes the trusted logger never loses
evidence (Section II-A); an in-memory store breaks that assumption the
moment the logger process dies.  This package hardens the storage path the
same way PR 1 hardened the network path:

- :mod:`repro.storage.wal` -- an append-only write-ahead log with
  length-prefixed, CRC-checksummed records, segment rotation, and a
  configurable fsync policy;
- :mod:`repro.storage.checkpoint` -- atomically committed snapshots of the
  hash-chain head, Merkle frontier, and server-side counters that bound
  recovery work and anchor tamper detection;
- :mod:`repro.storage.durable_store` -- :class:`DurableLogStore`, a
  :class:`~repro.core.log_store.LogStore` whose recovery replays the WAL
  from the last checkpoint and tolerates torn tail writes;
- :mod:`repro.storage.spillfile` -- the disk overflow file behind
  :class:`~repro.core.remote.RemoteLogger`'s spill queue;
- :mod:`repro.storage.seqstate` -- persisted endpoint sequence counters so
  a restarted publisher/subscriber resumes without manufacturing false
  ``invalid``/``hidden`` audit verdicts;
- :mod:`repro.storage.crashpoints` -- the named crash-injection harness the
  recovery tests are built on.
"""

from repro.storage.crashpoints import SimulatedCrash, arm, crashpoint, reset
from repro.storage.checkpoint import Checkpoint, CheckpointManager
from repro.storage.durable_store import DurableLogStore, RecoveryInfo
from repro.storage.seqstate import SequenceStateFile
from repro.storage.spillfile import DiskSpillFile
from repro.storage.wal import FsyncPolicy, WalRecord, WriteAheadLog

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "DiskSpillFile",
    "DurableLogStore",
    "FsyncPolicy",
    "RecoveryInfo",
    "SequenceStateFile",
    "SimulatedCrash",
    "WalRecord",
    "WriteAheadLog",
    "arm",
    "crashpoint",
    "reset",
]
